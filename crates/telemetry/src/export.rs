//! Chrome-trace (Perfetto) export of a [`FlightRecord`].
//!
//! Emits the Trace Event Format JSON understood by `chrome://tracing`
//! and <https://ui.perfetto.dev>: spans become `"ph":"X"` complete
//! events (timestamps and durations in microseconds), recorder events
//! become `"ph":"i"` instants. Each trace id is mapped to its own
//! `tid`, so Perfetto renders every frame/recovery trace on its own
//! row and the parent/child chain is visible in the `args`.
//!
//! The export is a pure function of the record: floats are formatted
//! with Rust's `Display` and entries keep recording order, so — given
//! a deterministic clock — the output participates in the repo's
//! byte-identical telemetry contract.

use crate::recorder::FlightRecord;
use crate::render::{json_escape, json_f64};

/// Renders `record` in the Chrome Trace Event Format.
///
/// The result is a single JSON object: load it in Perfetto or
/// `chrome://tracing` directly.
pub fn chrome_trace(record: &FlightRecord) -> String {
    let mut events: Vec<String> = Vec::with_capacity(record.spans.len() + record.events.len() + 1);
    for s in &record.spans {
        let mut args = format!("\"trace\":{},\"span\":{},\"parent\":{}", s.trace, s.id, s.parent);
        if s.cluster >= 0 {
            args.push_str(&format!(",\"cluster\":{}", s.cluster));
        }
        if s.frame >= 0 {
            args.push_str(&format!(",\"frame\":{}", s.frame));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
            json_escape(&s.name),
            s.trace,
            json_f64(s.start_ms * 1e3),
            json_f64(s.duration_ms() * 1e3),
            args
        ));
    }
    for e in &record.events {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":{},\"args\":{{\"level\":\"{}\",\"message\":\"{}\"}}}}",
            json_escape(&e.target),
            json_f64(e.at_ms * 1e3),
            e.level.as_str(),
            json_escape(&e.message)
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_spans\":{},\"dropped_events\":{}}},\"traceEvents\":[{}]}}",
        record.dropped_spans,
        record.dropped_events,
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;
    use crate::recorder::RecordedEvent;
    use crate::span::SpanRecord;
    use std::borrow::Cow;

    fn sample() -> FlightRecord {
        FlightRecord {
            spans: vec![
                SpanRecord {
                    trace: 1,
                    id: 1,
                    parent: 0,
                    name: Cow::Borrowed("frame"),
                    start_ms: 1.0,
                    end_ms: 2.5,
                    cluster: -1,
                    frame: 7,
                },
                SpanRecord {
                    trace: 1,
                    id: 2,
                    parent: 1,
                    name: Cow::Borrowed("drift_detected"),
                    start_ms: 2.0,
                    end_ms: 2.0,
                    cluster: 3,
                    frame: 7,
                },
            ],
            events: vec![RecordedEvent {
                at_ms: 2.0,
                level: Level::Warn,
                target: Cow::Borrowed("store"),
                message: "disk \"full\"".to_string(),
            }],
            dropped_spans: 5,
            dropped_events: 0,
        }
    }

    #[test]
    fn export_has_complete_and_instant_events() {
        let out = chrome_trace(&sample());
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(out.contains("\"dropped_spans\":5"));
        assert!(out.contains(
            "{\"name\":\"frame\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1000,\"dur\":1500,\"args\":{\"trace\":1,\"span\":1,\"parent\":0,\"frame\":7}}"
        ));
        assert!(out.contains("\"name\":\"drift_detected\""));
        assert!(out.contains("\"cluster\":3"));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"message\":\"disk \\\"full\\\"\""));
    }

    #[test]
    fn export_of_empty_record_is_valid() {
        let out = chrome_trace(&FlightRecord::default());
        assert!(out.ends_with("\"traceEvents\":[]}"));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(chrome_trace(&sample()), chrome_trace(&sample()));
    }
}

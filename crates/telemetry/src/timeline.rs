//! The drift timeline: an ordered record of the adaptation lifecycle.
//!
//! Each drift episode in ODIN unfolds as a sequence — drift detected →
//! training job queued → lite model installed → specialized model
//! promoted — and the paper's recovery-latency analysis (Table 8,
//! Figure 9) is precisely the gaps between those markers. The timeline
//! records every marker with its cluster id, the stream frame index,
//! and the clock time, so recovery latency can be reconstructed
//! per-episode after the fact.

/// A lifecycle marker in a drift episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimelineStage {
    /// DETECTOR promoted a temporary cluster: new drift episode.
    DriftDetected,
    /// A SPECIALIZER training job was queued for the cluster.
    TrainJobQueued,
    /// A distilled lite model was installed for the cluster.
    LiteInstalled,
    /// An oracle-trained specialized model replaced the lite model.
    SpecializedInstalled,
    /// The cluster (and its models) were evicted from the working set.
    ClusterEvicted,
    /// The pipeline warm-restarted from a checkpoint (+ WAL replay).
    RestoreCompleted,
}

impl TimelineStage {
    /// Stable lower-snake name used in renders.
    pub fn as_str(self) -> &'static str {
        match self {
            TimelineStage::DriftDetected => "drift_detected",
            TimelineStage::TrainJobQueued => "train_job_queued",
            TimelineStage::LiteInstalled => "lite_installed",
            TimelineStage::SpecializedInstalled => "specialized_installed",
            TimelineStage::ClusterEvicted => "cluster_evicted",
            TimelineStage::RestoreCompleted => "restore_completed",
        }
    }

    /// Compact integer tag for persistence.
    pub fn tag(self) -> u8 {
        match self {
            TimelineStage::DriftDetected => 0,
            TimelineStage::TrainJobQueued => 1,
            TimelineStage::LiteInstalled => 2,
            TimelineStage::SpecializedInstalled => 3,
            TimelineStage::ClusterEvicted => 4,
            TimelineStage::RestoreCompleted => 5,
        }
    }

    /// Inverse of [`TimelineStage::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => TimelineStage::DriftDetected,
            1 => TimelineStage::TrainJobQueued,
            2 => TimelineStage::LiteInstalled,
            3 => TimelineStage::SpecializedInstalled,
            4 => TimelineStage::ClusterEvicted,
            5 => TimelineStage::RestoreCompleted,
            _ => return None,
        })
    }
}

/// One timeline entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Which lifecycle marker this is.
    pub stage: TimelineStage,
    /// The cluster the episode belongs to.
    pub cluster_id: usize,
    /// Stream frame index at which the marker fired.
    pub frame: usize,
    /// Clock time in milliseconds (registry clock origin).
    pub at_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for stage in [
            TimelineStage::DriftDetected,
            TimelineStage::TrainJobQueued,
            TimelineStage::LiteInstalled,
            TimelineStage::SpecializedInstalled,
            TimelineStage::ClusterEvicted,
            TimelineStage::RestoreCompleted,
        ] {
            assert_eq!(TimelineStage::from_tag(stage.tag()), Some(stage));
        }
        assert_eq!(TimelineStage::from_tag(200), None);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            TimelineStage::DriftDetected.as_str(),
            TimelineStage::TrainJobQueued.as_str(),
            TimelineStage::LiteInstalled.as_str(),
            TimelineStage::SpecializedInstalled.as_str(),
            TimelineStage::ClusterEvicted.as_str(),
            TimelineStage::RestoreCompleted.as_str(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}

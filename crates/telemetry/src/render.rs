//! Expositions of a [`TelemetrySnapshot`]: Prometheus text format and
//! a hand-rolled JSON dump.
//!
//! Both renderers are pure functions of the snapshot. Floats are
//! formatted with Rust's `Display` (shortest round-trip
//! representation), which is deterministic across platforms and thread
//! counts; collection order comes from the snapshot, which is already
//! name-sorted.

use crate::registry::TelemetrySnapshot;

/// Renders the snapshot in the Prometheus text exposition format
/// (version 0.0.4): one `# TYPE` line per metric, cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count` for histograms, and
/// the drift timeline as trailing comment lines.
pub fn render_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for h in &snap.histograms {
        let name = &h.name;
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cum = 0u64;
        for (i, &bound) in h.bounds.iter().enumerate() {
            cum += h.buckets[i];
            out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cum}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum_ms()));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    if !snap.timeline.is_empty() {
        out.push_str("# odin drift timeline: stage cluster frame at_ms\n");
        for t in &snap.timeline {
            out.push_str(&format!(
                "# timeline {} {} {} {}\n",
                t.stage.as_str(),
                t.cluster_id,
                t.frame,
                t.at_ms
            ));
        }
    }
    out
}

/// Renders several labeled snapshots — one per stream shard of a
/// multi-stream server — as a single merged Prometheus exposition.
/// Each metric gets one `# TYPE` line, followed by one sample per
/// shard carrying a `stream="<label>"` label (histogram buckets merge
/// the `stream` label with `le`). Like [`render_prometheus`] this is a
/// pure function of its inputs: shard order is the caller's, metric
/// order is name-sorted, so output is deterministic.
pub fn render_prometheus_grouped(shards: &[(String, TelemetrySnapshot)]) -> String {
    use std::collections::BTreeMap;
    let mut counters: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, Vec<(&str, i64)>> = BTreeMap::new();
    let mut histograms: BTreeMap<&str, Vec<(&str, &crate::registry::HistogramSnapshot)>> =
        BTreeMap::new();
    for (stream, snap) in shards {
        for (name, v) in &snap.counters {
            counters.entry(name).or_default().push((stream, *v));
        }
        for (name, v) in &snap.gauges {
            gauges.entry(name).or_default().push((stream, *v));
        }
        for h in &snap.histograms {
            histograms.entry(&h.name).or_default().push((stream, h));
        }
    }
    let mut out = String::new();
    for (name, samples) in &counters {
        out.push_str(&format!("# TYPE {name} counter\n"));
        for (stream, v) in samples {
            out.push_str(&format!("{name}{{stream=\"{}\"}} {v}\n", json_escape(stream)));
        }
    }
    for (name, samples) in &gauges {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        for (stream, v) in samples {
            out.push_str(&format!("{name}{{stream=\"{}\"}} {v}\n", json_escape(stream)));
        }
    }
    for (name, samples) in &histograms {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        for (stream, h) in samples {
            let stream = json_escape(stream);
            let mut cum = 0u64;
            for (i, &bound) in h.bounds.iter().enumerate() {
                cum += h.buckets[i];
                out.push_str(&format!(
                    "{name}_bucket{{stream=\"{stream}\",le=\"{bound}\"}} {cum}\n"
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{stream=\"{stream}\",le=\"+Inf\"}} {}\n",
                h.count
            ));
            out.push_str(&format!("{name}_sum{{stream=\"{stream}\"}} {}\n", h.sum_ms()));
            out.push_str(&format!("{name}_count{{stream=\"{stream}\"}} {}\n", h.count));
        }
    }
    for (stream, snap) in shards {
        if !snap.timeline.is_empty() {
            out.push_str(&format!(
                "# odin drift timeline [stream {stream}]: stage cluster frame at_ms\n"
            ));
            for t in &snap.timeline {
                out.push_str(&format!(
                    "# timeline [stream {stream}] {} {} {} {}\n",
                    t.stage.as_str(),
                    t.cluster_id,
                    t.frame,
                    t.at_ms
                ));
            }
        }
    }
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_f64(v: f64) -> String {
    // JSON has no NaN/Inf; telemetry never produces them, but guard
    // anyway so the dump always parses.
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a dot; keep them
        // recognizable as numbers either way (JSON allows both).
        s
    } else {
        "null".to_string()
    }
}

fn json_f64_list(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|&v| json_f64(v)).collect();
    format!("[{}]", items.join(","))
}

fn json_u64_list(vs: &[u64]) -> String {
    let items: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Renders the snapshot as a JSON object with sorted, stable key order:
///
/// ```json
/// {"counters":{...},"gauges":{...},"histograms":[...],"timeline":[...]}
/// ```
pub fn render_json(snap: &TelemetrySnapshot) -> String {
    let counters: Vec<String> =
        snap.counters.iter().map(|(k, v)| format!("\"{}\":{v}", json_escape(k))).collect();
    let gauges: Vec<String> =
        snap.gauges.iter().map(|(k, v)| format!("\"{}\":{v}", json_escape(k))).collect();
    let histograms: Vec<String> = snap
        .histograms
        .iter()
        .map(|h| {
            format!(
                "{{\"name\":\"{}\",\"bounds\":{},\"buckets\":{},\"count\":{},\"sum_ms\":{}}}",
                json_escape(&h.name),
                json_f64_list(&h.bounds),
                json_u64_list(&h.buckets),
                h.count,
                json_f64(h.sum_ms())
            )
        })
        .collect();
    let timeline: Vec<String> = snap
        .timeline
        .iter()
        .map(|t| {
            format!(
                "{{\"stage\":\"{}\",\"cluster\":{},\"frame\":{},\"at_ms\":{}}}",
                t.stage.as_str(),
                t.cluster_id,
                t.frame,
                json_f64(t.at_ms)
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":[{}],\"timeline\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
        timeline.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::registry::Registry;
    use crate::timeline::TimelineStage;
    use std::sync::Arc;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.set_clock(Arc::new(ManualClock::new()));
        reg.counter("odin_frames_total").add(128);
        reg.gauge("odin_clusters").set(3);
        let h = reg.histogram("odin_stage_encode_ms", &[0.5, 5.0]);
        h.observe_ms(0.25);
        h.observe_ms(1.0);
        h.observe_ms(50.0);
        reg.record_timeline(TimelineStage::DriftDetected, 1, 64);
        reg
    }

    #[test]
    fn prometheus_render_has_cumulative_buckets() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE odin_frames_total counter"));
        assert!(text.contains("odin_frames_total 128"));
        assert!(text.contains("# TYPE odin_clusters gauge"));
        assert!(text.contains("odin_stage_encode_ms_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("odin_stage_encode_ms_bucket{le=\"5\"} 2"));
        assert!(text.contains("odin_stage_encode_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("odin_stage_encode_ms_count 3"));
        assert!(text.contains("# timeline drift_detected 1 64 0"));
    }

    #[test]
    fn json_render_is_stable_and_escaped() {
        let a = render_json(&sample_registry().snapshot());
        let b = render_json(&sample_registry().snapshot());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"counters\":{"));
        assert!(a.contains("\"odin_frames_total\":128"));
        assert!(a.contains("\"stage\":\"drift_detected\""));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn grouped_render_labels_every_sample_once_per_stream() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        let text = render_prometheus_grouped(&[("0".to_string(), a), ("1".to_string(), b)]);
        // One TYPE line per metric, not per shard.
        assert_eq!(text.matches("# TYPE odin_frames_total counter").count(), 1);
        assert!(text.contains("odin_frames_total{stream=\"0\"} 128"));
        assert!(text.contains("odin_frames_total{stream=\"1\"} 128"));
        assert!(text.contains("odin_clusters{stream=\"0\"} 3"));
        assert!(text.contains("odin_stage_encode_ms_bucket{stream=\"1\",le=\"0.5\"} 1"));
        assert!(text.contains("odin_stage_encode_ms_count{stream=\"0\"} 3"));
        assert!(text.contains("# timeline [stream 1] drift_detected 1 64 0"));
        // Deterministic.
        let a2 = sample_registry().snapshot();
        let b2 = sample_registry().snapshot();
        assert_eq!(
            text,
            render_prometheus_grouped(&[("0".to_string(), a2), ("1".to_string(), b2)])
        );
    }

    #[test]
    fn renders_of_empty_snapshot_are_valid() {
        let snap = TelemetrySnapshot::default();
        assert_eq!(render_prometheus(&snap), "");
        assert_eq!(
            render_json(&snap),
            "{\"counters\":{},\"gauges\":{},\"histograms\":[],\"timeline\":[]}"
        );
    }
}

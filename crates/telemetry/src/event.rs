//! Structured, leveled event log.
//!
//! Replaces ad-hoc `eprintln!` calls in the pipeline: components emit
//! [`Event`]s through the registry, which fans them out to every
//! registered [`EventSink`]. The default production sink is
//! [`StderrSink`] at [`Level::Warn`]; tests and the bench bins use
//! [`RingSink`] to capture events in memory.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::unpoison;

/// Severity of an [`Event`], ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Fine-grained diagnostics (per-frame decisions).
    Debug,
    /// Normal lifecycle milestones (model installed, snapshot written).
    Info,
    /// Degraded but recoverable conditions (restore fell back to cold
    /// start).
    Warn,
    /// Failures that lost work (snapshot or WAL write failed).
    Error,
}

impl Level {
    /// Lower-case name used in renders and log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Compact integer tag for persistence.
    pub fn tag(self) -> u8 {
        match self {
            Level::Debug => 0,
            Level::Info => 1,
            Level::Warn => 2,
            Level::Error => 3,
        }
    }

    /// Inverse of [`Level::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            3 => Level::Error,
            _ => return None,
        })
    }
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Component that emitted the event, e.g. `"store"` or `"pipeline"`.
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// A destination for [`Event`]s.
///
/// Sinks must be cheap and non-blocking; `emit` is called inline on the
/// pipeline's hot path for Error-level store failures.
pub trait EventSink: Send + Sync {
    /// Delivers one event.
    fn emit(&self, event: &Event);
}

/// Writes events at or above a minimum level to stderr, formatted as
/// `odin[level] target: message`.
#[derive(Debug)]
pub struct StderrSink {
    min: Level,
}

impl StderrSink {
    /// Creates a sink that passes events at `min` level or above.
    pub fn new(min: Level) -> Self {
        StderrSink { min }
    }
}

impl Default for StderrSink {
    /// The production default: warnings and errors only.
    fn default() -> Self {
        StderrSink::new(Level::Warn)
    }
}

impl EventSink for StderrSink {
    fn emit(&self, event: &Event) {
        if event.level >= self.min {
            eprintln!("odin[{}] {}: {}", event.level.as_str(), event.target, event.message);
        }
    }
}

/// Keeps the last `cap` events at or above a minimum level in memory,
/// dropping the oldest first.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    min: Level,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// Creates a ring buffer holding at most `cap` events of any level
    /// (`cap` is clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        RingSink::with_min(cap, Level::Debug)
    }

    /// Like [`RingSink::new`], but events below `min` are discarded
    /// instead of buffered — they neither occupy capacity nor evict
    /// older, more severe events.
    pub fn with_min(cap: usize, min: Level) -> Self {
        let cap = cap.max(1);
        RingSink { cap, min, buf: Mutex::new(VecDeque::with_capacity(cap)) }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        unpoison(self.buf.lock()).iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        unpoison(self.buf.lock()).len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &Event) {
        if event.level < self.min {
            return;
        }
        let mut buf = unpoison(self.buf.lock());
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(level: Level, message: &str) -> Event {
        Event { level, target: "test", message: message.to_string() }
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let sink = RingSink::new(2);
        assert!(sink.is_empty());
        sink.emit(&ev(Level::Info, "a"));
        sink.emit(&ev(Level::Info, "b"));
        sink.emit(&ev(Level::Error, "c"));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "b");
        assert_eq!(events[1].message, "c");
    }

    #[test]
    fn ring_sink_cap_is_at_least_one() {
        let sink = RingSink::new(0);
        sink.emit(&ev(Level::Info, "only"));
        sink.emit(&ev(Level::Info, "kept"));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].message, "kept");
    }

    #[test]
    fn ring_sink_wraparound_retains_exactly_the_tail() {
        let cap = 7;
        let sink = RingSink::new(cap);
        // Push far more than capacity, crossing the wrap boundary many
        // times, and check the buffer is exactly the most recent `cap`
        // in emission order after every single emit.
        for i in 0..100 {
            sink.emit(&ev(Level::Info, &format!("m{i}")));
            let events = sink.events();
            let expect_len = cap.min(i + 1);
            assert_eq!(events.len(), expect_len);
            for (j, e) in events.iter().enumerate() {
                let expected = i + 1 - expect_len + j;
                assert_eq!(e.message, format!("m{expected}"), "after emit {i}");
            }
        }
        assert_eq!(sink.len(), cap);
    }

    #[test]
    fn ring_sink_filters_below_min_level() {
        let sink = RingSink::with_min(4, Level::Warn);
        sink.emit(&ev(Level::Debug, "d"));
        sink.emit(&ev(Level::Info, "i"));
        sink.emit(&ev(Level::Warn, "w"));
        sink.emit(&ev(Level::Error, "e"));
        let kept: Vec<_> = sink.events().iter().map(|e| e.message.clone()).collect();
        assert_eq!(kept, ["w", "e"]);

        // Filtered events must not evict retained ones: fill to cap
        // with errors, then spam debug — the errors survive.
        let sink = RingSink::with_min(2, Level::Warn);
        sink.emit(&ev(Level::Error, "e1"));
        sink.emit(&ev(Level::Error, "e2"));
        for _ in 0..50 {
            sink.emit(&ev(Level::Debug, "noise"));
        }
        let kept: Vec<_> = sink.events().iter().map(|e| e.message.clone()).collect();
        assert_eq!(kept, ["e1", "e2"]);
    }

    #[test]
    fn level_tags_roundtrip() {
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::from_tag(level.tag()), Some(level));
        }
        assert_eq!(Level::from_tag(200), None);
    }
}

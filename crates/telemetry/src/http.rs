//! A zero-dependency blocking HTTP exposition server.
//!
//! Serves three read-only endpoints from caller-supplied render
//! closures:
//!
//! * `/metrics` — Prometheus text exposition,
//! * `/trace` — Chrome-trace JSON of the flight recorder,
//! * `/healthz` — liveness JSON derived from pipeline stats.
//!
//! The server is deliberately minimal: `std::net::TcpListener`, one
//! connection at a time, `Connection: close` on every response. That is
//! exactly enough for a scrape loop or a one-off `curl`, and keeps the
//! crate free of dependencies. Bind to port 0 for an ephemeral port
//! (CI does this) and read it back via [`MetricsServer::addr`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A render closure for one endpoint: called per request, returns the
/// full response body.
pub type Handler = Arc<dyn Fn() -> String + Send + Sync>;

/// The three endpoint renderers a server is built from.
#[derive(Clone)]
pub struct HttpHandlers {
    /// Body for `GET /metrics` (Prometheus text format).
    pub metrics: Handler,
    /// Body for `GET /trace` (Chrome-trace JSON).
    pub trace: Handler,
    /// Body for `GET /healthz` (liveness JSON).
    pub healthz: Handler,
}

/// A running exposition server. Dropping it shuts the listener down and
/// joins the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

impl MetricsServer {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept() call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `handlers` on a background thread until the
/// returned [`MetricsServer`] is shut down or dropped.
pub fn serve<A: ToSocketAddrs>(addr: A, handlers: HttpHandlers) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle =
        std::thread::Builder::new().name("odin-metrics-http".to_string()).spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A misbehaving client must not wedge the server.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                    let _ = handle_connection(stream, &handlers);
                }
            }
        })?;
    Ok(MetricsServer { addr, stop, handle: Some(handle) })
}

fn handle_connection(stream: TcpStream, handlers: &HttpHandlers) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the remaining request headers so the client sees a clean
    // close (we never read a body: all endpoints are GET).
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", (handlers.metrics)())
            }
            "/trace" => ("200 OK", "application/json; charset=utf-8", (handlers.trace)()),
            "/healthz" => ("200 OK", "application/json; charset=utf-8", (handlers.healthz)()),
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };

    let mut stream = reader.into_inner();
    stream.write_all(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Performs one blocking `GET` against a [`serve`]d endpoint and
/// returns `(status_line, body)`. Intended for tests and smoke checks;
/// real scrapes should use an HTTP client.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: odin\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("").to_string();
    let body = match response.find("\r\n\r\n") {
        Some(i) => response[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handlers() -> HttpHandlers {
        HttpHandlers {
            metrics: Arc::new(|| "odin_frames_total 42\n".to_string()),
            trace: Arc::new(|| "{\"traceEvents\":[]}".to_string()),
            healthz: Arc::new(|| "{\"status\":\"ok\"}".to_string()),
        }
    }

    #[test]
    fn serves_all_three_endpoints() {
        let server = serve("127.0.0.1:0", handlers()).expect("bind");
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics").expect("metrics");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "odin_frames_total 42\n");

        let (status, body) = get(addr, "/trace").expect("trace");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("traceEvents"));

        let (status, body) = get(addr, "/healthz").expect("healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "{\"status\":\"ok\"}");
    }

    #[test]
    fn unknown_paths_get_404_and_server_survives() {
        let server = serve("127.0.0.1:0", handlers()).expect("bind");
        let (status, _) = get(server.addr(), "/nope").expect("request");
        assert!(status.contains("404"), "{status}");
        // Still serving after the 404.
        let (status, _) = get(server.addr(), "/healthz").expect("healthz");
        assert!(status.contains("200"), "{status}");
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let mut server = serve("127.0.0.1:0", handlers()).expect("bind");
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port can be rebound after shutdown.
        let server2 = serve(addr, handlers()).expect("rebind");
        let (status, _) = get(server2.addr(), "/metrics").expect("metrics");
        assert!(status.contains("200"), "{status}");
    }
}

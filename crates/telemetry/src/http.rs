//! A zero-dependency blocking HTTP server.
//!
//! Serves three built-in read-only endpoints from caller-supplied
//! render closures:
//!
//! * `/metrics` — Prometheus text exposition,
//! * `/trace` — Chrome-trace JSON of the flight recorder,
//! * `/healthz` — liveness JSON derived from pipeline stats.
//!
//! plus an optional catch-all [`RouteHandler`] for everything else —
//! the multi-stream ingest front end (`POST /ingest/<stream>`) is built
//! on it.
//!
//! The server is deliberately minimal: `std::net::TcpListener` and
//! `Connection: close` on every response. Each accepted connection is
//! handled on its own short-lived thread (bounded by
//! [`MAX_CONNECTION_THREADS`]; excess connections are handled inline on
//! the accept thread), so a slow `/metrics` scrape never blocks frame
//! ingest. Bind to port 0 for an ephemeral port (CI does this) and read
//! it back via [`MetricsServer::addr`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on concurrently spawned per-connection handler threads. Beyond
/// it, connections are served inline on the accept thread — the server
/// degrades to the old serial behaviour instead of spawning unbounded
/// threads under a connection flood.
pub const MAX_CONNECTION_THREADS: usize = 8;

/// A render closure for one built-in endpoint: called per request,
/// returns the full response body.
pub type Handler = Arc<dyn Fn() -> String + Send + Sync>;

/// One parsed HTTP request, as seen by a [`RouteHandler`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// Request path with the query string stripped.
    pub path: String,
    /// Raw query string (everything after `?`; empty when absent).
    pub query: String,
    /// Request body (`Content-Length`-delimited; empty for GET).
    pub body: Vec<u8>,
}

impl Request {
    /// Value of query parameter `name` from `k=v` pairs joined by `&`,
    /// or `None` when absent. Values are returned verbatim — no
    /// percent-decoding; the tokens this server exchanges (cursors,
    /// kind names, counts) never need it.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// A response a [`RouteHandler`] produces.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status line after `HTTP/1.1 `, e.g. `"200 OK"`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn ok_json(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: "200 OK",
            content_type: "application/json; charset=utf-8",
            body: body.into(),
        }
    }

    /// A plain-text response with an arbitrary status line.
    pub fn text(status: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }
}

/// A catch-all handler consulted for requests that do not match a
/// built-in endpoint. Returning `None` falls through to 404/405.
pub type RouteHandler = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// The endpoint renderers a server is built from.
#[derive(Clone)]
pub struct HttpHandlers {
    /// Body for `GET /metrics` (Prometheus text format).
    pub metrics: Handler,
    /// Body for `GET /trace` (Chrome-trace JSON).
    pub trace: Handler,
    /// Body for `GET /healthz` (liveness JSON).
    pub healthz: Handler,
    /// Catch-all for every other request (any method). `None` keeps the
    /// classic three-endpoint exposition server.
    pub route: Option<RouteHandler>,
}

/// A running exposition server. Dropping it shuts the listener down and
/// joins the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

impl MetricsServer {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent.
    /// In-flight per-connection handler threads finish on their own
    /// (every response is `Connection: close`, so they are short-lived).
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept() call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `handlers` on a background thread until the
/// returned [`MetricsServer`] is shut down or dropped. Connections are
/// dispatched to per-connection threads (at most
/// [`MAX_CONNECTION_THREADS`] at once; the rest are served inline).
pub fn serve<A: ToSocketAddrs>(addr: A, handlers: HttpHandlers) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle =
        std::thread::Builder::new().name("odin-http-accept".to_string()).spawn(move || {
            let active = Arc::new(AtomicUsize::new(0));
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // A misbehaving client must not wedge a handler.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                if active.load(Ordering::SeqCst) < MAX_CONNECTION_THREADS {
                    active.fetch_add(1, Ordering::SeqCst);
                    let handlers = handlers.clone();
                    let thread_active = Arc::clone(&active);
                    let spawned = std::thread::Builder::new()
                        .name("odin-http-conn".to_string())
                        .spawn(move || {
                            let _ = handle_connection(stream, &handlers);
                            thread_active.fetch_sub(1, Ordering::SeqCst);
                        });
                    if let Err(_e) = spawned {
                        // Thread spawn failed (resource exhaustion):
                        // the connection was moved into the closure and
                        // dropped with it; the client sees a reset and
                        // retries. Undo the reservation.
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                } else {
                    let _ = handle_connection(stream, &handlers);
                }
            }
        })?;
    Ok(MetricsServer { addr, stop, handle: Some(handle) })
}

fn handle_connection(stream: TcpStream, handlers: &HttpHandlers) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the request headers (noting Content-Length for the body).
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let raw_path = parts.next().unwrap_or("");
    let (path, query) = match raw_path.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (raw_path.to_string(), String::new()),
    };

    let response = match (method.as_str(), path.as_str()) {
        ("GET", "/metrics") => Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: (handlers.metrics)().into_bytes(),
        },
        ("GET", "/trace") => Response::ok_json((handlers.trace)().into_bytes()),
        ("GET", "/healthz") => Response::ok_json((handlers.healthz)().into_bytes()),
        _ => {
            let request = Request { method, path, query, body };
            match handlers.route.as_ref().and_then(|r| r(&request)) {
                Some(resp) => resp,
                None if request.method != "GET" => {
                    Response::text("405 Method Not Allowed", "method not allowed\n")
                }
                None => Response::text("404 Not Found", "not found\n"),
            }
        }
    };

    // One buffer, one write: headers and body leave in a single TCP
    // segment whenever they fit, so naive clients piping the body
    // onward never see a split response.
    let header = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    let mut out = Vec::with_capacity(header.len() + response.body.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(&response.body);
    let mut stream = reader.into_inner();
    stream.write_all(&out)?;
    stream.flush()
}

fn read_response(mut stream: TcpStream) -> std::io::Result<(String, String)> {
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("").to_string();
    let body = match response.find("\r\n\r\n") {
        Some(i) => response[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

/// Performs one blocking `GET` against a [`serve`]d endpoint and
/// returns `(status_line, body)`. Intended for tests and smoke checks;
/// real scrapes should use an HTTP client.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: odin\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    read_response(stream)
}

/// Performs one blocking `POST` with `body` and returns
/// `(status_line, body)`. The test/smoke companion of [`get`].
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(
        format!(
            "POST {path} HTTP/1.1\r\nHost: odin\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body)?;
    read_response(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handlers() -> HttpHandlers {
        HttpHandlers {
            metrics: Arc::new(|| "odin_frames_total 42\n".to_string()),
            trace: Arc::new(|| "{\"traceEvents\":[]}".to_string()),
            healthz: Arc::new(|| "{\"status\":\"ok\"}".to_string()),
            route: None,
        }
    }

    #[test]
    fn serves_all_three_endpoints() {
        let server = serve("127.0.0.1:0", handlers()).expect("bind");
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics").expect("metrics");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "odin_frames_total 42\n");

        let (status, body) = get(addr, "/trace").expect("trace");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("traceEvents"));

        let (status, body) = get(addr, "/healthz").expect("healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "{\"status\":\"ok\"}");
    }

    #[test]
    fn unknown_paths_get_404_and_server_survives() {
        let server = serve("127.0.0.1:0", handlers()).expect("bind");
        let (status, _) = get(server.addr(), "/nope").expect("request");
        assert!(status.contains("404"), "{status}");
        // Still serving after the 404.
        let (status, _) = get(server.addr(), "/healthz").expect("healthz");
        assert!(status.contains("200"), "{status}");
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let mut server = serve("127.0.0.1:0", handlers()).expect("bind");
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port can be rebound after shutdown.
        let server2 = serve(addr, handlers()).expect("rebind");
        let (status, _) = get(server2.addr(), "/metrics").expect("metrics");
        assert!(status.contains("200"), "{status}");
    }

    #[test]
    fn route_handler_sees_post_bodies_and_falls_through() {
        let mut h = handlers();
        h.route = Some(Arc::new(|req: &Request| {
            if req.method == "POST" && req.path == "/echo" {
                Some(Response::ok_json(req.body.clone()))
            } else {
                None
            }
        }));
        let server = serve("127.0.0.1:0", h).expect("bind");
        let (status, body) = post(server.addr(), "/echo", b"{\"x\":1}").expect("post");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "{\"x\":1}");
        // Unmatched POST falls through to 405, unmatched GET to 404.
        let (status, _) = post(server.addr(), "/nope", b"").expect("post");
        assert!(status.contains("405"), "{status}");
        let (status, _) = get(server.addr(), "/nope").expect("get");
        assert!(status.contains("404"), "{status}");
        // Built-ins still served with a route installed.
        let (status, _) = get(server.addr(), "/healthz").expect("healthz");
        assert!(status.contains("200"), "{status}");
    }

    #[test]
    fn query_strings_reach_the_route_handler() {
        let mut h = handlers();
        h.route = Some(Arc::new(|req: &Request| {
            if req.path == "/q" {
                let cursor = req.query_param("cursor").unwrap_or("-");
                let kind = req.query_param("kind").unwrap_or("-");
                let flag = req.query_param("flag").map(|_| "y").unwrap_or("n");
                Some(Response::text("200 OK", format!("{cursor}|{kind}|{flag}")))
            } else {
                None
            }
        }));
        let server = serve("127.0.0.1:0", h).expect("bind");
        let (status, body) =
            get(server.addr(), "/q?cursor=7:128,0:8&kind=drift&flag").expect("get");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "7:128,0:8|drift|y");
        // No query string: params absent, path still matches.
        let (_, body) = get(server.addr(), "/q").expect("get");
        assert_eq!(body, "-|-|n");
    }

    #[test]
    fn slow_connection_does_not_block_others() {
        use std::sync::mpsc;
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let mut h = handlers();
        h.route = Some(Arc::new(move |req: &Request| {
            if req.path == "/slow" {
                // Park until the test releases us (bounded so a
                // regression to serial handling fails instead of
                // hanging forever).
                let _ = release_rx.lock().unwrap().recv_timeout(Duration::from_secs(5));
                Some(Response::text("200 OK", "slept\n"))
            } else {
                None
            }
        }));
        let server = serve("127.0.0.1:0", h).expect("bind");
        let addr = server.addr();
        let slow = std::thread::spawn(move || get(addr, "/slow"));
        // Give the slow request time to occupy its handler thread.
        std::thread::sleep(Duration::from_millis(100));
        let start = std::time::Instant::now();
        let (status, _) = get(addr, "/healthz").expect("healthz");
        assert!(status.contains("200"), "{status}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "/healthz blocked behind the slow connection"
        );
        release_tx.send(()).expect("slow handler alive");
        let (status, _) = slow.join().expect("join").expect("slow response");
        assert!(status.contains("200"), "{status}");
    }
}

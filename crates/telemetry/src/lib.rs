//! # odin-telemetry
//!
//! Observability primitives for the ODIN pipeline, with a determinism
//! contract: every exposition (Prometheus text, JSON, typed snapshot)
//! is a pure function of the recorded observations, and the recorded
//! observations are a pure function of the stream when a deterministic
//! [`clock::Clock`] is installed. That makes telemetry output
//! bit-comparable across `ODIN_THREADS` settings and across
//! checkpoint/restore cycles — the property the repo's telemetry tests
//! pin.
//!
//! * [`registry::Registry`] — named monotonic [`registry::Counter`]s,
//!   [`registry::Gauge`]s, and fixed-bucket latency
//!   [`registry::Histogram`]s (log-spaced bounds chosen at
//!   registration, so merged output never depends on thread count),
//! * [`event`] — a structured, leveled event log: [`event::EventSink`]
//!   fan-out with stderr ([`event::StderrSink`]) and in-memory
//!   ring-buffer ([`event::RingSink`]) sinks,
//! * [`timeline`] — the drift timeline: drift detected → training job
//!   queued → model installed, with frame indices and wall times,
//! * [`render`] — Prometheus text exposition and a hand-rolled JSON
//!   dump of a [`registry::TelemetrySnapshot`],
//! * [`clock`] — the time source: [`clock::WallClock`] in production,
//!   [`clock::ManualClock`] for bit-identical tests,
//! * [`span`] — hierarchical causal tracing: [`span::SpanGuard`]s with
//!   parent ids and per-frame / per-recovery trace ids, propagated
//!   across thread boundaries via the `Copy`able [`span::SpanCtx`],
//! * [`recorder`] — the always-on, fixed-capacity flight recorder
//!   (ring buffers of recent spans and events),
//! * [`export`] — Chrome-trace (Perfetto) JSON export of a
//!   [`recorder::FlightRecord`],
//! * [`http`] — a zero-dependency blocking exposition server
//!   ([`http::serve`]) with `/metrics`, `/trace`, and `/healthz`.
//!
//! The crate has no dependencies (not even on the rest of the
//! workspace) so any ODIN crate can embed it without cycles.

#![warn(missing_docs)]

use std::sync::LockResult;

/// Recover the guard from a possibly poisoned lock.
///
/// Telemetry state behind these locks (metric maps, ring buffers, the
/// clock) is updated with short, infallible critical sections, so a
/// poisoned lock means an *emitter* thread panicked mid-update — the
/// protected data is still structurally sound. Observability must stay
/// up precisely when something else is crashing, so readers and
/// renderers (`/metrics`, flight-recorder dumps) take the guard instead
/// of cascading the panic.
pub fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

pub mod clock;
pub mod event;
pub mod export;
pub mod http;
pub mod recorder;
pub mod registry;
pub mod render;
pub mod span;
pub mod timeline;

pub use clock::{Clock, ManualClock, WallClock};
pub use event::{Event, EventSink, Level, RingSink, StderrSink};
pub use export::chrome_trace;
pub use http::{
    get, post, serve, Handler, HttpHandlers, MetricsServer, Request, Response, RouteHandler,
    MAX_CONNECTION_THREADS,
};
pub use recorder::{FlightRecord, FlightRecorder, RecordedEvent};
pub use registry::{
    log_bounds, Counter, Gauge, Histogram, HistogramSnapshot, Registry, TelemetrySnapshot,
};
pub use render::{render_json, render_prometheus, render_prometheus_grouped};
pub use span::{SpanCtx, SpanGuard, SpanRecord, Tracer, NO_PARENT};
pub use timeline::{TimelineEvent, TimelineStage};

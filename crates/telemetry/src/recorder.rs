//! The flight recorder: an always-on, fixed-capacity ring buffer of
//! recent spans and events.
//!
//! Modeled on an aircraft flight recorder: it is always recording, it
//! is cheap enough to leave on (one short mutex-guarded push per span),
//! and when something goes wrong — a store error, a drift episode — the
//! last few thousand spans are dumped to disk for post-mortem causal
//! inspection (as a Chrome-trace file via
//! [`chrome_trace`](crate::export::chrome_trace)).
//!
//! Capacities are fixed at construction and the ring drops oldest
//! first, so, given a deterministic clock and span order, the retained
//! window is a pure function of the stream — the recorder participates
//! in the same byte-identical contract as the metrics registry.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Level;
use crate::span::SpanRecord;
use crate::unpoison;

/// Default span ring capacity.
pub const DEFAULT_SPAN_CAP: usize = 4096;
/// Default event ring capacity.
pub const DEFAULT_EVENT_CAP: usize = 1024;

/// One event as retained by the flight recorder: the registry stamps
/// the clock time at emission (plain [`Event`](crate::event::Event)s
/// carry no timestamp).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Clock time at emission, ms.
    pub at_ms: f64,
    /// Severity.
    pub level: Level,
    /// Component that emitted the event. `Borrowed` at runtime; `Owned`
    /// only after a checkpoint restore.
    pub target: Cow<'static, str>,
    /// Human-readable message.
    pub message: String,
}

/// A frozen copy of the flight recorder's contents, oldest first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightRecord {
    /// Retained spans in recording order.
    pub spans: Vec<SpanRecord>,
    /// Retained events in recording order.
    pub events: Vec<RecordedEvent>,
    /// Spans evicted from the ring since construction.
    pub dropped_spans: u64,
    /// Events evicted from the ring since construction.
    pub dropped_events: u64,
}

/// The ring buffers behind the recorder. Spans and events are kept
/// separately so a chatty event source cannot evict span history.
#[derive(Debug)]
pub struct FlightRecorder {
    span_cap: usize,
    event_cap: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
    events: Mutex<VecDeque<RecordedEvent>>,
    dropped_spans: AtomicU64,
    dropped_events: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `span_cap` spans and
    /// `event_cap` events (each clamped to at least 1).
    pub fn new(span_cap: usize, event_cap: usize) -> Self {
        FlightRecorder {
            span_cap: span_cap.max(1),
            event_cap: event_cap.max(1),
            spans: Mutex::new(VecDeque::new()),
            events: Mutex::new(VecDeque::new()),
            dropped_spans: AtomicU64::new(0),
            dropped_events: AtomicU64::new(0),
        }
    }

    /// Appends one span, evicting the oldest at capacity.
    pub fn record_span(&self, rec: SpanRecord) {
        let mut spans = unpoison(self.spans.lock());
        if spans.len() == self.span_cap {
            spans.pop_front();
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(rec);
    }

    /// Appends one event, evicting the oldest at capacity.
    pub fn record_event(&self, ev: RecordedEvent) {
        let mut events = unpoison(self.events.lock());
        if events.len() == self.event_cap {
            events.pop_front();
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(ev);
    }

    /// Number of retained spans.
    pub fn span_count(&self) -> usize {
        unpoison(self.spans.lock()).len()
    }

    /// A frozen copy of everything currently retained.
    pub fn snapshot(&self) -> FlightRecord {
        FlightRecord {
            spans: unpoison(self.spans.lock()).iter().cloned().collect(),
            events: unpoison(self.events.lock()).iter().cloned().collect(),
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
            dropped_events: self.dropped_events.load(Ordering::Relaxed),
        }
    }

    /// Replaces the recorder contents with `rec` (checkpoint restore).
    /// Entries beyond capacity are dropped oldest-first.
    pub fn load(&self, rec: &FlightRecord) {
        let skip_s = rec.spans.len().saturating_sub(self.span_cap);
        *unpoison(self.spans.lock()) = rec.spans.iter().skip(skip_s).cloned().collect();
        let skip_e = rec.events.len().saturating_sub(self.event_cap);
        *unpoison(self.events.lock()) = rec.events.iter().skip(skip_e).cloned().collect();
        self.dropped_spans.store(rec.dropped_spans + skip_s as u64, Ordering::Relaxed);
        self.dropped_events.store(rec.dropped_events + skip_e as u64, Ordering::Relaxed);
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_SPAN_CAP, DEFAULT_EVENT_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64) -> SpanRecord {
        SpanRecord {
            trace: 1,
            id,
            parent: 0,
            name: Cow::Borrowed("s"),
            start_ms: id as f64,
            end_ms: id as f64 + 1.0,
            cluster: -1,
            frame: -1,
        }
    }

    fn event(msg: &str) -> RecordedEvent {
        RecordedEvent {
            at_ms: 0.0,
            level: Level::Info,
            target: Cow::Borrowed("test"),
            message: msg.to_string(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(3, 2);
        for id in 0..10 {
            rec.record_span(span(id));
        }
        rec.record_event(event("a"));
        rec.record_event(event("b"));
        rec.record_event(event("c"));
        let snap = rec.snapshot();
        assert_eq!(snap.spans.iter().map(|s| s.id).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(snap.dropped_spans, 7);
        assert_eq!(snap.events.iter().map(|e| e.message.as_str()).collect::<Vec<_>>(), ["b", "c"]);
        assert_eq!(snap.dropped_events, 1);
    }

    #[test]
    fn load_roundtrips_and_truncates_to_capacity() {
        let rec = FlightRecorder::new(8, 8);
        for id in 0..5 {
            rec.record_span(span(id));
        }
        let snap = rec.snapshot();

        let same = FlightRecorder::new(8, 8);
        same.load(&snap);
        assert_eq!(same.snapshot(), snap);

        let tiny = FlightRecorder::new(2, 8);
        tiny.load(&snap);
        let t = tiny.snapshot();
        assert_eq!(t.spans.iter().map(|s| s.id).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(t.dropped_spans, 3);
    }
}

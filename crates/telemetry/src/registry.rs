//! The metrics registry: named counters, gauges, and deterministic
//! fixed-bucket latency histograms, plus event fan-out and the drift
//! timeline.
//!
//! Determinism contract: histogram bucket bounds are fixed at
//! registration (log-spaced via [`log_bounds`]), so merging
//! observations from any number of worker threads lands each sample in
//! the same bucket regardless of `ODIN_THREADS`. Durations are stored
//! as integer nanoseconds — never accumulated as floats — so sums are
//! exact and order-independent. Snapshots iterate `BTreeMap`s, so
//! rendered output is byte-stable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::clock::{Clock, WallClock};
use crate::event::{Event, EventSink, Level};
use crate::recorder::{FlightRecord, FlightRecorder, RecordedEvent};
use crate::span::{ClockCell, Tracer};
use crate::timeline::{TimelineEvent, TimelineStage};
use crate::unpoison;

/// A monotonic counter handle. Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (used when restoring from a checkpoint).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A signed gauge handle for instantaneous values (queue depth, model
/// count). Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistState {
    /// Upper bounds (ms) of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `buckets.len() == bounds.len() + 1`, the last
    /// entry is the overflow (`+Inf`) bucket.
    buckets: Vec<u64>,
    count: u64,
    /// Exact total in integer nanoseconds (no float accumulation).
    sum_ns: u64,
}

/// A fixed-bucket latency histogram handle. Cloning shares the
/// underlying state.
///
/// Bounds are fixed at registration; samples are classified by binary
/// search, so the mapping sample → bucket is independent of
/// observation order and thread count.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<HistState>>);

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram(Arc::new(Mutex::new(HistState {
            bounds,
            buckets: vec![0; n + 1],
            count: 0,
            sum_ns: 0,
        })))
    }

    /// Records one latency sample, in milliseconds.
    ///
    /// Non-finite or negative samples are ignored — a latency can never
    /// legitimately be either, and admitting one would poison `sum_ns`.
    pub fn observe_ms(&self, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        let mut st = unpoison(self.0.lock());
        let idx = st.bounds.partition_point(|&b| b < ms);
        st.buckets[idx] += 1;
        st.count += 1;
        st.sum_ns += (ms * 1e6).round() as u64;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        unpoison(self.0.lock()).count
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let st = unpoison(self.0.lock());
        HistogramSnapshot {
            name: name.to_string(),
            bounds: st.bounds.clone(),
            buckets: st.buckets.clone(),
            count: st.count,
            sum_ns: st.sum_ns,
        }
    }

    fn load(&self, snap: &HistogramSnapshot) {
        let mut st = unpoison(self.0.lock());
        st.bounds = snap.bounds.clone();
        st.buckets = snap.buckets.clone();
        st.count = snap.count;
        st.sum_ns = snap.sum_ns;
    }
}

/// `n` log-spaced histogram bounds from `lo` to `hi` (both in ms,
/// inclusive), suitable for latency distributions spanning several
/// orders of magnitude.
///
/// # Panics
///
/// Panics if `lo <= 0`, `hi <= lo`, or `n < 2`.
pub fn log_bounds(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2, "log_bounds needs 0 < lo < hi and n >= 2");
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n).map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp()).collect()
}

/// A frozen copy of one histogram, as produced by
/// [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Finite bucket upper bounds, in ms.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last is `+Inf`).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples, in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Sum of all samples in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.sum_ns as f64 / 1e6
    }

    /// Mean sample in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms() / self.count as f64
        }
    }

    /// Upper bound (ms) of the bucket containing quantile `q` in
    /// `[0, 1]` — a conservative bucketed quantile estimate. Returns
    /// the last finite bound for samples in the overflow bucket, and
    /// 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds[i.min(self.bounds.len() - 1)];
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Interpolated quantile estimate (ms) for `q` in `[0, 1]`: assumes
    /// samples are uniformly distributed within their bucket and
    /// linearly interpolates between the bucket's bounds (the classic
    /// Prometheus `histogram_quantile` estimator). Much tighter than
    /// [`HistogramSnapshot::quantile_ms`], which only ever returns a
    /// bucket upper bound.
    ///
    /// The first bucket interpolates from 0; samples in the overflow
    /// bucket are clamped to the last finite bound (their true
    /// magnitude is unknown). Returns 0 when empty.
    pub fn quantile_interp_ms(&self, q: f64) -> f64 {
        // A histogram with no samples has no quantiles: report 0 from
        // the guard rather than a bucket edge. The all-zero-buckets
        // check covers snapshots whose `count` disagrees with the
        // bucket sums (a hand-built or corrupted snapshot), which
        // previously fell through the loop to the last finite bound.
        if self.count == 0 || self.bounds.is_empty() || self.buckets.iter().all(|&c| c == 0) {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let before = seen as f64;
            seen += c;
            if (seen as f64) >= rank && c > 0 {
                if i >= self.bounds.len() {
                    // Overflow bucket: no finite upper bound to
                    // interpolate toward.
                    return self.bounds[self.bounds.len() - 1];
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = ((rank - before) / c as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
        }
        // Reachable only when `rank` exceeds every counted sample
        // (count > bucket sums): clamp to the last occupied bucket's
        // edge, mirroring the in-loop overflow handling.
        let last = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        self.bounds[last.min(self.bounds.len() - 1)]
    }
}

/// A frozen, fully ordered copy of everything the registry knows:
/// counters, gauges, histograms (sorted by name) and the drift
/// timeline (in recording order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Drift timeline in recording order.
    pub timeline: Vec<TimelineEvent>,
}

/// The central telemetry registry.
///
/// Handles returned by [`Registry::counter`], [`Registry::gauge`], and
/// [`Registry::histogram`] stay valid across [`Registry::load`]: a
/// restore overwrites values through the shared `Arc`s rather than
/// replacing them.
pub struct Registry {
    clock: ClockCell,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    sinks: RwLock<Vec<Arc<dyn EventSink>>>,
    timeline: Mutex<Vec<TimelineEvent>>,
    recorder: Arc<FlightRecorder>,
    tracer: Tracer,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &unpoison(self.counters.lock()).len())
            .field("gauges", &unpoison(self.gauges.lock()).len())
            .field("histograms", &unpoison(self.histograms.lock()).len())
            .field("timeline", &unpoison(self.timeline.lock()).len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry with a [`WallClock`], no sinks, and an
    /// always-on flight recorder at default capacity.
    pub fn new() -> Self {
        let clock: ClockCell = Arc::new(RwLock::new(Arc::new(WallClock::new()) as Arc<dyn Clock>));
        let recorder = Arc::new(FlightRecorder::default());
        let tracer = Tracer::new(clock.clone(), recorder.clone());
        Registry {
            clock,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            sinks: RwLock::new(Vec::new()),
            timeline: Mutex::new(Vec::new()),
            recorder,
            tracer,
        }
    }

    /// Current time in ms from the installed clock.
    pub fn now_ms(&self) -> f64 {
        unpoison(self.clock.read()).now_ms()
    }

    /// Replaces the time source (e.g. with a
    /// [`crate::clock::ManualClock`] in determinism tests). The tracer
    /// and every live span guard share the same clock cell, so they
    /// retarget too.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *unpoison(self.clock.write()) = clock;
    }

    /// The span tracer backed by this registry's clock and flight
    /// recorder.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The always-on flight recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// A frozen copy of the flight recorder's spans and events.
    pub fn flight_record(&self) -> FlightRecord {
        self.recorder.snapshot()
    }

    /// Returns the counter registered under `name`, creating it at 0 if
    /// absent.
    pub fn counter(&self, name: &str) -> Counter {
        unpoison(self.counters.lock()).entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it at 0 if
    /// absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        unpoison(self.gauges.lock()).entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` if absent. Bounds of an existing histogram are left
    /// untouched — first registration wins.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .clone()
    }

    /// Adds an event sink; events fan out to every registered sink.
    pub fn add_sink(&self, sink: Arc<dyn EventSink>) {
        unpoison(self.sinks.write()).push(sink);
    }

    /// Removes all event sinks.
    pub fn clear_sinks(&self) {
        unpoison(self.sinks.write()).clear();
    }

    /// Emits a structured event to every sink and stamps a copy into
    /// the flight recorder.
    pub fn event(&self, level: Level, target: &'static str, message: impl Into<String>) {
        let event = Event { level, target, message: message.into() };
        self.recorder.record_event(RecordedEvent {
            at_ms: self.now_ms(),
            level,
            target: std::borrow::Cow::Borrowed(target),
            message: event.message.clone(),
        });
        for sink in unpoison(self.sinks.read()).iter() {
            sink.emit(&event);
        }
    }

    /// Appends one drift-timeline marker, stamped with the registry
    /// clock.
    pub fn record_timeline(&self, stage: TimelineStage, cluster_id: usize, frame: usize) {
        let at_ms = self.now_ms();
        unpoison(self.timeline.lock()).push(TimelineEvent { stage, cluster_id, frame, at_ms });
    }

    /// The recorded drift timeline, oldest first.
    pub fn timeline(&self) -> Vec<TimelineEvent> {
        unpoison(self.timeline.lock()).clone()
    }

    /// A frozen, ordered copy of all metrics and the timeline.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters =
            unpoison(self.counters.lock()).iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let gauges =
            unpoison(self.gauges.lock()).iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let histograms =
            unpoison(self.histograms.lock()).iter().map(|(k, v)| v.snapshot(k)).collect();
        let timeline = unpoison(self.timeline.lock()).clone();
        TelemetrySnapshot { counters, gauges, histograms, timeline }
    }

    /// Restores the registry to `snap`'s state, overwriting values in
    /// place so previously returned handles keep working. Metrics
    /// present in the registry but absent from the snapshot are reset
    /// to zero (they did not exist when the snapshot was taken).
    pub fn load(&self, snap: &TelemetrySnapshot) {
        {
            let mut counters = unpoison(self.counters.lock());
            for c in counters.values() {
                c.set(0);
            }
            for (name, v) in &snap.counters {
                counters.entry(name.clone()).or_default().set(*v);
            }
        }
        {
            let mut gauges = unpoison(self.gauges.lock());
            for g in gauges.values() {
                g.set(0);
            }
            for (name, v) in &snap.gauges {
                gauges.entry(name.clone()).or_default().set(*v);
            }
        }
        {
            let mut histograms = unpoison(self.histograms.lock());
            for h in histograms.values() {
                let mut st = unpoison(h.0.lock());
                st.buckets.iter_mut().for_each(|b| *b = 0);
                st.count = 0;
                st.sum_ns = 0;
            }
            for hs in &snap.histograms {
                histograms
                    .entry(hs.name.clone())
                    .or_insert_with(|| Histogram::new(hs.bounds.clone()))
                    .load(hs);
            }
        }
        *unpoison(self.timeline.lock()) = snap.timeline.clone();
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::event::RingSink;

    #[test]
    fn counters_and_gauges_are_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);

        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("depth").get(), 3);
    }

    #[test]
    fn log_bounds_are_strictly_increasing_and_span_range() {
        let b = log_bounds(0.001, 1000.0, 16);
        assert_eq!(b.len(), 16);
        assert!((b[0] - 0.001).abs() < 1e-12);
        assert!((b[15] - 1000.0).abs() < 1e-6);
        for w in b.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn histogram_buckets_samples_deterministically() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        for ms in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.observe_ms(ms);
        }
        let s = h.snapshot("lat");
        // 0.5 and 1.0 land in <=1.0; 5.0 in <=10; 50.0 in <=100; 500 overflow.
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, ((0.5 + 1.0 + 5.0 + 50.0 + 500.0) * 1e6) as u64);
    }

    #[test]
    fn histogram_rejects_garbage_samples() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0]);
        h.observe_ms(f64::NAN);
        h.observe_ms(f64::INFINITY);
        h.observe_ms(-3.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantile_is_bucketed_upper_bound() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        for _ in 0..90 {
            h.observe_ms(0.5);
        }
        for _ in 0..10 {
            h.observe_ms(50.0);
        }
        let s = h.snapshot("lat");
        assert_eq!(s.quantile_ms(0.5), 1.0);
        assert_eq!(s.quantile_ms(0.95), 100.0);
        assert_eq!(s.quantile_ms(1.0), 100.0);
    }

    #[test]
    fn interpolated_quantile_lands_inside_the_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        for _ in 0..90 {
            h.observe_ms(0.5);
        }
        for _ in 0..10 {
            h.observe_ms(50.0);
        }
        let s = h.snapshot("lat");
        // p50: rank 50 of 90 samples in [0, 1] → 50/90 of the way.
        let p50 = s.quantile_interp_ms(0.5);
        assert!((p50 - 50.0 / 90.0).abs() < 1e-12, "p50 = {p50}");
        // p95: rank 95, 5 of the 10 samples in (10, 100] → midpoint.
        let p95 = s.quantile_interp_ms(0.95);
        assert!((p95 - 55.0).abs() < 1e-12, "p95 = {p95}");
        // p100 is the far edge of the last occupied bucket.
        assert_eq!(s.quantile_interp_ms(1.0), 100.0);
        // Always at or below the bucketed upper-bound estimate.
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert!(s.quantile_interp_ms(q) <= s.quantile_ms(q) + 1e-12);
        }
    }

    #[test]
    fn interpolated_quantile_handles_edge_cases() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 10.0]);
        assert_eq!(h.snapshot("lat").quantile_interp_ms(0.5), 0.0);
        // A single overflow sample clamps to the last finite bound.
        h.observe_ms(500.0);
        assert_eq!(h.snapshot("lat").quantile_interp_ms(0.5), 10.0);
    }

    #[test]
    fn interpolated_quantile_empty_and_single_sample_are_consistent() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        // Empty: every quantile is 0, never a bucket edge.
        let empty = h.snapshot("lat");
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile_interp_ms(q), 0.0, "empty q={q}");
        }
        // A snapshot whose count disagrees with its (all-zero) buckets
        // must not leak a bucket edge through the loop fallthrough.
        let inconsistent = HistogramSnapshot {
            name: "lat".to_string(),
            bounds: vec![1.0, 10.0, 100.0],
            buckets: vec![0, 0, 0, 0],
            count: 3,
            sum_ns: 0,
        };
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(inconsistent.quantile_interp_ms(q), 0.0, "inconsistent q={q}");
        }
        // One sample in (1, 10]: every quantile interpolates inside
        // that bucket — never outside it, never 0.
        h.observe_ms(5.0);
        let one = h.snapshot("lat");
        for q in [0.0, 0.25, 0.5, 1.0] {
            let v = one.quantile_interp_ms(q);
            assert!((1.0..=10.0).contains(&v), "single-sample q={q} gave {v}");
        }
        assert_eq!(one.quantile_interp_ms(1.0), 10.0);
    }

    #[test]
    fn snapshot_load_roundtrips_and_handles_survive() {
        let reg = Registry::new();
        reg.set_clock(Arc::new(ManualClock::new()));
        let c = reg.counter("frames");
        c.add(7);
        let h = reg.histogram("lat", &[1.0, 10.0]);
        h.observe_ms(2.0);
        reg.record_timeline(TimelineStage::DriftDetected, 3, 120);

        let snap = reg.snapshot();

        let reg2 = Registry::new();
        let c2 = reg2.counter("frames"); // pre-registered handle
        reg2.load(&snap);
        assert_eq!(c2.get(), 7);
        assert_eq!(reg2.snapshot(), snap);

        // Loading an older snapshot resets metrics it doesn't mention;
        // the handle stays registered at zero.
        let c3 = reg2.counter("later");
        c3.add(9);
        reg2.load(&snap);
        assert_eq!(c3.get(), 0);
        let after = reg2.snapshot();
        assert!(after.counters.contains(&("later".to_string(), 0)));
        assert!(after.counters.contains(&("frames".to_string(), 7)));
    }

    #[test]
    fn events_fan_out_to_sinks() {
        let reg = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        reg.add_sink(ring.clone());
        reg.event(Level::Warn, "store", "disk full");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events()[0].message, "disk full");
        reg.clear_sinks();
        reg.event(Level::Warn, "store", "dropped");
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn timeline_stamps_with_registry_clock() {
        let reg = Registry::new();
        let clock = Arc::new(ManualClock::new());
        reg.set_clock(clock.clone());
        clock.set_ms(42.0);
        reg.record_timeline(TimelineStage::LiteInstalled, 1, 64);
        let tl = reg.timeline();
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].at_ms, 42.0);
        assert_eq!(tl[0].frame, 64);
    }
}

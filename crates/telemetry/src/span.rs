//! Hierarchical spans: causal tracing for the drift pipeline.
//!
//! A *trace* is one causal story — a single frame moving through the
//! serving stages, or one recovery arc from drift detection through the
//! background training job to the registry install. A *span* is one
//! timed step inside a trace, linked to its parent by id, so the tree
//! survives thread hops: the [`SpanCtx`] travels with the training job
//! into the worker thread and the spans recorded there still point at
//! the drift-detection span that caused them.
//!
//! Determinism contract: span ids and trace ids come from sequential
//! counters, timestamps from the registry's swappable
//! [`Clock`](crate::clock::Clock). With a
//! [`ManualClock`](crate::clock::ManualClock) and a single-threaded
//! span emission order, the recorded spans — and hence the Chrome-trace
//! export — are a pure function of the stream.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::clock::Clock;
use crate::recorder::FlightRecorder;
use crate::unpoison;

/// The shared, swappable clock cell: one cell is read by the registry,
/// the tracer, and every live [`SpanGuard`], so `set_clock` retargets
/// all of them at once.
pub(crate) type ClockCell = Arc<RwLock<Arc<dyn Clock>>>;

/// Span id `0` — "no parent": marks a root span of its trace.
pub const NO_PARENT: u64 = 0;

/// The causal coordinates a new span is created under: which trace it
/// belongs to and which span caused it.
///
/// `SpanCtx` is `Copy` and crosses thread boundaries freely — the
/// training pool carries one inside each job so the worker-side `train`
/// span parents onto the submitting thread's `train_job_queued` span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanCtx {
    /// Trace this span belongs to.
    pub trace: u64,
    /// Id of the causing span, or [`NO_PARENT`] for a trace root.
    pub parent: u64,
}

/// One finished (or in-flight) span as stored by the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace id.
    pub trace: u64,
    /// This span's id (unique within the tracer's lifetime, never 0).
    pub id: u64,
    /// Parent span id, or [`NO_PARENT`].
    pub parent: u64,
    /// Stage or operation name (`"encode"`, `"train"`, ...). `Borrowed`
    /// at runtime; `Owned` only after a checkpoint restore.
    pub name: Cow<'static, str>,
    /// Clock time at open, ms.
    pub start_ms: f64,
    /// Clock time at close, ms (`== start_ms` for instant spans).
    pub end_ms: f64,
    /// Cluster id the span is about, or `-1` when not applicable.
    pub cluster: i64,
    /// Stream frame index the span is about, or `-1` when not
    /// applicable.
    pub frame: i64,
}

impl SpanRecord {
    /// Span duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// Allocates span/trace ids and opens spans that record into the flight
/// recorder when closed.
///
/// Owned by the [`Registry`](crate::registry::Registry); get one via
/// `Registry::tracer()`.
pub struct Tracer {
    clock: ClockCell,
    recorder: Arc<FlightRecorder>,
    next_span: AtomicU64,
    next_trace: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (next_span, next_trace) = self.state();
        f.debug_struct("Tracer")
            .field("next_span", &next_span)
            .field("next_trace", &next_trace)
            .finish()
    }
}

impl Tracer {
    pub(crate) fn new(clock: ClockCell, recorder: Arc<FlightRecorder>) -> Self {
        Tracer { clock, recorder, next_span: AtomicU64::new(1), next_trace: AtomicU64::new(1) }
    }

    fn now_ms(&self) -> f64 {
        unpoison(self.clock.read()).now_ms()
    }

    /// Allocates a fresh trace id.
    pub fn new_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::SeqCst)
    }

    /// Opens a span under `ctx`. The span records itself into the
    /// flight recorder when the returned guard is closed or dropped.
    pub fn span(&self, name: &'static str, ctx: SpanCtx) -> SpanGuard {
        let id = self.next_span.fetch_add(1, Ordering::SeqCst);
        let start_ms = self.now_ms();
        SpanGuard {
            clock: self.clock.clone(),
            recorder: self.recorder.clone(),
            rec: Some(SpanRecord {
                trace: ctx.trace,
                id,
                parent: ctx.parent,
                name: Cow::Borrowed(name),
                start_ms,
                end_ms: start_ms,
                cluster: -1,
                frame: -1,
            }),
        }
    }

    /// Opens a root span in a brand-new trace.
    pub fn root(&self, name: &'static str) -> SpanGuard {
        let trace = self.new_trace();
        self.span(name, SpanCtx { trace, parent: NO_PARENT })
    }

    /// Records a zero-duration marker span under `ctx` and returns its
    /// id, so later spans can parent onto the marker.
    ///
    /// `cluster`/`frame` use `-1` for "not applicable".
    pub fn instant(&self, name: &'static str, ctx: SpanCtx, cluster: i64, frame: i64) -> u64 {
        let id = self.next_span.fetch_add(1, Ordering::SeqCst);
        let at = self.now_ms();
        self.recorder.record_span(SpanRecord {
            trace: ctx.trace,
            id,
            parent: ctx.parent,
            name: Cow::Borrowed(name),
            start_ms: at,
            end_ms: at,
            cluster,
            frame,
        });
        id
    }

    /// `(next_span_id, next_trace_id)` — persisted in checkpoints so a
    /// restored pipeline keeps allocating ids where the original left
    /// off (the basis of byte-identical traces across restore).
    pub fn state(&self) -> (u64, u64) {
        (self.next_span.load(Ordering::SeqCst), self.next_trace.load(Ordering::SeqCst))
    }

    /// Restores the id allocators (inverse of [`Tracer::state`]).
    pub fn load_state(&self, next_span: u64, next_trace: u64) {
        self.next_span.store(next_span.max(1), Ordering::SeqCst);
        self.next_trace.store(next_trace.max(1), Ordering::SeqCst);
    }
}

/// An open span. Owns clones of the clock cell and recorder, so it can
/// outlive any borrow of the registry; closing (or dropping) stamps the
/// end time and pushes the record into the flight recorder.
pub struct SpanGuard {
    clock: ClockCell,
    recorder: Arc<FlightRecorder>,
    rec: Option<SpanRecord>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard").field("rec", &self.rec).finish()
    }
}

impl SpanGuard {
    /// This span's id.
    pub fn id(&self) -> u64 {
        self.rec.as_ref().map_or(0, |r| r.id)
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> u64 {
        self.rec.as_ref().map_or(0, |r| r.trace)
    }

    /// The context a child span of this one should be opened under.
    pub fn child_ctx(&self) -> SpanCtx {
        SpanCtx { trace: self.trace(), parent: self.id() }
    }

    /// Tags the span with a cluster id.
    pub fn set_cluster(&mut self, cluster: usize) {
        if let Some(r) = self.rec.as_mut() {
            r.cluster = cluster as i64;
        }
    }

    /// Tags the span with a stream frame index.
    pub fn set_frame(&mut self, frame: usize) {
        if let Some(r) = self.rec.as_mut() {
            r.frame = frame as i64;
        }
    }

    /// Closes the span now and returns its duration in ms.
    pub fn close(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        match self.rec.take() {
            Some(mut r) => {
                r.end_ms = unpoison(self.clock.read()).now_ms();
                let d = r.duration_ms();
                self.recorder.record_span(r);
                d
            }
            None => 0.0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::registry::Registry;

    #[test]
    fn spans_form_a_parent_child_chain() {
        let reg = Registry::new();
        let clock = Arc::new(ManualClock::new());
        reg.set_clock(clock.clone());
        let tracer = reg.tracer();

        let mut root = tracer.root("frame");
        root.set_frame(7);
        clock.advance_ms(1.0);
        let child = tracer.span("encode", root.child_ctx());
        clock.advance_ms(2.0);
        let marker = tracer.instant("drift_detected", child.child_ctx(), 3, 7);
        assert_eq!(child.close(), 2.0);
        drop(root);

        let rec = reg.flight_record();
        assert_eq!(rec.spans.len(), 3);
        // Recorded in close order: marker (instant), child, root.
        let (m, c, r) = (&rec.spans[0], &rec.spans[1], &rec.spans[2]);
        assert_eq!(m.id, marker);
        assert_eq!(m.name, "drift_detected");
        assert_eq!(m.duration_ms(), 0.0);
        assert_eq!(m.cluster, 3);
        assert_eq!(c.name, "encode");
        assert_eq!(m.parent, c.id);
        assert_eq!(c.parent, r.id);
        assert_eq!(r.parent, NO_PARENT);
        assert_eq!(c.trace, r.trace);
        assert_eq!(m.trace, r.trace);
        assert_eq!(r.frame, 7);
        assert_eq!(r.duration_ms(), 3.0);
    }

    #[test]
    fn tracer_state_roundtrips_through_load() {
        let reg = Registry::new();
        let t = reg.tracer();
        let _ = t.root("a");
        let _ = t.root("b");
        let (ns, nt) = t.state();
        assert_eq!((ns, nt), (3, 3));

        let reg2 = Registry::new();
        reg2.tracer().load_state(ns, nt);
        let g = reg2.tracer().root("c");
        assert_eq!(g.id(), 3);
        assert_eq!(g.trace(), 3);
    }

    #[test]
    fn new_traces_get_distinct_ids() {
        let reg = Registry::new();
        let a = reg.tracer().root("a");
        let b = reg.tracer().root("b");
        assert_ne!(a.trace(), b.trace());
        assert_ne!(a.id(), b.id());
    }
}

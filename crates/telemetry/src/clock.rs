//! Time sources for telemetry.
//!
//! All durations and timestamps recorded by the registry flow through a
//! [`Clock`], so tests can swap in a [`ManualClock`] and make every
//! recorded latency a pure function of the stream — the basis of the
//! bit-identical exposition guarantee.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source measured in milliseconds since an arbitrary
/// origin.
///
/// Implementations must be cheap (called on every instrumented stage)
/// and monotonic non-decreasing.
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed since the clock's origin.
    fn now_ms(&self) -> f64;
}

/// The production clock: wall time relative to construction, via
/// [`Instant`].
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock whose origin is "now".
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e3
    }
}

/// A settable clock for deterministic tests.
///
/// Time only advances when [`ManualClock::set_ms`] or
/// [`ManualClock::advance_ms`] is called, so two runs that issue the
/// same clock calls record byte-identical durations. Internally stores
/// microseconds as an integer to keep cross-thread reads exact.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock frozen at t = 0.
    pub fn new() -> Self {
        ManualClock { micros: AtomicU64::new(0) }
    }

    /// Sets the current time, in milliseconds.
    pub fn set_ms(&self, ms: f64) {
        self.micros.store((ms * 1e3).max(0.0) as u64, Ordering::SeqCst);
    }

    /// Advances the current time by `ms` milliseconds.
    pub fn advance_ms(&self, ms: f64) {
        self.micros.fetch_add((ms * 1e3).max(0.0) as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> f64 {
        self.micros.load(Ordering::SeqCst) as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn manual_clock_is_frozen_until_set() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0.0);
        assert_eq!(c.now_ms(), 0.0);
        c.set_ms(12.5);
        assert_eq!(c.now_ms(), 12.5);
        c.advance_ms(0.5);
        assert_eq!(c.now_ms(), 13.0);
    }
}

//! Runtime-dispatched SIMD micro-kernels for the matmul family.
//!
//! The scalar kernels in [`crate::ops`] define the semantics: every
//! output element is produced by a single accumulator walking the
//! reduction axis `k` in ascending order. The AVX2 kernels here keep
//! that contract exactly — each of the 8 `f32` lanes is one independent
//! output element's accumulator, and every step is a separate
//! `mul` + `add` pair (never an FMA, whose single rounding would differ
//! from scalar mul-then-add) — so the SIMD and scalar paths are
//! **bit-identical**, and both stay bit-identical at any `ODIN_THREADS`
//! (`tests/par_determinism.rs` pins this).
//!
//! Dispatch is decided once at runtime: AVX2 is used when the CPU
//! supports it and `ODIN_NO_SIMD` is not set. Tests and benches can
//! flip the path with [`set_simd_enabled`] / [`reset_simd`].

use std::sync::atomic::{AtomicU8, Ordering};

const UNKNOWN: u8 = 0;
const SCALAR: u8 = 1;
const VECTOR: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);

/// True when the running CPU can execute the AVX2 kernels.
fn cpu_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect() -> u8 {
    let disabled = std::env::var("ODIN_NO_SIMD").map(|v| v != "0" && !v.is_empty());
    if disabled.unwrap_or(false) {
        return SCALAR;
    }
    if cpu_supported() {
        VECTOR
    } else {
        SCALAR
    }
}

/// Whether the vectorized kernels are active. Decided once from CPU
/// feature detection and the `ODIN_NO_SIMD` environment variable, then
/// cached; [`set_simd_enabled`] overrides the cached decision.
pub fn simd_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        UNKNOWN => {
            let s = detect();
            STATE.store(s, Ordering::Relaxed);
            s == VECTOR
        }
        s => s == VECTOR,
    }
}

/// Forces the SIMD path on or off (test/bench hook). Enabling is a
/// no-op on CPUs without AVX2 — the scalar path stays active.
pub fn set_simd_enabled(on: bool) {
    let s = if on && cpu_supported() { VECTOR } else { SCALAR };
    STATE.store(s, Ordering::Relaxed);
}

/// Clears any [`set_simd_enabled`] override; the next [`simd_enabled`]
/// call re-derives the default from the CPU and `ODIN_NO_SIMD`.
pub fn reset_simd() {
    STATE.store(UNKNOWN, Ordering::Relaxed);
}

/// AVX2 kernel bodies. Callers must check [`simd_enabled`] first; every
/// function is `unsafe` because it requires AVX2 at runtime.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use crate::scratch;
    use std::arch::x86_64::*;

    /// Computes `R` output rows × 8 output columns: each lane of each
    /// accumulator register is one output element, walking `k` ascending
    /// with separate mul and add — the exact scalar accumulation order.
    ///
    /// `a` points at the first of `R` consecutive `k`-long rows
    /// (row stride `k`); `b` points at an 8-wide column panel with row
    /// stride `b_stride`; `out` at the first of `R` output rows (row
    /// stride `out_stride`).
    ///
    /// # Safety
    ///
    /// Requires AVX2 and in-bounds pointers for the strides above.
    #[target_feature(enable = "avx2")]
    unsafe fn rows8<const R: usize>(
        a: *const f32,
        k: usize,
        b: *const f32,
        b_stride: usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        let mut acc = [_mm256_setzero_ps(); R];
        for kk in 0..k {
            let bv = _mm256_loadu_ps(b.add(kk * b_stride));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a.add(r * k + kk));
                *accr = _mm256_add_ps(*accr, _mm256_mul_ps(av, bv));
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            _mm256_storeu_ps(out.add(r * out_stride), *accr);
        }
    }

    /// 8-lane NN kernel: `chunk = a[r0..r0+rows] × b` with `a` `[m, k]`
    /// and `b` `[k, n]`, both row-major. Bit-identical to
    /// `ops::matmul_chunk`.
    ///
    /// # Safety
    ///
    /// Requires AVX2; slices must hold a full `[rows, k] × [k, n]`
    /// problem as in the scalar kernel.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_chunk(
        ad: &[f32],
        bd: &[f32],
        chunk: &mut [f32],
        r0: usize,
        k: usize,
        n: usize,
    ) {
        let rows = chunk.len() / n;
        let mut i = 0;
        while i < rows {
            let ih = (rows - i).min(4);
            let a = ad.as_ptr().add((r0 + i) * k);
            let mut j = 0;
            while j + 8 <= n {
                let b = bd.as_ptr().add(j);
                let out = chunk.as_mut_ptr().add(i * n + j);
                match ih {
                    4 => rows8::<4>(a, k, b, n, out, n),
                    3 => rows8::<3>(a, k, b, n, out, n),
                    2 => rows8::<2>(a, k, b, n, out, n),
                    _ => rows8::<1>(a, k, b, n, out, n),
                }
                j += 8;
            }
            // Ragged column tail: scalar, same single-accumulator
            // ascending-k order.
            while j < n {
                for r in 0..ih {
                    let a_row = &ad[(r0 + i + r) * k..(r0 + i + r + 1) * k];
                    let mut acc = 0.0f32;
                    for (kk, &av) in a_row.iter().enumerate() {
                        acc += av * bd[kk * n + j];
                    }
                    chunk[(i + r) * n + j] = acc;
                }
                j += 1;
            }
            i += ih;
        }
    }

    /// 8-lane NT kernel: `chunk = a[r0..r0+rows] × bᵀ` with `a` `[m, k]`
    /// and `b` `[n, k]`, both row-major. An 8-column panel of `bᵀ` is
    /// packed into contiguous `[k × 8]` scratch (pure data movement),
    /// turning the dot-product layout into the NN kernel shape; the
    /// packing cost amortizes over the chunk's rows. Bit-identical to
    /// `ops::matmul_nt_chunk`.
    ///
    /// # Safety
    ///
    /// Requires AVX2; slices must hold a full `[rows, k] × [n, k]`
    /// problem as in the scalar kernel.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_nt_chunk(
        ad: &[f32],
        bd: &[f32],
        chunk: &mut [f32],
        r0: usize,
        k: usize,
        n: usize,
    ) {
        let rows = chunk.len() / n;
        let mut panel = scratch::take_raw(k * 8);
        panel.resize(k * 8, 0.0);
        let mut j = 0;
        while j + 8 <= n {
            for c in 0..8 {
                let src = &bd[(j + c) * k..(j + c + 1) * k];
                for (kk, &v) in src.iter().enumerate() {
                    panel[kk * 8 + c] = v;
                }
            }
            let mut i = 0;
            while i < rows {
                let ih = (rows - i).min(4);
                let a = ad.as_ptr().add((r0 + i) * k);
                let b = panel.as_ptr();
                let out = chunk.as_mut_ptr().add(i * n + j);
                match ih {
                    4 => rows8::<4>(a, k, b, 8, out, n),
                    3 => rows8::<3>(a, k, b, 8, out, n),
                    2 => rows8::<2>(a, k, b, 8, out, n),
                    _ => rows8::<1>(a, k, b, 8, out, n),
                }
                i += ih;
            }
            j += 8;
        }
        // Ragged column tail: contiguous scalar dot products.
        while j < n {
            let b_row = &bd[j * k..(j + 1) * k];
            for r in 0..rows {
                let a_row = &ad[(r0 + r) * k..(r0 + r + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in a_row.iter().zip(b_row.iter()) {
                    acc += av * bv;
                }
                chunk[r * n + j] = acc;
            }
            j += 1;
        }
        scratch::recycle(panel);
    }

    /// Int8 dot product with an i32 accumulator: 16 lanes per step via
    /// sign-extend to i16 and `madd` (pairwise multiply-add to i32).
    /// Integer addition is exact and order-independent, so this is
    /// identical to the scalar reduction for any length.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `a` and `b` must be valid for `len` reads.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: *const i8, b: *const i8, len: usize) -> i32 {
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= len {
            let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.add(i).cast()));
            let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(i).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
            i += 16;
        }
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
        let mut sum = _mm_cvtsi128_si32(s);
        while i < len {
            sum += i32::from(*a.add(i)) * i32::from(*b.add(i));
            i += 1;
        }
        sum
    }

    /// Like [`rows8`] but for the TN layout: `a` element for output row
    /// `r`, step `kk` sits at `a[kk * a_stride + r]` (`a_stride` = the
    /// original `m`). Accumulators live in registers across the whole
    /// `k` walk, so `out` is written exactly once per element.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and in-bounds pointers for the strides above.
    #[target_feature(enable = "avx2")]
    unsafe fn rows8_tn<const R: usize>(
        a: *const f32,
        k: usize,
        a_stride: usize,
        b: *const f32,
        b_stride: usize,
        out: *mut f32,
        out_stride: usize,
    ) {
        let mut acc = [_mm256_setzero_ps(); R];
        for kk in 0..k {
            let bv = _mm256_loadu_ps(b.add(kk * b_stride));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a.add(kk * a_stride + r));
                *accr = _mm256_add_ps(*accr, _mm256_mul_ps(av, bv));
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            _mm256_storeu_ps(out.add(r * out_stride), *accr);
        }
    }

    /// 8-lane TN kernel: `chunk = aᵀ[r0..r0+rows] × b` with `a` `[k, m]`
    /// and `b` `[k, n]`, both row-major. Register-blocked 4 rows × 8
    /// cols with each lane a single accumulator walking `k` ascending —
    /// the per-element order of `ops::matmul_tn_chunk`'s rank-1 updates,
    /// so results are bit-identical; ragged edges fall back to a scalar
    /// walk in the same order.
    ///
    /// # Safety
    ///
    /// Requires AVX2; slices must hold a full `[k, m] × [k, n]` problem
    /// as in the scalar kernel.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_tn_chunk(
        ad: &[f32],
        bd: &[f32],
        chunk: &mut [f32],
        r0: usize,
        k: usize,
        m: usize,
        n: usize,
    ) {
        let rows = chunk.len() / n;
        let mut i = 0;
        while i < rows {
            let ih = (rows - i).min(4);
            let a = ad.as_ptr().add(r0 + i);
            let mut j = 0;
            while j + 8 <= n {
                let b = bd.as_ptr().add(j);
                let out = chunk.as_mut_ptr().add(i * n + j);
                match ih {
                    4 => rows8_tn::<4>(a, k, m, b, n, out, n),
                    3 => rows8_tn::<3>(a, k, m, b, n, out, n),
                    2 => rows8_tn::<2>(a, k, m, b, n, out, n),
                    _ => rows8_tn::<1>(a, k, m, b, n, out, n),
                }
                j += 8;
            }
            // Ragged column tail: k-outer rank-1 updates so both inputs
            // are walked contiguously (a per-column walk would stride by
            // `m` for the whole reduction). Each output cell is still a
            // single accumulator taking its k terms in ascending order.
            if j < n {
                for r in 0..ih {
                    chunk[(i + r) * n + j..(i + r) * n + n].fill(0.0);
                }
                for kk in 0..k {
                    let av = &ad[kk * m + r0 + i..kk * m + r0 + i + ih];
                    let bv = &bd[kk * n + j..kk * n + n];
                    for (r, &ar) in av.iter().enumerate() {
                        for (c, &bc) in bv.iter().enumerate() {
                            chunk[(i + r) * n + j + c] += ar * bc;
                        }
                    }
                }
            }
            i += ih;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_flips_and_reset_rederives() {
        let before = simd_enabled();
        set_simd_enabled(false);
        assert!(!simd_enabled());
        set_simd_enabled(true);
        assert_eq!(simd_enabled(), cpu_supported());
        reset_simd();
        assert_eq!(simd_enabled(), before);
    }
}

//! The [`Layer`] trait and the [`Sequential`] container.
//!
//! ODIN's networks are plain layer stacks trained with layer-wise
//! backpropagation: `forward` caches whatever `backward` needs, `backward`
//! accumulates parameter gradients and returns the gradient with respect to
//! its input. There is no tape/autograd — every model in the paper is a
//! feed-forward composition, so this is all that is needed, and it keeps
//! memory behaviour predictable.

use crate::tensor::Tensor;

/// A differentiable network layer.
///
/// Layers are `Send + Sync`: a frozen network can be shared across
/// threads (e.g. a teacher model serving distillation workers) as long
/// as only [`Layer::infer`] is called.
pub trait Layer: Send + Sync {
    /// Runs the layer forward. When `train` is true the layer caches
    /// activations required by [`Layer::backward`].
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Inference-mode forward pass through `&self`: no activation
    /// caching, no running-statistic updates, no interior mutability.
    /// Must produce exactly the same output as `forward(input, false)`.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_out` (gradient of the loss w.r.t. this layer's
    /// output), accumulating parameter gradients internally and returning
    /// the gradient w.r.t. this layer's input.
    ///
    /// Must be preceded by a `forward(.., train=true)` call.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Immutable access to trainable parameters (for counting/serialization).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// `(parameter, accumulated gradient)` pairs, in a stable order.
    fn params_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        for (_, g) in self.params_grads() {
            g.fill_zero();
        }
    }

    /// Non-trainable state that must survive serialization (e.g. batch
    /// norm running statistics). Defaults to empty.
    fn extra_state(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Length of [`Layer::extra_state`].
    fn extra_state_len(&self) -> usize {
        0
    }

    /// Restores state produced by [`Layer::extra_state`].
    ///
    /// # Panics
    ///
    /// Implementations panic on length mismatch.
    fn load_extra_state(&mut self, _state: &[f32]) {}

    /// Human-readable layer name for debugging.
    fn name(&self) -> &'static str;
}

/// A stack of layers applied in order.
///
/// `Sequential` itself implements [`Layer`], so stacks compose.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of trainable scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.params().iter().map(|p| p.numel()).sum::<usize>()).sum()
    }

    /// Model size in bytes (f32 parameters).
    pub fn param_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    /// Total length of an [`Sequential::export_params`] buffer:
    /// trainable parameters plus non-trainable state (batch-norm running
    /// statistics).
    pub fn export_len(&self) -> usize {
        self.num_params() + self.layers.iter().map(|l| l.extra_state_len()).sum::<usize>()
    }

    /// Copies all parameters into one flat buffer, in layer order,
    /// followed by each layer's non-trainable state.
    pub fn export_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.export_len());
        for l in &self.layers {
            for p in l.params() {
                out.extend_from_slice(p.data());
            }
        }
        for l in &self.layers {
            out.extend(l.extra_state());
        }
        out
    }

    /// Restores parameters (and non-trainable state) from a flat buffer
    /// produced by [`Sequential::export_params`] on an identically shaped
    /// stack.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match [`Sequential::export_len`].
    pub fn import_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.export_len(), "parameter buffer length mismatch");
        let mut offset = 0usize;
        for l in &mut self.layers {
            for (p, _) in l.params_grads() {
                let n = p.numel();
                p.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
        for l in &mut self.layers {
            let n = l.extra_state_len();
            l.load_extra_state(&flat[offset..offset + n]);
            offset += n;
        }
        debug_assert_eq!(offset, flat.len());
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x, train);
        }
        x
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for l in &self.layers {
            x = l.infer(&x);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers.iter_mut().flat_map(|l| l.params_grads()).collect()
    }

    fn extra_state(&self) -> Vec<f32> {
        self.layers.iter().flat_map(|l| l.extra_state()).collect()
    }

    fn extra_state_len(&self) -> usize {
        self.layers.iter().map(|l| l.extra_state_len()).sum()
    }

    fn load_extra_state(&mut self, state: &[f32]) {
        let mut offset = 0usize;
        for l in &mut self.layers {
            let n = l.extra_state_len();
            l.load_extra_state(&state[offset..offset + n]);
            offset += n;
        }
        assert_eq!(offset, state.len(), "extra-state buffer length mismatch");
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new(4, 8, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 2, &mut rng))
    }

    #[test]
    fn sequential_forward_shape() {
        let mut net = tiny_net(0);
        let x = Tensor::zeros(&[3, 4]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[3, 2]);
    }

    #[test]
    fn num_params_counts_weights_and_biases() {
        let net = tiny_net(0);
        // 4*8 + 8 + 8*2 + 2 = 58
        assert_eq!(net.num_params(), 58);
        assert_eq!(net.param_bytes(), 58 * 4);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = tiny_net(1);
        let mut b = tiny_net(2);
        let x = Tensor::ones(&[1, 4]);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_ne!(ya.data(), yb.data(), "different seeds should differ");
        let blob = a.export_params();
        b.import_params(&blob);
        let yb2 = b.forward(&x, false);
        assert_eq!(ya.data(), yb2.data());
    }

    #[test]
    #[should_panic(expected = "parameter buffer")]
    fn import_wrong_length_panics() {
        let mut net = tiny_net(0);
        net.import_params(&[0.0; 3]);
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut net = tiny_net(3);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, -0.3, 1.2, 0.0, 4.0], &[2, 4]);
        let eval = net.forward(&x, false);
        let inferred = net.infer(&x);
        assert_eq!(eval.data(), inferred.data());
    }

    #[test]
    fn zero_grad_clears_accumulated_gradients() {
        let mut net = tiny_net(0);
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.shape()));
        let any_nonzero =
            net.params_grads().iter().any(|(_, g)| g.data().iter().any(|&v| v != 0.0));
        assert!(any_nonzero);
        net.zero_grad();
        let all_zero = net.params_grads().iter().all(|(_, g)| g.data().iter().all(|&v| v == 0.0));
        assert!(all_zero);
    }
}

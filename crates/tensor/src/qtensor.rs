//! Int8 quantized inference primitives.
//!
//! Quantization scheme (the standard symmetric-linear edge recipe):
//!
//! * **Weights** are quantized per output channel: each channel's scale
//!   is `max_abs / 127`, values are rounded to nearest (ties to even —
//!   the IEEE default, so the scalar `round_ties_even` and the AVX2
//!   `roundps` produce identical bytes) and clamped to `[-127, 127]`.
//!   Symmetric (no zero point) keeps the integer kernel a plain dot
//!   product.
//! * **Activations** are quantized per tensor with a dynamic scale
//!   computed from the tensor's own max-abs at inference time
//!   ([`quantize_activations`]), so no calibration set is needed.
//! * **Accumulation** is exact `i32` (largest product is `127² =
//!   16129`, so a reduction would need ~130 000 terms to overflow —
//!   far beyond any layer here). Because integer addition is
//!   associative, the SIMD and scalar integer kernels are *identical*,
//!   not merely close.
//! * **Requantization** back to f32 multiplies the accumulator by
//!   `x_scale * w_scale[channel]` and adds the (f32) bias; an optional
//!   leaky-ReLU slope is fused into the same pass.
//!
//! [`QConv2d`] deliberately does **not** use im2col: activations are
//! kept in NHWC (channels-last) layout, where a `k×k` patch row is
//! `k * C` *contiguous* bytes, so direct convolution is a handful of
//! long int8 dot products per output position and the im2col
//! gather/copy pass — over half the f32 serving cost — disappears
//! entirely.

use crate::simd;

/// Quantizes one f32 value with round-to-nearest-even and the
/// symmetric clamp. Ties-to-even matches the AVX2 `roundps` default, so
/// the scalar and SIMD quantizers emit identical bytes.
#[inline]
fn q8(v: f32, inv_scale: f32) -> i8 {
    (v * inv_scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

/// Max absolute value of a slice (0.0 for an empty one). Dispatches to
/// AVX2; `max` over `abs` is order-independent, so the paths agree
/// exactly.
pub fn max_abs(src: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd::simd_enabled() {
        // Safety: simd_enabled() is true only when AVX2 was detected.
        return unsafe { max_abs_avx2(src) };
    }
    src.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn max_abs_avx2(src: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = src.len();
    let sp = src.as_ptr();
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        acc = _mm256_max_ps(acc, _mm256_and_ps(_mm256_loadu_ps(sp.add(i)), abs_mask));
        i += 8;
    }
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps(acc, 1);
    let m = _mm_max_ps(lo, hi);
    let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    let m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    let mut out = _mm_cvtss_f32(m);
    for k in i..n {
        out = out.max(src.get_unchecked(k).abs());
    }
    out
}

/// Quantizes `src` into `dst` (same length) with the given inverse
/// scale: `dst[i] = clamp(round(src[i] * inv_scale))`. The AVX2 path
/// (`roundps` + saturating packs) produces exactly the bytes the scalar
/// path does.
pub fn quantize_into(src: &[f32], inv_scale: f32, dst: &mut [i8]) {
    assert_eq!(src.len(), dst.len(), "quantize_into length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::simd_enabled() {
        // Safety: simd_enabled() is true only when AVX2 was detected.
        unsafe { quantize_into_avx2(src, inv_scale, dst) };
        return;
    }
    for (d, &v) in dst.iter_mut().zip(src.iter()) {
        *d = q8(v, inv_scale);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_into_avx2(src: &[f32], inv_scale: f32, dst: &mut [i8]) {
    use std::arch::x86_64::*;
    const NEAREST: i32 = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
    let n = src.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let invv = _mm256_set1_ps(inv_scale);
    let lov = _mm256_set1_ps(-127.0);
    let hiv = _mm256_set1_ps(127.0);
    macro_rules! quant8 {
        ($off:expr) => {{
            let t = _mm256_mul_ps(_mm256_loadu_ps(sp.add($off)), invv);
            let t = _mm256_round_ps::<NEAREST>(t);
            let t = _mm256_min_ps(_mm256_max_ps(t, lov), hiv);
            _mm256_cvtps_epi32(t)
        }};
    }
    let mut i = 0;
    while i + 32 <= n {
        let q0 = quant8!(i);
        let q1 = quant8!(i + 8);
        let q2 = quant8!(i + 16);
        let q3 = quant8!(i + 24);
        // packs interleaves 128-bit lanes; the permute restores source
        // order (dword j of the packed result holds elements 4j..4j+3).
        let p01 = _mm256_packs_epi32(q0, q1);
        let p23 = _mm256_packs_epi32(q2, q3);
        let b = _mm256_packs_epi16(p01, p23);
        let idx = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        let b = _mm256_permutevar8x32_epi32(b, idx);
        _mm256_storeu_si256(dp.add(i).cast(), b);
        i += 32;
    }
    for k in i..n {
        *dst.get_unchecked_mut(k) = q8(*src.get_unchecked(k), inv_scale);
    }
}

/// Per-tensor symmetric quantization of activations into `dst`
/// (resized to match). Returns the scale such that
/// `src[i] ≈ dst[i] as f32 * scale`; an all-zero tensor gets scale 1.
pub fn quantize_activations(src: &[f32], dst: &mut Vec<i8>) -> f32 {
    let max = max_abs(src);
    let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
    dst.clear();
    dst.resize(src.len(), 0);
    quantize_into(src, 1.0 / scale, dst);
    scale
}

/// Int8 dot product with an i32 accumulator. Dispatches to the AVX2
/// `madd` kernel when enabled; the scalar reduction computes the exact
/// same integer, so the paths are interchangeable.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if simd::simd_enabled() {
        // Safety: simd_enabled() is true only when AVX2 was detected,
        // and the pointers cover exactly `len` elements.
        return unsafe { simd::avx2::dot_i8(a.as_ptr(), b.as_ptr(), a.len()) };
    }
    a.iter().zip(b.iter()).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum()
}

/// Quantizes an `[rows, cols]` f32 weight matrix per row (= per output
/// channel). Returns the i8 matrix and one scale per row.
fn quantize_rows(w: &[f32], rows: usize, cols: usize) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(w.len(), rows * cols, "weight matrix shape mismatch");
    let mut q = Vec::with_capacity(rows * cols);
    let mut scales = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let inv = 1.0 / scale;
        q.extend(row.iter().map(|&v| q8(v, inv)));
        scales.push(scale);
    }
    (q, scales)
}

/// An int8 fully-connected layer: per-row quantized weights, f32 bias.
pub struct QDense {
    in_f: usize,
    out_f: usize,
    w: Vec<i8>,
    w_scale: Vec<f32>,
    bias: Vec<f32>,
}

impl QDense {
    /// Quantizes an f32 dense layer given its `[out_f, in_f]` row-major
    /// weights and `out_f` biases.
    pub fn new(w: &[f32], bias: &[f32], in_f: usize, out_f: usize) -> Self {
        assert_eq!(bias.len(), out_f, "bias length mismatch");
        let (w, w_scale) = quantize_rows(w, out_f, in_f);
        QDense { in_f, out_f, w, w_scale, bias: bias.to_vec() }
    }

    /// Forward for a batch of rows: quantizes `x` (`[rows, in_f]`),
    /// runs the int8 matmul, requantizes into `out` (`[rows, out_f]`).
    pub fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len() % self.in_f, 0, "input is not a multiple of in_f");
        let rows = x.len() / self.in_f;
        let mut xq = Vec::new();
        let x_scale = quantize_activations(x, &mut xq);
        out.clear();
        out.reserve(rows * self.out_f);
        for r in 0..rows {
            let xr = &xq[r * self.in_f..(r + 1) * self.in_f];
            for o in 0..self.out_f {
                let wr = &self.w[o * self.in_f..(o + 1) * self.in_f];
                let acc = dot_i8(xr, wr);
                out.push(acc as f32 * (x_scale * self.w_scale[o]) + self.bias[o]);
            }
        }
    }

    /// Bytes of the served representation: i8 weights + f32 scales +
    /// f32 biases.
    pub fn param_bytes(&self) -> usize {
        self.w.len() + 4 * (self.w_scale.len() + self.bias.len())
    }
}

/// An int8 2-D convolution over NHWC activations: direct (no im2col),
/// square kernel, uniform stride, zero padding, optional fused
/// leaky-ReLU.
///
/// Per output position the kernel window is gathered once into a
/// contiguous zero-padded patch buffer (`k` short memcpys of int8 —
/// this is all that remains of im2col), and every output channel is
/// then one unbroken int8 dot over the padded length, so the AVX2
/// `madd` pipeline never sees a ragged tail or an edge case.
pub struct QConv2d {
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// Patch length `in_c * k * k`.
    l: usize,
    /// `l` rounded up to a multiple of 16 (one `madd` step); weight
    /// rows and the patch buffer are zero-padded to this length.
    l_pad: usize,
    /// `[out_c][l_pad]`, patch order `[ky][kx][ic]` (channels-last).
    w: Vec<i8>,
    w_scale: Vec<f32>,
    bias: Vec<f32>,
    /// Fused activation negative slope (`Some(0.0)` = ReLU, `None` =
    /// linear), matching `Conv2d`'s fused activation.
    act: Option<f32>,
}

impl QConv2d {
    /// Quantizes an f32 convolution given its `[out_c, in_c * k * k]`
    /// row-major weights in im2col patch order (`[ic][ky][kx]`, the
    /// `Conv2d` storage layout) and `out_c` biases. Weights are
    /// reordered to channels-last `[ky][kx][ic]` for the NHWC kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        w: &[f32],
        bias: &[f32],
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        act: Option<f32>,
    ) -> Self {
        let fan_in = in_c * kernel * kernel;
        assert_eq!(w.len(), out_c * fan_in, "conv weight shape mismatch");
        assert_eq!(bias.len(), out_c, "bias length mismatch");
        if let Some(a) = act {
            assert!(a >= 0.0, "fused activation slope must be non-negative");
        }
        // [ic][ky][kx] → [ky][kx][ic], per output channel.
        let mut nhwc = vec![0.0f32; w.len()];
        for o in 0..out_c {
            for ic in 0..in_c {
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let src = o * fan_in + (ic * kernel + ky) * kernel + kx;
                        let dst = o * fan_in + (ky * kernel + kx) * in_c + ic;
                        nhwc[dst] = w[src];
                    }
                }
            }
        }
        let l = fan_in;
        let l_pad = l.div_ceil(16) * 16;
        let mut wq = vec![0i8; out_c * l_pad];
        let mut w_scale = Vec::with_capacity(out_c);
        for o in 0..out_c {
            let row = &nhwc[o * l..(o + 1) * l];
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            let inv = 1.0 / scale;
            for (i, &v) in row.iter().enumerate() {
                wq[o * l_pad + i] = q8(v, inv);
            }
            w_scale.push(scale);
        }
        QConv2d {
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            l,
            l_pad,
            w: wq,
            w_scale,
            bias: bias.to_vec(),
            act,
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Spatial output size for an `h`×`w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Copies the kernel window at `(oy, ox)` into `patch`
    /// (`l_pad` long, tail already zero): `k` contiguous NHWC row runs,
    /// with out-of-bounds (zero-padding) regions cleared. Zero terms
    /// contribute nothing to the integer dot, so this is exact.
    #[inline(always)]
    fn gather_patch(&self, x: &[i8], h: usize, w: usize, oy: usize, ox: usize, patch: &mut [i8]) {
        let (k, c) = (self.kernel, self.in_c);
        let y0 = (oy * self.stride) as isize - self.pad as isize;
        let x0 = (ox * self.stride) as isize - self.pad as isize;
        let ky_lo = (-y0).clamp(0, k as isize) as usize;
        let ky_hi = (h as isize - y0).clamp(ky_lo as isize, k as isize) as usize;
        let kx_lo = (-x0).clamp(0, k as isize) as usize;
        let kx_hi = (w as isize - x0).clamp(kx_lo as isize, k as isize) as usize;
        let interior = ky_lo == 0 && ky_hi == k && kx_lo == 0 && kx_hi == k;
        if !interior {
            patch[..self.l].fill(0);
        }
        let run = (kx_hi - kx_lo) * c;
        for ky in ky_lo..ky_hi {
            let iy = (y0 + ky as isize) as usize;
            let src = ((iy * w) as isize + x0 + kx_lo as isize) as usize * c;
            let doff = (ky * k + kx_lo) * c;
            patch[doff..doff + run].copy_from_slice(&x[src..src + run]);
        }
    }

    /// Requantize + bias + fused activation for one accumulator.
    #[inline(always)]
    fn finish(&self, acc: i32, m: f32, bias: f32) -> f32 {
        let s = acc as f32 * m + bias;
        match self.act {
            None => s,
            Some(a) if a > 0.0 => {
                if s > 0.0 {
                    s
                } else {
                    a * s
                }
            }
            Some(_) => s.max(0.0),
        }
    }

    /// Scalar conv body — the portable fallback, and the reference the
    /// AVX2 body must match exactly (it does: integer accumulation is
    /// order-independent and the requantization arithmetic is
    /// identical).
    #[allow(clippy::too_many_arguments)]
    fn forward_body_scalar(
        &self,
        x: &[i8],
        h: usize,
        w: usize,
        m: &[f32],
        out: &mut [f32],
        oh: usize,
        ow: usize,
        patch: &mut [i8],
    ) {
        for oy in 0..oh {
            for ox in 0..ow {
                self.gather_patch(x, h, w, oy, ox, patch);
                let dst = &mut out[(oy * ow + ox) * self.out_c..(oy * ow + ox + 1) * self.out_c];
                for (o, d) in dst.iter_mut().enumerate() {
                    let wrow = &self.w[o * self.l_pad..o * self.l_pad + self.l];
                    let acc: i32 = patch[..self.l]
                        .iter()
                        .zip(wrow.iter())
                        .map(|(&a, &b)| i32::from(a) * i32::from(b))
                        .sum();
                    *d = self.finish(acc, m[o], self.bias[o]);
                }
            }
        }
    }

    /// AVX2 conv body: one compilation unit so the gather, the `madd`
    /// dot, and requantization all inline together.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn forward_body_avx2(
        &self,
        x: &[i8],
        h: usize,
        w: usize,
        m: &[f32],
        out: &mut [f32],
        oh: usize,
        ow: usize,
        patch: &mut [i8],
    ) {
        use std::arch::x86_64::*;
        let oc4 = self.out_c / 4 * 4;
        for oy in 0..oh {
            for ox in 0..ow {
                self.gather_patch(x, h, w, oy, ox, patch);
                let pp = patch.as_ptr();
                let dst = &mut out[(oy * ow + ox) * self.out_c..(oy * ow + ox + 1) * self.out_c];
                // Four output channels per pass share each patch load.
                let mut o = 0;
                while o < oc4 {
                    let w0 = self.w.as_ptr().add(o * self.l_pad);
                    let w1 = w0.add(self.l_pad);
                    let w2 = w1.add(self.l_pad);
                    let w3 = w2.add(self.l_pad);
                    let mut a0 = _mm256_setzero_si256();
                    let mut a1 = _mm256_setzero_si256();
                    let mut a2 = _mm256_setzero_si256();
                    let mut a3 = _mm256_setzero_si256();
                    let mut i = 0;
                    while i < self.l_pad {
                        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(pp.add(i).cast()));
                        let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w0.add(i).cast()));
                        a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(av, b0));
                        let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w1.add(i).cast()));
                        a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(av, b1));
                        let b2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w2.add(i).cast()));
                        a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(av, b2));
                        let b3 = _mm256_cvtepi8_epi16(_mm_loadu_si128(w3.add(i).cast()));
                        a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(av, b3));
                        i += 16;
                    }
                    // Horizontal-sum all four accumulators at once:
                    // after two hadd rounds dword j of each lane is one
                    // channel's partial sum; adding the lanes finishes.
                    let s01 = _mm256_hadd_epi32(a0, a1);
                    let s23 = _mm256_hadd_epi32(a2, a3);
                    let s = _mm256_hadd_epi32(s01, s23);
                    let acc4 =
                        _mm_add_epi32(_mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1));
                    let mut accs = [0i32; 4];
                    _mm_storeu_si128(accs.as_mut_ptr().cast(), acc4);
                    for j in 0..4 {
                        dst[o + j] = self.finish(accs[j], m[o + j], self.bias[o + j]);
                    }
                    o += 4;
                }
                // Remaining channels (out_c not a multiple of 4).
                for o in oc4..self.out_c {
                    let wp = self.w.as_ptr().add(o * self.l_pad);
                    let mut acc = _mm256_setzero_si256();
                    let mut i = 0;
                    while i < self.l_pad {
                        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(pp.add(i).cast()));
                        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(wp.add(i).cast()));
                        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
                        i += 16;
                    }
                    let lo = _mm256_castsi256_si128(acc);
                    let hi = _mm256_extracti128_si256(acc, 1);
                    let s = _mm_add_epi32(lo, hi);
                    let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
                    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
                    dst[o] = self.finish(_mm_cvtsi128_si32(s), m[o], self.bias[o]);
                }
            }
        }
    }

    /// Direct NHWC convolution of one image: `x` is `[h][w][in_c]` i8
    /// with per-tensor scale `x_scale`; writes `[oh][ow][out_c]` f32
    /// into `out` (resized), with bias and the fused activation
    /// applied. The SIMD and scalar bodies produce identical results.
    pub fn forward_nhwc(
        &self,
        x: &[i8],
        x_scale: f32,
        h: usize,
        w: usize,
        out: &mut Vec<f32>,
    ) -> (usize, usize) {
        assert_eq!(x.len(), h * w * self.in_c, "input shape mismatch");
        let (oh, ow) = self.out_hw(h, w);
        out.clear();
        out.resize(oh * ow * self.out_c, 0.0);
        // Per-channel requantization multipliers for this input scale.
        let m: Vec<f32> = self.w_scale.iter().map(|&s| s * x_scale).collect();
        let mut patch = vec![0i8; self.l_pad];
        #[cfg(target_arch = "x86_64")]
        if simd::simd_enabled() {
            // Safety: simd_enabled() is true only when AVX2 was detected.
            unsafe { self.forward_body_avx2(x, h, w, &m, out, oh, ow, &mut patch) };
            return (oh, ow);
        }
        self.forward_body_scalar(x, h, w, &m, out, oh, ow, &mut patch);
        (oh, ow)
    }

    /// Bytes of the served representation: i8 weights (unpadded) +
    /// f32 scales + f32 biases.
    pub fn param_bytes(&self) -> usize {
        self.out_c * self.l + 4 * (self.w_scale.len() + self.bias.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let src: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let mut q = Vec::new();
        let scale = quantize_activations(&src, &mut q);
        let max_abs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for (&v, &qi) in src.iter().zip(q.iter()) {
            let back = f32::from(qi) * scale;
            assert!((v - back).abs() <= scale * 0.5 + 1e-6, "error beyond half a step");
            let _ = max_abs;
        }
    }

    #[test]
    fn zero_tensor_quantizes_to_zero_with_unit_scale() {
        let mut q = Vec::new();
        let scale = quantize_activations(&[0.0; 8], &mut q);
        assert_eq!(scale, 1.0);
        assert!(q.iter().all(|&v| v == 0));
    }

    #[test]
    fn dot_i8_matches_scalar_reduction() {
        let a: Vec<i8> = (0..100).map(|i| ((i * 37) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..100).map(|i| ((i * 91) % 255 - 127) as i8).collect();
        let expect: i32 = a.iter().zip(b.iter()).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum();
        assert_eq!(dot_i8(&a, &b), expect);
    }

    #[test]
    fn qdense_approximates_f32_matmul() {
        let (inf, outf) = (16, 4);
        let w: Vec<f32> = (0..inf * outf).map(|i| ((i as f32) * 0.13).sin() * 0.5).collect();
        let bias = vec![0.1, -0.2, 0.3, 0.0];
        let x: Vec<f32> = (0..inf * 2).map(|i| ((i as f32) * 0.7).cos()).collect();
        let qd = QDense::new(&w, &bias, inf, outf);
        let mut got = Vec::new();
        qd.forward(&x, &mut got);
        for r in 0..2 {
            for o in 0..outf {
                let mut acc = bias[o];
                for i in 0..inf {
                    acc += x[r * inf + i] * w[o * inf + i];
                }
                let g = got[r * outf + o];
                assert!((g - acc).abs() < 0.05, "row {r} out {o}: {g} vs {acc}");
            }
        }
    }

    #[test]
    fn qconv_1x1_identity_passes_through_with_quant_noise() {
        // 1x1 kernel, identity weight on 1 channel: y ≈ x.
        let qc = QConv2d::new(&[1.0], &[0.0], 1, 1, 1, 1, 0, None);
        let x_f: Vec<f32> = vec![0.5, -1.0, 0.25, 1.0];
        let mut xq = Vec::new();
        let s = quantize_activations(&x_f, &mut xq);
        let mut out = Vec::new();
        let (oh, ow) = qc.forward_nhwc(&xq, s, 2, 2, &mut out);
        assert_eq!((oh, ow), (2, 2));
        for (a, b) in out.iter().zip(x_f.iter()) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn qconv_serving_bytes_shrink_4x() {
        let fan = 3 * 3 * 16;
        let w = vec![0.5f32; 32 * fan];
        let b = vec![0.0f32; 32];
        let qc = QConv2d::new(&w, &b, 16, 32, 3, 2, 1, Some(0.2));
        let f32_bytes = (32 * fan + 32) * 4;
        assert!(qc.param_bytes() * 3 < f32_bytes, "int8 model not ~4x smaller");
    }
}

//! Seeded weight initialization.

use rand::rngs::StdRng;
use rand::Rng;

use crate::tensor::Tensor;

/// A tensor of i.i.d. normal samples with the given standard deviation.
///
/// Uses Box–Muller so the only dependency is a uniform source; every
/// initialization in ODIN is reproducible from a seed.
pub fn normal(rng: &mut StdRng, shape: &[usize], std: f32) -> Tensor {
    let numel: usize = shape.iter().product();
    let mut data = Vec::with_capacity(numel);
    while data.len() < numel {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < numel {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, shape)
}

/// A tensor of uniform samples in `[lo, hi)`.
pub fn uniform(rng: &mut StdRng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Samples a batch of latent vectors from the standard normal — the
/// "desired distribution" the DA-GAN latent discriminator enforces.
pub fn randn_latent(rng: &mut StdRng, batch: usize, dim: usize) -> Tensor {
    normal(rng, &[batch, dim], 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = normal(&mut rng, &[10_000], 2.0);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!((var - 4.0).abs() < 0.3, "variance {var} too far from 4");
    }

    #[test]
    fn normal_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(normal(&mut a, &[16], 1.0).data(), normal(&mut b, &[16], 1.0).data());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = uniform(&mut rng, &[1000], -1.0, 1.0);
        assert!(t.max() < 1.0);
        assert!(t.min() >= -1.0);
    }

    #[test]
    fn latent_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let z = randn_latent(&mut rng, 4, 32);
        assert_eq!(z.shape(), &[4, 32]);
    }
}

//! Linear-algebra and convolution primitives.
//!
//! The convolution layers are built on `im2col`/`col2im`, which turn a
//! convolution into one large matrix multiply — the standard trick for a
//! CPU implementation with no SIMD intrinsics.

use crate::tensor::Tensor;

/// Matrix multiply: `a [m, k] × b [k, n] → [m, n]`.
///
/// Uses the cache-friendly i-k-j loop ordering.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix multiply with the right-hand side transposed:
/// `a [m, k] × bᵀ where b is [n, k] → [m, n]`.
///
/// Avoids materializing the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_nt lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_nt rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix multiply with the left-hand side transposed:
/// `aᵀ where a is [k, m] × b [k, n] → [m, n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_tn lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_tn rhs must be 2-D");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height for this geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_h(&self) -> usize {
        let padded = self.in_h + 2 * self.pad;
        assert!(padded >= self.kernel, "kernel larger than padded input height");
        (padded - self.kernel) / self.stride + 1
    }

    /// Output width for this geometry.
    pub fn out_w(&self) -> usize {
        let padded = self.in_w + 2 * self.pad;
        assert!(padded >= self.kernel, "kernel larger than padded input width");
        (padded - self.kernel) / self.stride + 1
    }
}

/// Unfolds an image batch `[B, C, H, W]` into a column matrix
/// `[B * out_h * out_w, C * k * k]` so convolution becomes a matmul.
pub fn im2col(input: &Tensor, g: &ConvGeom) -> Tensor {
    assert_eq!(input.ndim(), 4, "im2col expects [B, C, H, W]");
    let b = input.shape()[0];
    assert_eq!(input.shape()[1], g.in_c, "channel mismatch");
    assert_eq!(input.shape()[2], g.in_h, "height mismatch");
    assert_eq!(input.shape()[3], g.in_w, "width mismatch");
    let (oh, ow) = (g.out_h(), g.out_w());
    let patch = g.in_c * g.kernel * g.kernel;
    let mut out = vec![0.0f32; b * oh * ow * patch];
    let data = input.data();
    let img_stride = g.in_c * g.in_h * g.in_w;
    let chan_stride = g.in_h * g.in_w;
    let mut row = 0usize;
    for bi in 0..b {
        let img = &data[bi * img_stride..(bi + 1) * img_stride];
        for oy in 0..oh {
            for ox in 0..ow {
                let dst = &mut out[row * patch..(row + 1) * patch];
                let mut di = 0usize;
                for c in 0..g.in_c {
                    let chan = &img[c * chan_stride..(c + 1) * chan_stride];
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            di += g.kernel;
                            continue;
                        }
                        let row_base = iy as usize * g.in_w;
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if ix >= 0 && ix < g.in_w as isize {
                                dst[di] = chan[row_base + ix as usize];
                            }
                            di += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(out, &[b * oh * ow, patch])
}

/// Folds a column-matrix gradient back into an image gradient — the adjoint
/// of [`im2col`]. Overlapping patches accumulate.
pub fn col2im(cols: &Tensor, g: &ConvGeom, batch: usize) -> Tensor {
    let (oh, ow) = (g.out_h(), g.out_w());
    let patch = g.in_c * g.kernel * g.kernel;
    assert_eq!(cols.shape(), &[batch * oh * ow, patch], "col2im shape mismatch");
    let mut out = vec![0.0f32; batch * g.in_c * g.in_h * g.in_w];
    let data = cols.data();
    let img_stride = g.in_c * g.in_h * g.in_w;
    let chan_stride = g.in_h * g.in_w;
    let mut row = 0usize;
    for bi in 0..batch {
        let img = &mut out[bi * img_stride..(bi + 1) * img_stride];
        for oy in 0..oh {
            for ox in 0..ow {
                let src = &data[row * patch..(row + 1) * patch];
                let mut si = 0usize;
                for c in 0..g.in_c {
                    for ky in 0..g.kernel {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            si += g.kernel;
                            continue;
                        }
                        let row_base = c * chan_stride + iy as usize * g.in_w;
                        for kx in 0..g.kernel {
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if ix >= 0 && ix < g.in_w as isize {
                                img[row_base + ix as usize] += src[si];
                            }
                            si += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(out, &[batch, g.in_c, g.in_h, g.in_w])
}

/// Numerically stable softmax over the last axis of a 2-D tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "softmax_rows expects a 2-D tensor");
    let (r, c) = (x.shape()[0], x.shape()[1]);
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        let row = &x.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - m).exp();
            out[i * c + j] = e;
            sum += e;
        }
        for v in &mut out[i * c..(i + 1) * c] {
            *v /= sum;
        }
    }
    Tensor::from_vec(out, &[r, c])
}

/// Stable elementwise sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(matmul(&a, &eye).data(), a.data());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[4, 3]);
        let expect = matmul(&a, &b.transpose());
        let got = matmul_nt(&a, &b);
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]);
        let expect = matmul(&a.transpose(), &b);
        let got = matmul_tn(&a, &b);
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_geom_output_sizes() {
        let g = ConvGeom { in_c: 3, in_h: 8, in_w: 8, kernel: 3, stride: 2, pad: 1 };
        assert_eq!(g.out_h(), 4);
        assert_eq!(g.out_w(), 4);
        let g2 = ConvGeom { in_c: 1, in_h: 5, in_w: 5, kernel: 3, stride: 1, pad: 0 };
        assert_eq!(g2.out_h(), 3);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is just a reshape.
        let g = ConvGeom { in_c: 2, in_h: 2, in_w: 2, kernel: 1, stride: 1, pad: 0 };
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[4, 2]);
        // Row r = spatial position, columns = channels.
        assert_eq!(cols.get(&[0, 0]), 0.0);
        assert_eq!(cols.get(&[0, 1]), 4.0);
        assert_eq!(cols.get(&[3, 0]), 3.0);
        assert_eq!(cols.get(&[3, 1]), 7.0);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let g = ConvGeom { in_c: 1, in_h: 2, in_w: 2, kernel: 3, stride: 1, pad: 1 };
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[4, 9]);
        // Top-left output position: its 3x3 patch has 4 real pixels, 5 padded.
        let first: f32 = cols.row(0).sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let g = ConvGeom { in_c: 2, in_h: 5, in_w: 4, kernel: 3, stride: 2, pad: 1 };
        let n_in = 2 * 5 * 4;
        let x = Tensor::from_vec(
            (0..n_in).map(|i| ((i * 37 % 11) as f32 - 5.0) * 0.3).collect(),
            &[1, 2, 5, 4],
        );
        let cols = im2col(&x, &g);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| ((i * 17 % 7) as f32 - 3.0) * 0.2).collect(),
            cols.shape(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, &g, 1);
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(!s.has_non_finite());
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(-1e30).is_finite());
    }
}

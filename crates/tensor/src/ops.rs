//! Linear-algebra and convolution primitives.
//!
//! The convolution layers are built on `im2col`/`col2im`, which turn a
//! convolution into one large matrix multiply — the standard trick for a
//! CPU implementation with no SIMD intrinsics.
//!
//! All three matmul variants share the same structure: the public
//! function is a thin dispatcher that splits the output into row blocks
//! (a pure function of the row count — see [`crate::par`]) and runs a
//! register-blocked 4×4 micro-kernel over each block, on the worker pool
//! when the problem is big enough and serially otherwise. Every output
//! element is produced by a single accumulator walking `k` in ascending
//! order, so the serial and parallel paths are bit-identical at any
//! thread count.

use crate::par;
use crate::scratch;
use crate::simd;
use crate::tensor::Tensor;

/// Micro-kernel tile edge: output is computed in 4×4 register tiles.
const TILE: usize = 4;

/// Partitions `out` (`rows * width` elements) into row blocks and runs
/// `body(block, first_row, chunk)` over each — on the worker pool when
/// `flops` crosses the parallel threshold, serially otherwise. Both
/// paths use the identical partition and body, so they are bit-identical.
fn run_row_blocks(
    out: &mut [f32],
    width: usize,
    rows: usize,
    flops: usize,
    body: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    let grain = par::row_grain(rows);
    let blocks = rows.div_ceil(grain.max(1));
    if par::should_parallelize(flops, blocks) {
        par::parallel_row_blocks(out, width, rows, grain, body);
    } else {
        for bi in 0..blocks {
            let r0 = bi * grain;
            let r1 = (r0 + grain).min(rows);
            body(bi, r0, &mut out[r0 * width..r1 * width]);
        }
    }
}

/// NN chunk kernel: dispatches to the AVX2 micro-kernel when enabled,
/// else the scalar 4×4 tiles. Both produce bit-identical results.
fn matmul_chunk(ad: &[f32], bd: &[f32], chunk: &mut [f32], r0: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd::simd_enabled() {
        // Safety: simd_enabled() is true only when AVX2 was detected.
        unsafe { simd::avx2::matmul_chunk(ad, bd, chunk, r0, k, n) };
        return;
    }
    matmul_chunk_scalar(ad, bd, chunk, r0, k, n);
}

/// 4×4-blocked kernel for `out[r0..][..] = a[r0..] × b` where
/// `a` is `[m, k]` row-major and `b` is `[k, n]` row-major.
fn matmul_chunk_scalar(ad: &[f32], bd: &[f32], chunk: &mut [f32], r0: usize, k: usize, n: usize) {
    let rows = chunk.len() / n;
    let mut i = 0;
    while i < rows {
        let ih = (rows - i).min(TILE);
        let a_base = (r0 + i) * k;
        let mut j = 0;
        while j < n {
            let jw = (n - j).min(TILE);
            if ih == TILE && jw == TILE {
                let a0 = &ad[a_base..a_base + k];
                let a1 = &ad[a_base + k..a_base + 2 * k];
                let a2 = &ad[a_base + 2 * k..a_base + 3 * k];
                let a3 = &ad[a_base + 3 * k..a_base + 4 * k];
                let mut acc = [[0.0f32; TILE]; TILE];
                for kk in 0..k {
                    let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
                    let bv = &bd[kk * n + j..kk * n + j + TILE];
                    for (accr, &ar) in acc.iter_mut().zip(av.iter()) {
                        for (accv, &bc) in accr.iter_mut().zip(bv.iter()) {
                            *accv += ar * bc;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    chunk[(i + r) * n + j..(i + r) * n + j + TILE].copy_from_slice(accr);
                }
            } else {
                for r in 0..ih {
                    let a_row = &ad[(r0 + i + r) * k..(r0 + i + r + 1) * k];
                    for c in 0..jw {
                        let mut acc = 0.0f32;
                        for (kk, &av) in a_row.iter().enumerate() {
                            acc += av * bd[kk * n + j + c];
                        }
                        chunk[(i + r) * n + j + c] = acc;
                    }
                }
            }
            j += jw;
        }
        i += ih;
    }
}

/// Matrix multiply: `a [m, k] × b [k, n] → [m, n]`.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = scratch::take_zeroed(m * n);
    let (ad, bd) = (a.data(), b.data());
    run_row_blocks(&mut out, n, m, 2 * m * k * n, &|_, r0, chunk| {
        matmul_chunk(ad, bd, chunk, r0, k, n);
    });
    Tensor::from_vec(out, &[m, n])
}

/// NT chunk kernel: dispatches to the AVX2 panel-packed micro-kernel
/// when enabled, else the scalar 4×4 tiles. Bit-identical either way.
fn matmul_nt_chunk(ad: &[f32], bd: &[f32], chunk: &mut [f32], r0: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd::simd_enabled() {
        // Safety: simd_enabled() is true only when AVX2 was detected.
        unsafe { simd::avx2::matmul_nt_chunk(ad, bd, chunk, r0, k, n) };
        return;
    }
    matmul_nt_chunk_scalar(ad, bd, chunk, r0, k, n);
}

/// Dot-product kernel for `out[r0..][..] = a[r0..] × bᵀ` where
/// `a` is `[m, k]` and `b` is `[n, k]`, both row-major.
fn matmul_nt_chunk_scalar(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    r0: usize,
    k: usize,
    n: usize,
) {
    let rows = chunk.len() / n;
    let mut i = 0;
    while i < rows {
        let ih = (rows - i).min(TILE);
        let a_base = (r0 + i) * k;
        let mut j = 0;
        while j < n {
            let jw = (n - j).min(TILE);
            if ih == TILE && jw == TILE {
                let a0 = &ad[a_base..a_base + k];
                let a1 = &ad[a_base + k..a_base + 2 * k];
                let a2 = &ad[a_base + 2 * k..a_base + 3 * k];
                let a3 = &ad[a_base + 3 * k..a_base + 4 * k];
                let b0 = &bd[j * k..(j + 1) * k];
                let b1 = &bd[(j + 1) * k..(j + 2) * k];
                let b2 = &bd[(j + 2) * k..(j + 3) * k];
                let b3 = &bd[(j + 3) * k..(j + 4) * k];
                let mut acc = [[0.0f32; TILE]; TILE];
                for kk in 0..k {
                    let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
                    let bv = [b0[kk], b1[kk], b2[kk], b3[kk]];
                    for (accr, &ar) in acc.iter_mut().zip(av.iter()) {
                        for (accv, &bc) in accr.iter_mut().zip(bv.iter()) {
                            *accv += ar * bc;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    chunk[(i + r) * n + j..(i + r) * n + j + TILE].copy_from_slice(accr);
                }
            } else {
                for r in 0..ih {
                    let a_row = &ad[(r0 + i + r) * k..(r0 + i + r + 1) * k];
                    for c in 0..jw {
                        let b_row = &bd[(j + c) * k..(j + c + 1) * k];
                        let mut acc = 0.0f32;
                        for (av, bv) in a_row.iter().zip(b_row.iter()) {
                            acc += av * bv;
                        }
                        chunk[(i + r) * n + j + c] = acc;
                    }
                }
            }
            j += jw;
        }
        i += ih;
    }
}

/// Matrix multiply with the right-hand side transposed:
/// `a [m, k] × bᵀ where b is [n, k] → [m, n]`.
///
/// Avoids materializing the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_nt lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_nt rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");
    let mut out = scratch::take_zeroed(m * n);
    let (ad, bd) = (a.data(), b.data());
    run_row_blocks(&mut out, n, m, 2 * m * k * n, &|_, r0, chunk| {
        matmul_nt_chunk(ad, bd, chunk, r0, k, n);
    });
    Tensor::from_vec(out, &[m, n])
}

/// TN chunk kernel: dispatches to the AVX2 rank-1-update micro-kernel
/// when enabled, else the scalar loop. Bit-identical either way.
fn matmul_tn_chunk(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    r0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd::simd_enabled() {
        // Safety: simd_enabled() is true only when AVX2 was detected.
        unsafe { simd::avx2::matmul_tn_chunk(ad, bd, chunk, r0, k, m, n) };
        return;
    }
    matmul_tn_chunk_scalar(ad, bd, chunk, r0, k, m, n);
}

/// Column-strided kernel for `out[r0..][..] = aᵀ[r0..] × b` where
/// `a` is `[k, m]` and `b` is `[k, n]`, both row-major.
fn matmul_tn_chunk_scalar(
    ad: &[f32],
    bd: &[f32],
    chunk: &mut [f32],
    r0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    // k-outer rank-1 updates: a and b are walked row-by-row (their
    // contiguous axis), the small output block stays cache-resident, and
    // each output cell still accumulates its k terms in ascending order
    // with a single accumulator — bit-identical to a per-element walk.
    // This matters because the conv backward pass calls this with a tall
    // reduction axis (k = B·OH·OW) and a tiny output (out_c × patch).
    let rows = chunk.len() / n;
    chunk.fill(0.0);
    for kk in 0..k {
        let av = &ad[kk * m + r0..kk * m + r0 + rows];
        let bv = &bd[kk * n..kk * n + n];
        for (row, &ar) in chunk.chunks_exact_mut(n).zip(av.iter()) {
            for (o, &bc) in row.iter_mut().zip(bv.iter()) {
                *o += ar * bc;
            }
        }
    }
}

/// Matrix multiply with the left-hand side transposed:
/// `aᵀ where a is [k, m] × b [k, n] → [m, n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_tn lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_tn rhs must be 2-D");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");
    let mut out = scratch::take_zeroed(m * n);
    let (ad, bd) = (a.data(), b.data());
    run_row_blocks(&mut out, n, m, 2 * m * k * n, &|_, r0, chunk| {
        matmul_tn_chunk(ad, bd, chunk, r0, k, m, n);
    });
    Tensor::from_vec(out, &[m, n])
}

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height for this geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_h(&self) -> usize {
        let padded = self.in_h + 2 * self.pad;
        assert!(padded >= self.kernel, "kernel larger than padded input height");
        (padded - self.kernel) / self.stride + 1
    }

    /// Output width for this geometry.
    pub fn out_w(&self) -> usize {
        let padded = self.in_w + 2 * self.pad;
        assert!(padded >= self.kernel, "kernel larger than padded input width");
        (padded - self.kernel) / self.stride + 1
    }
}

/// Fills one block of patch rows (`[r0, r0 + chunk_rows)` in the
/// `[B * out_h * out_w, patch]` column matrix). Writes every element,
/// including padding zeros, so the destination needs no pre-clearing.
fn im2col_rows(data: &[f32], g: &ConvGeom, r0: usize, chunk: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let patch = g.in_c * g.kernel * g.kernel;
    let img_stride = g.in_c * g.in_h * g.in_w;
    let chan_stride = g.in_h * g.in_w;
    for (local, dst) in chunk.chunks_exact_mut(patch).enumerate() {
        let row = r0 + local;
        let bi = row / (oh * ow);
        let rem = row % (oh * ow);
        let (oy, ox) = (rem / ow, rem % ow);
        let img = &data[bi * img_stride..(bi + 1) * img_stride];
        let mut di = 0usize;
        for c in 0..g.in_c {
            let chan = &img[c * chan_stride..(c + 1) * chan_stride];
            for ky in 0..g.kernel {
                let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                if iy < 0 || iy >= g.in_h as isize {
                    dst[di..di + g.kernel].fill(0.0);
                    di += g.kernel;
                    continue;
                }
                // In-bounds kx range: 0 <= x0 + kx < in_w. Zero-fill the
                // out-of-bounds edges, memcpy the contiguous middle —
                // this is the vectorized form of a per-element bounds
                // check and writes identical values.
                let row_base = iy as usize * g.in_w;
                let x0 = (ox * g.stride) as isize - g.pad as isize;
                let kx_lo = (-x0).clamp(0, g.kernel as isize) as usize;
                let kx_hi =
                    (g.in_w as isize - x0).clamp(kx_lo as isize, g.kernel as isize) as usize;
                dst[di..di + kx_lo].fill(0.0);
                if kx_hi > kx_lo {
                    let src = row_base + (x0 + kx_lo as isize) as usize;
                    dst[di + kx_lo..di + kx_hi].copy_from_slice(&chan[src..src + (kx_hi - kx_lo)]);
                }
                dst[di + kx_hi..di + g.kernel].fill(0.0);
                di += g.kernel;
            }
        }
    }
}

/// [`im2col`] into a caller-owned buffer, resized to fit. This is the
/// allocation-free path `Conv2d` uses to reuse its column scratch
/// between forward passes.
pub fn im2col_into(input: &Tensor, g: &ConvGeom, out: &mut Vec<f32>) {
    assert_eq!(input.ndim(), 4, "im2col expects [B, C, H, W]");
    let b = input.shape()[0];
    assert_eq!(input.shape()[1], g.in_c, "channel mismatch");
    assert_eq!(input.shape()[2], g.in_h, "height mismatch");
    assert_eq!(input.shape()[3], g.in_w, "width mismatch");
    let (oh, ow) = (g.out_h(), g.out_w());
    let patch = g.in_c * g.kernel * g.kernel;
    let rows = b * oh * ow;
    out.resize(rows * patch, 0.0);
    let data = input.data();
    run_row_blocks(out, patch, rows, rows * patch, &|_, r0, chunk| {
        im2col_rows(data, g, r0, chunk);
    });
}

/// Unfolds an image batch `[B, C, H, W]` into a column matrix
/// `[B * out_h * out_w, C * k * k]` so convolution becomes a matmul.
pub fn im2col(input: &Tensor, g: &ConvGeom) -> Tensor {
    let b = input.shape()[0];
    let patch = g.in_c * g.kernel * g.kernel;
    let rows = b * g.out_h() * g.out_w();
    let mut out = scratch::take_raw(rows * patch);
    im2col_into(input, g, &mut out);
    Tensor::from_vec(out, &[rows, patch])
}

/// Folds a column-matrix gradient back into an image gradient — the adjoint
/// of [`im2col`]. Overlapping patches accumulate.
///
/// Parallelized over batch images: each image's overlapping-patch
/// accumulation is done by exactly one block, in patch-row order, so the
/// result is independent of the thread count.
pub fn col2im(cols: &Tensor, g: &ConvGeom, batch: usize) -> Tensor {
    let (oh, ow) = (g.out_h(), g.out_w());
    let patch = g.in_c * g.kernel * g.kernel;
    assert_eq!(cols.shape(), &[batch * oh * ow, patch], "col2im shape mismatch");
    let img_stride = g.in_c * g.in_h * g.in_w;
    let mut out = scratch::take_raw(batch * img_stride);
    out.resize(batch * img_stride, 0.0);
    let data = cols.data();
    let chan_stride = g.in_h * g.in_w;
    run_row_blocks(&mut out, img_stride, batch, cols.numel(), &|_, b0, chunk| {
        for (local, img) in chunk.chunks_exact_mut(img_stride).enumerate() {
            img.fill(0.0);
            let bi = b0 + local;
            let mut row = bi * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let src = &data[row * patch..(row + 1) * patch];
                    let mut si = 0usize;
                    for c in 0..g.in_c {
                        for ky in 0..g.kernel {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            if iy < 0 || iy >= g.in_h as isize {
                                si += g.kernel;
                                continue;
                            }
                            let row_base = c * chan_stride + iy as usize * g.in_w;
                            for kx in 0..g.kernel {
                                let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                if ix >= 0 && ix < g.in_w as isize {
                                    img[row_base + ix as usize] += src[si];
                                }
                                si += 1;
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    });
    Tensor::from_vec(out, &[batch, g.in_c, g.in_h, g.in_w])
}

/// Numerically stable softmax over the last axis of a 2-D tensor.
///
/// Fused per row: one max scan, then a single pass that exponentiates
/// into the output row while accumulating the normalizer, then an
/// in-place scale. Rows are independent, so the op parallelizes over
/// row blocks without affecting the result.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "softmax_rows expects a 2-D tensor");
    let (r, c) = (x.shape()[0], x.shape()[1]);
    let mut out = scratch::take_zeroed(r * c);
    let data = x.data();
    run_row_blocks(&mut out, c, r, r * c * 8, &|_, r0, chunk| {
        for (local, dst) in chunk.chunks_exact_mut(c).enumerate() {
            let row = &data[(r0 + local) * c..(r0 + local + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (o, &v) in dst.iter_mut().zip(row.iter()) {
                let e = (v - m).exp();
                *o = e;
                sum += e;
            }
            for o in dst.iter_mut() {
                *o /= sum;
            }
        }
    });
    Tensor::from_vec(out, &[r, c])
}

/// Stable elementwise sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(matmul(&a, &eye).data(), a.data());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[4, 3]);
        let expect = matmul(&a, &b.transpose());
        let got = matmul_nt(&a, &b);
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]);
        let expect = matmul(&a.transpose(), &b);
        let got = matmul_tn(&a, &b);
        assert_eq!(got.shape(), expect.shape());
        for (x, y) in got.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_edge_tiles_match_reference() {
        // 7x5x6 exercises both the full 4x4 tile path and all edge paths.
        let (m, k, n) = (7, 5, 6);
        let a = Tensor::from_vec((0..m * k).map(|x| (x as f32).sin()).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|x| (x as f32).cos()).collect(), &[k, n]);
        let got = matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(&[i, kk]) * b.get(&[kk, j]);
                }
                assert!((got.get(&[i, j]) - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn conv_geom_output_sizes() {
        let g = ConvGeom { in_c: 3, in_h: 8, in_w: 8, kernel: 3, stride: 2, pad: 1 };
        assert_eq!(g.out_h(), 4);
        assert_eq!(g.out_w(), 4);
        let g2 = ConvGeom { in_c: 1, in_h: 5, in_w: 5, kernel: 3, stride: 1, pad: 0 };
        assert_eq!(g2.out_h(), 3);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is just a reshape.
        let g = ConvGeom { in_c: 2, in_h: 2, in_w: 2, kernel: 1, stride: 1, pad: 0 };
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[4, 2]);
        // Row r = spatial position, columns = channels.
        assert_eq!(cols.get(&[0, 0]), 0.0);
        assert_eq!(cols.get(&[0, 1]), 4.0);
        assert_eq!(cols.get(&[3, 0]), 3.0);
        assert_eq!(cols.get(&[3, 1]), 7.0);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let g = ConvGeom { in_c: 1, in_h: 2, in_w: 2, kernel: 3, stride: 1, pad: 1 };
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[4, 9]);
        // Top-left output position: its 3x3 patch has 4 real pixels, 5 padded.
        let first: f32 = cols.row(0).sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn im2col_into_overwrites_dirty_buffer() {
        let g = ConvGeom { in_c: 1, in_h: 3, in_w: 3, kernel: 3, stride: 1, pad: 1 };
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let fresh = im2col(&x, &g);
        let mut dirty = vec![9.9f32; fresh.numel()];
        im2col_into(&x, &g, &mut dirty);
        assert_eq!(&dirty[..], fresh.data());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let g = ConvGeom { in_c: 2, in_h: 5, in_w: 4, kernel: 3, stride: 2, pad: 1 };
        let n_in = 2 * 5 * 4;
        let x = Tensor::from_vec(
            (0..n_in).map(|i| ((i * 37 % 11) as f32 - 5.0) * 0.3).collect(),
            &[1, 2, 5, 4],
        );
        let cols = im2col(&x, &g);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| ((i * 17 % 7) as f32 - 3.0) * 0.2).collect(),
            cols.shape(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, &g, 1);
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(!s.has_non_finite());
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(-1e30).is_finite());
    }
}

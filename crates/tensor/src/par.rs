//! Deterministic data-parallel execution for tensor kernels.
//!
//! A single persistent worker pool serves the whole process. Kernels
//! hand it a job described as `blocks` disjoint pieces of work plus a
//! closure `body(block_index)`; workers (and the submitting thread, which
//! participates instead of idling) race on an atomic counter to claim
//! block indices until the job is drained.
//!
//! # Determinism contract
//!
//! The partition into blocks is always a pure function of the problem
//! size — never of the thread count — and every output element is owned
//! by exactly one block and computed by a single accumulator walking the
//! reduction axis in ascending order. Which *thread* computes a block
//! affects nothing about the arithmetic, so results are bit-identical
//! for any `ODIN_THREADS` setting, including 1, and identical to the
//! serial fallback. `tests/par_determinism.rs` pins this.
//!
//! # Sizing
//!
//! The pool is sized by the first of: [`set_num_threads`], the
//! `ODIN_THREADS` environment variable, or `available_parallelism()`.
//! Worker threads are spawned lazily on the first parallel job and kept
//! for the life of the process; jobs smaller than the parallel threshold
//! never touch the pool at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Configured thread count; 0 means "not yet resolved".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum number of scalar multiply-adds (or comparable flop count)
/// before a kernel considers going parallel. Below this, fork/join
/// latency dominates. Tests override it via [`set_parallel_threshold`].
static PARALLEL_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PARALLEL_THRESHOLD);

const DEFAULT_PARALLEL_THRESHOLD: usize = 1 << 18;

/// Returns the configured worker count (including the submitting
/// thread). Resolution order: [`set_num_threads`] → `ODIN_THREADS` →
/// `std::thread::available_parallelism()`.
pub fn num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = std::env::var("ODIN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    // First caller wins; a racing set_num_threads overrides regardless.
    let _ = NUM_THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    NUM_THREADS.load(Ordering::Relaxed)
}

/// Overrides the worker count for subsequent parallel jobs.
///
/// Already-spawned workers are retained (and re-used) when the count
/// shrinks or grows; only up to `n - 1` of them receive work for a job
/// submitted while the count is `n`. Setting `1` forces every kernel
/// down the serial path.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_num_threads(n: usize) {
    assert!(n > 0, "thread count must be at least 1");
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Overrides the flop threshold above which kernels go parallel.
/// Primarily a test hook: `0` forces even tiny shapes through the pool,
/// `usize::MAX` forces the serial fallback everywhere.
pub fn set_parallel_threshold(flops: usize) {
    PARALLEL_THRESHOLD.store(flops, Ordering::Relaxed);
}

/// Restores the default parallel threshold.
pub fn reset_parallel_threshold() {
    PARALLEL_THRESHOLD.store(DEFAULT_PARALLEL_THRESHOLD, Ordering::Relaxed);
}

/// True if a kernel performing `flops` scalar operations over `blocks`
/// partitionable blocks should use the pool.
pub(crate) fn should_parallelize(flops: usize, blocks: usize) -> bool {
    blocks >= 2 && num_threads() >= 2 && flops >= PARALLEL_THRESHOLD.load(Ordering::Relaxed)
}

/// A fan-out job: workers claim block indices from `next` until
/// exhausted; the last block to finish signals `done`.
struct Task {
    /// Type-erased `&dyn Fn(usize) + Sync` borrowed from the submitting
    /// stack frame. Valid until `done` fires (the submitter blocks on
    /// the `done` channel before its frame unwinds).
    body: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    blocks: usize,
    remaining: AtomicUsize,
    done: Sender<()>,
}

// SAFETY: `body` points at a `Sync` closure that the submitting thread
// keeps alive (it blocks on `done`) for the task's whole lifetime, and
// all other fields are atomics/channels.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Claims and runs blocks until none remain. Returns after the whole
    /// task is drained (possibly by other threads).
    fn run(&self) {
        // SAFETY: see the field invariant — the pointee outlives the task.
        let body = unsafe { &*self.body };
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.blocks {
                return;
            }
            body(i);
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _ = self.done.send(());
            }
        }
    }
}

struct Pool {
    inject: Sender<Arc<Task>>,
    queue: Receiver<Arc<Task>>,
    spawned: usize,
}

fn pool() -> &'static Mutex<Pool> {
    static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded();
        Mutex::new(Pool { inject: tx, queue: rx, spawned: 0 })
    })
}

/// Runs `body(0..blocks)` across the pool, blocking until every block
/// has completed. Falls back to a plain serial loop when the pool would
/// not help.
pub(crate) fn parallel_blocks(blocks: usize, body: &(dyn Fn(usize) + Sync)) {
    let threads = num_threads().min(blocks);
    if threads < 2 {
        for i in 0..blocks {
            body(i);
        }
        return;
    }
    let (done_tx, done_rx) = unbounded();
    // SAFETY: we erase `body`'s lifetime to store it in the task; the
    // task cannot outlive this frame because we block on `done_rx` (which
    // fires only after the final block completes) before returning.
    let body_static: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body)
    };
    let task = Arc::new(Task {
        body: body_static,
        next: AtomicUsize::new(0),
        blocks,
        remaining: AtomicUsize::new(blocks),
        done: done_tx,
    });
    {
        let mut p = pool().lock();
        while p.spawned < threads - 1 {
            let rx = p.queue.clone();
            std::thread::Builder::new()
                .name(format!("odin-tensor-{}", p.spawned))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        task.run();
                    }
                })
                .expect("failed to spawn tensor worker");
            p.spawned += 1;
        }
        // One queue entry per helper; workers that lose the race to an
        // already-drained task just go back to waiting on the queue.
        for _ in 0..threads - 1 {
            let _ = p.inject.send(Arc::clone(&task));
        }
    }
    // The submitting thread works too, then waits for stragglers.
    task.run();
    done_rx.recv().expect("tensor worker pool disconnected");
}

/// Splits `out` (a buffer of `rows * width` elements) into disjoint
/// row-block chunks of `grain` rows and runs
/// `body(block_index, first_row, &mut chunk)` for each, in parallel.
///
/// `grain` must be a pure function of the problem size so the partition
/// (and therefore the arithmetic) is identical for every thread count.
pub(crate) fn parallel_row_blocks(
    out: &mut [f32],
    width: usize,
    rows: usize,
    grain: usize,
    body: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    assert_eq!(out.len(), rows * width, "row-block buffer size mismatch");
    let grain = grain.max(1);
    let blocks = rows.div_ceil(grain);
    let base = out.as_mut_ptr() as usize;
    parallel_blocks(blocks, &move |bi| {
        let r0 = bi * grain;
        let r1 = (r0 + grain).min(rows);
        // SAFETY: blocks own disjoint row ranges of `out`, which outlives
        // the parallel_blocks call; turning the base address back into a
        // slice per block never aliases another block's range.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut((base + r0 * width * 4) as *mut f32, (r1 - r0) * width)
        };
        body(bi, r0, chunk);
    });
}

/// Number of row blocks a `rows`-row output is split into, as a pure
/// function of `rows` (multiples of 4 keep 4×4 micro-tiles from
/// straddling block boundaries).
pub(crate) fn row_grain(rows: usize) -> usize {
    if rows >= 512 {
        64
    } else if rows >= 64 {
        16
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parallel_blocks_visits_every_block_once() {
        set_num_threads(4);
        let hits: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
        parallel_blocks(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn row_blocks_cover_disjointly() {
        set_num_threads(4);
        let rows = 37;
        let width = 5;
        let mut out = vec![0.0f32; rows * width];
        parallel_row_blocks(&mut out, width, rows, 4, &|_bi, r0, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (r0 * width + i) as f32;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f32, "element {i} written wrongly or twice");
        }
    }

    #[test]
    fn serial_fallback_used_for_single_thread() {
        set_num_threads(1);
        let hits = AtomicU32::new(0);
        parallel_blocks(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        set_num_threads(4);
    }

    #[test]
    fn grain_is_pure_in_rows() {
        assert_eq!(row_grain(1024), row_grain(1024));
        assert!(row_grain(4) >= 1);
        assert_eq!(row_grain(100) % 4, 0);
    }
}

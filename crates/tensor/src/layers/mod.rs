//! Concrete network layers.

mod act;
mod conv;
mod dense;
mod norm;
mod pool;
mod shape;

pub use act::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use norm::BatchNorm2d;
pub use pool::{GlobalAvgPool, GlobalMaxPool, MaxPool2};
pub use shape::{Flatten, Reshape, Upsample2};

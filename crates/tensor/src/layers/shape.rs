//! Shape-manipulating layers: flatten, reshape, and nearest upsampling.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Flattens `[B, ...] → [B, prod(...)]`.
#[derive(Default)]
pub struct Flatten {
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.in_shape = Some(input.shape().to_vec());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert!(input.ndim() >= 2, "Flatten expects at least [B, ...]");
        let b = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[b, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.in_shape.as_ref().expect("Flatten::backward without forward");
        grad_out.reshape(shape)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// Reshapes `[B, in] → [B, c, h, w]` (the dense-to-spatial step of a decoder).
pub struct Reshape {
    c: usize,
    h: usize,
    w: usize,
    in_dim: usize,
}

impl Reshape {
    /// Creates a reshape layer. `c * h * w` must equal the input feature
    /// count.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Reshape { c, h, w, in_dim: c * h * w }
    }
}

impl Layer for Reshape {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "Reshape expects [B, features]");
        assert_eq!(
            input.shape()[1],
            self.in_dim,
            "Reshape feature count {} != {}",
            input.shape()[1],
            self.in_dim
        );
        let b = input.shape()[0];
        input.reshape(&[b, self.c, self.h, self.w])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let b = grad_out.shape()[0];
        grad_out.reshape(&[b, self.in_dim])
    }

    fn name(&self) -> &'static str {
        "Reshape"
    }
}

/// Nearest-neighbour 2× spatial upsampling.
///
/// Together with a stride-1 convolution this plays the role of a
/// transposed convolution in the DA-GAN decoder ("deconvolutional Resnet
/// blocks" in the paper) while keeping the backward pass trivial.
#[derive(Default)]
pub struct Upsample2;

impl Upsample2 {
    /// Creates a 2× nearest-neighbour upsampler.
    pub fn new() -> Self {
        Self
    }
}

impl Layer for Upsample2 {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "Upsample2 expects [B, C, H, W]");
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (oh, ow) = (h * 2, w * 2);
        let mut out = vec![0.0f32; b * c * oh * ow];
        let data = input.data();
        for plane in 0..b * c {
            let src = &data[plane * h * w..(plane + 1) * h * w];
            let dst = &mut out[plane * oh * ow..(plane + 1) * oh * ow];
            for y in 0..oh {
                for x in 0..ow {
                    dst[y * ow + x] = src[(y / 2) * w + x / 2];
                }
            }
        }
        Tensor::from_vec(out, &[b, c, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.ndim(), 4, "Upsample2 grad expects [B, C, H, W]");
        let (b, c, oh, ow) =
            (grad_out.shape()[0], grad_out.shape()[1], grad_out.shape()[2], grad_out.shape()[3]);
        assert!(oh % 2 == 0 && ow % 2 == 0, "Upsample2 grad dims must be even");
        let (h, w) = (oh / 2, ow / 2);
        let mut out = vec![0.0f32; b * c * h * w];
        let data = grad_out.data();
        for plane in 0..b * c {
            let src = &data[plane * oh * ow..(plane + 1) * oh * ow];
            let dst = &mut out[plane * h * w..(plane + 1) * h * w];
            for y in 0..oh {
                for x in 0..ow {
                    dst[(y / 2) * w + x / 2] += src[y * ow + x];
                }
            }
        }
        Tensor::from_vec(out, &[b, c, h, w])
    }

    fn name(&self) -> &'static str {
        "Upsample2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2, 1]);
        let mut f = Flatten::new();
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 6]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 2, 1]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn reshape_to_spatial() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 8]);
        let mut r = Reshape::new(2, 2, 2);
        let y = r.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        let g = r.backward(&y);
        assert_eq!(g.shape(), &[1, 8]);
    }

    #[test]
    fn upsample_replicates_pixels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let mut u = Upsample2::new();
        let y = u.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.get(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.get(&[0, 0, 0, 1]), 1.0);
        assert_eq!(y.get(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.get(&[0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn upsample_backward_sums_blocks() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let mut u = Upsample2::new();
        let _ = u.forward(&x, true);
        let g = u.backward(&Tensor::ones(&[1, 1, 4, 4]));
        assert_eq!(g.data(), &[4.0, 4.0, 4.0, 4.0]);
    }
}

//! Fully-connected layer.

use rand::rngs::StdRng;

use crate::init;
use crate::layer::Layer;
use crate::ops::{matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;

/// A fully-connected (affine) layer: `y = x Wᵀ + b`.
///
/// Input `[B, in]`, output `[B, out]`. Weights are stored `[out, in]`.
pub struct Dense {
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        Dense {
            w: init::normal(rng, &[out_dim, in_dim], std),
            b: Tensor::zeros(&[out_dim]),
            dw: Tensor::zeros(&[out_dim, in_dim]),
            db: Tensor::zeros(&[out_dim]),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[1]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[0]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "Dense expects [B, in]");
        assert_eq!(
            input.shape()[1],
            self.in_dim(),
            "Dense input dim {} != expected {}",
            input.shape()[1],
            self.in_dim()
        );
        let mut y = matmul_nt(input, &self.w);
        let out = y.shape()[1];
        let bias = self.b.data();
        for row in y.data_mut().chunks_exact_mut(out) {
            for (v, &bv) in row.iter_mut().zip(bias.iter()) {
                *v += bv;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Dense::backward called without a training forward pass");
        // dW += Gᵀ X ; db += column sums of G ; dX = G W
        let dw = matmul_tn(grad_out, x);
        self.dw.add_scaled(&dw, 1.0);
        let out = grad_out.shape()[1];
        let dbd = self.db.data_mut();
        for row in grad_out.data().chunks_exact(out) {
            for (d, &g) in dbd.iter_mut().zip(row.iter()) {
                *d += g;
            }
        }
        matmul(grad_out, &self.w)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.w, &mut self.dw), (&mut self.b, &mut self.db)]
    }

    fn zero_grad(&mut self) {
        // Direct fills keep the training loop allocation-free (the
        // default goes through the params_grads Vec).
        self.dw.fill_zero();
        self.db.fill_zero();
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_applies_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 3, &mut rng);
        // Zero the weights so output == bias.
        for v in d.params_grads()[0].0.data_mut() {
            *v = 0.0;
        }
        d.params_grads()[1].0.data_mut().copy_from_slice(&[1.0, 2.0, 3.0]);
        let y = d.forward(&Tensor::ones(&[2, 2]), false);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let _ = d.forward(&x, true);
        let g = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let _ = d.backward(&g);
        let _ = d.backward(&g); // accumulate twice
        let (_, dw) = d.params_grads().remove(0);
        // d loss / d w[0][0] = g[0]*x[0] = 1, accumulated twice => 2
        assert_eq!(dw.get(&[0, 0]), 2.0);
        assert_eq!(dw.get(&[0, 1]), 4.0);
        assert_eq!(dw.get(&[1, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "Dense input dim")]
    fn wrong_input_dim_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(4, 2, &mut rng);
        let _ = d.forward(&Tensor::zeros(&[1, 3]), false);
    }
}

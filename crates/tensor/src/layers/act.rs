//! Activation layers.

use crate::layer::Layer;
use crate::ops::sigmoid;
use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)`.
#[derive(Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("Relu::backward without forward");
        assert_eq!(mask.len(), grad_out.numel(), "Relu grad shape mismatch");
        let data = grad_out
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Leaky ReLU: `x` if `x > 0`, otherwise `alpha * x`.
pub struct LeakyRelu {
    alpha: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative slope.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu { alpha, mask: None }
    }
}

impl Default for LeakyRelu {
    /// The GAN-conventional slope of 0.2.
    fn default() -> Self {
        Self::new(0.2)
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let a = self.alpha;
        input.map(|x| if x > 0.0 { x } else { a * x })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("LeakyRelu::backward without forward");
        assert_eq!(mask.len(), grad_out.numel(), "LeakyRelu grad shape mismatch");
        let a = self.alpha;
        let data = grad_out
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { a * g })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn name(&self) -> &'static str {
        "LeakyRelu"
    }
}

/// Logistic sigmoid.
#[derive(Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let y = self.infer(input);
        if train {
            self.output = Some(y.clone());
        }
        y
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(sigmoid)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("Sigmoid::backward without forward");
        grad_out.zip(y, |g, s| g * s * (1.0 - s))
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

/// Hyperbolic tangent.
#[derive(Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let y = self.infer(input);
        if train {
            self.output = Some(y.clone());
        }
        y
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(f32::tanh)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("Tanh::backward without forward");
        grad_out.zip(y, |g, t| g * (1.0 - t * t))
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_slice(&[-1.0, 0.0, 2.0]), true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut r = LeakyRelu::new(0.1);
        let y = r.forward(&Tensor::from_slice(&[-10.0, 10.0]), true);
        assert_eq!(y.data(), &[-1.0, 10.0]);
        let g = r.backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert_eq!(g.data(), &[0.1, 1.0]);
    }

    #[test]
    fn sigmoid_gradient_peaks_at_zero() {
        let mut s = Sigmoid::new();
        let _ = s.forward(&Tensor::from_slice(&[0.0, 10.0]), true);
        let g = s.backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
        assert!(g.data()[1] < 1e-3);
    }

    #[test]
    fn tanh_range_and_gradient() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::from_slice(&[0.0, 100.0, -100.0]), true);
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 1.0).abs() < 1e-5);
        let g = t.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert!((g.data()[0] - 1.0).abs() < 1e-6);
        assert!(g.data()[1].abs() < 1e-5);
    }
}

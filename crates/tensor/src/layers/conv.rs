//! 2-D convolution via im2col.

use rand::rngs::StdRng;

use crate::init;
use crate::layer::Layer;
use crate::ops::{col2im, im2col, im2col_into, matmul, matmul_nt, matmul_tn, ConvGeom};
use crate::scratch;
use crate::tensor::Tensor;

/// A 2-D convolution with square kernels, uniform stride, and zero padding.
///
/// Input `[B, in_c, H, W]`, output `[B, out_c, H', W']`.
/// Weights are stored flattened `[out_c, in_c * k * k]` for the im2col
/// matmul.
///
/// An activation can be fused into the convolution's output pass (see
/// [`Conv2d::fuse_relu`] / [`Conv2d::fuse_leaky_relu`]): bias add,
/// activation, and the positions→NCHW repack then happen in one sweep
/// instead of three, with values bit-identical to running the separate
/// activation layer afterwards.
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    /// Negative-side slope of a fused activation: `Some(0.0)` = ReLU,
    /// `Some(a)` = LeakyReLU with slope `a`, `None` = linear output.
    fused_act: Option<f32>,
    cache: Option<ConvCache>,
}

struct ConvCache {
    cols: Tensor,
    geom: ConvGeom,
    batch: usize,
    /// Sign of the fused activation's output (`out > 0`), recorded
    /// during the training forward pass so backward can apply the
    /// activation gradient before the convolution gradients. For
    /// slope ≥ 0, `out > 0 ⇔ pre-activation > 0`, the same mask the
    /// standalone activation layers compute from their input.
    act_mask: Option<Vec<bool>>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal initialized weights.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_c * kernel * kernel;
        let std = (2.0 / fan_in as f32).sqrt();
        Conv2d {
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            w: init::normal(rng, &[out_c, fan_in], std),
            b: Tensor::zeros(&[out_c]),
            dw: Tensor::zeros(&[out_c, fan_in]),
            db: Tensor::zeros(&[out_c]),
            fused_act: None,
            cache: None,
        }
    }

    /// Convenience constructor: 3×3 kernel, given stride, padding 1.
    pub fn k3(in_c: usize, out_c: usize, stride: usize, rng: &mut StdRng) -> Self {
        Self::new(in_c, out_c, 3, stride, 1, rng)
    }

    /// Fuses a ReLU into the output pass (replaces a following
    /// `Relu` layer; bit-identical values).
    pub fn fuse_relu(mut self) -> Self {
        self.fused_act = Some(0.0);
        self
    }

    /// Fuses a LeakyReLU with negative slope `alpha` into the output
    /// pass (replaces a following `LeakyRelu` layer; bit-identical
    /// values). `alpha` must be non-negative — the backward mask is
    /// recovered from the output sign.
    pub fn fuse_leaky_relu(mut self, alpha: f32) -> Self {
        assert!(alpha >= 0.0, "fused activation slope must be non-negative");
        self.fused_act = Some(alpha);
        self
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    fn geom_for(&self, input: &Tensor) -> ConvGeom {
        assert_eq!(input.ndim(), 4, "Conv2d expects [B, C, H, W]");
        assert_eq!(
            input.shape()[1],
            self.in_c,
            "Conv2d input channels {} != expected {}",
            input.shape()[1],
            self.in_c
        );
        ConvGeom {
            in_c: self.in_c,
            in_h: input.shape()[2],
            in_w: input.shape()[3],
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }
}

/// Converts a `[B*OH*OW, C]` row-per-position matrix into `[B, C, OH, OW]`.
/// The forward path fuses this repack into [`Conv2d::apply`]; kept as the
/// reference implementation for the roundtrip test.
#[cfg(test)]
fn positions_to_nchw(m: &Tensor, batch: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    debug_assert_eq!(m.shape(), &[batch * oh * ow, c]);
    let md = m.data();
    let mut out = scratch::take_zeroed(batch * c * oh * ow);
    let plane = oh * ow;
    for bi in 0..batch {
        for p in 0..plane {
            let src = &md[(bi * plane + p) * c..(bi * plane + p + 1) * c];
            for (ch, &v) in src.iter().enumerate() {
                out[bi * c * plane + ch * plane + p] = v;
            }
        }
    }
    Tensor::from_vec(out, &[batch, c, oh, ow])
}

/// Inverse of [`positions_to_nchw`].
fn nchw_to_positions(t: &Tensor) -> Tensor {
    debug_assert_eq!(t.ndim(), 4);
    let (batch, c, oh, ow) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    let plane = oh * ow;
    let td = t.data();
    let mut out = scratch::take_zeroed(batch * plane * c);
    for bi in 0..batch {
        for ch in 0..c {
            let src = &td[bi * c * plane + ch * plane..bi * c * plane + (ch + 1) * plane];
            for (p, &v) in src.iter().enumerate() {
                out[(bi * plane + p) * c + ch] = v;
            }
        }
    }
    Tensor::from_vec(out, &[batch * plane, c])
}

impl Conv2d {
    /// The im2col matmul shared by the training and inference forward
    /// paths. Bias add, the fused activation (if any), and the
    /// positions→NCHW repack happen in one output sweep.
    fn apply(&self, cols: &Tensor, geom: &ConvGeom, batch: usize) -> Tensor {
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let pos = matmul_nt(cols, &self.w); // [B*OH*OW, out_c]
        let md = pos.data();
        let bias = self.b.data();
        let oc = self.out_c;
        let plane = oh * ow;
        let mut out = scratch::take_raw(batch * oc * plane);
        out.resize(batch * oc * plane, 0.0);
        for bi in 0..batch {
            let img = &mut out[bi * oc * plane..(bi + 1) * oc * plane];
            for p in 0..plane {
                let src = &md[(bi * plane + p) * oc..(bi * plane + p + 1) * oc];
                match self.fused_act {
                    None => {
                        for (ch, &v) in src.iter().enumerate() {
                            img[ch * plane + p] = v + bias[ch];
                        }
                    }
                    // ReLU as max keeps +0.0 for negative inputs, exactly
                    // like the standalone Relu layer (slope * v would
                    // yield -0.0).
                    Some(a) if a > 0.0 => {
                        for (ch, &v) in src.iter().enumerate() {
                            let s = v + bias[ch];
                            img[ch * plane + p] = if s > 0.0 { s } else { a * s };
                        }
                    }
                    Some(_) => {
                        for (ch, &v) in src.iter().enumerate() {
                            img[ch * plane + p] = (v + bias[ch]).max(0.0);
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[batch, oc, oh, ow])
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let geom = self.geom_for(input);
        let batch = input.shape()[0];
        // Reuse the cached column buffer from the previous forward pass;
        // with a stable batch shape this makes forward allocation-free
        // (im2col_into resizes only when the geometry changed).
        let patch = geom.in_c * geom.kernel * geom.kernel;
        let mut cols_buf = match self.cache.take() {
            Some(prev) => prev.cols.into_vec(),
            None => scratch::take_raw(batch * geom.out_h() * geom.out_w() * patch),
        };
        im2col_into(input, &geom, &mut cols_buf);
        let cols = Tensor::from_vec(cols_buf, &[batch * geom.out_h() * geom.out_w(), patch]);
        let out = self.apply(&cols, &geom, batch);
        if train {
            let act_mask = self.fused_act.map(|_| out.data().iter().map(|&v| v > 0.0).collect());
            self.cache = Some(ConvCache { cols, geom, batch, act_mask });
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let geom = self.geom_for(input);
        let batch = input.shape()[0];
        let cols = im2col(input, &geom);
        self.apply(&cols, &geom, batch)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache =
            self.cache.as_ref().expect("Conv2d::backward called without a training forward pass");
        // Apply the fused activation's gradient first — elementwise,
        // exactly what the standalone Relu/LeakyRelu backward computes.
        let masked;
        let grad_out = if let (Some(a), Some(mask)) = (self.fused_act, cache.act_mask.as_ref()) {
            let mut g = scratch::copy_of(grad_out.data());
            for (gv, &m) in g.iter_mut().zip(mask.iter()) {
                if !m {
                    *gv = if a == 0.0 { 0.0 } else { a * *gv };
                }
            }
            masked = Tensor::from_vec(g, grad_out.shape());
            &masked
        } else {
            grad_out
        };
        let g_pos = nchw_to_positions(grad_out); // [B*OH*OW, out_c]
                                                 // dW += Gᵀ · cols
        let dw = matmul_tn(&g_pos, &cache.cols);
        self.dw.add_scaled(&dw, 1.0);
        // db += column sums of G
        {
            let gd = g_pos.data();
            let oc = self.out_c;
            let dbd = self.db.data_mut();
            for (i, &v) in gd.iter().enumerate() {
                dbd[i % oc] += v;
            }
        }
        // dX = col2im(G · W)
        let dcols = matmul(&g_pos, &self.w);
        col2im(&dcols, &cache.geom, cache.batch)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.w, &mut self.dw), (&mut self.b, &mut self.db)]
    }

    fn zero_grad(&mut self) {
        // Direct fills keep the training loop allocation-free (the
        // default goes through the params_grads Vec).
        self.dw.fill_zero();
        self.db.fill_zero();
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_stride1() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let y = c.forward(&Tensor::zeros(&[2, 3, 8, 8]), false);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn forward_shape_stride2_downsamples() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 4, 3, 2, 1, &mut rng);
        let y = c.forward(&Tensor::zeros(&[1, 1, 16, 16]), false);
        assert_eq!(y.shape(), &[1, 4, 8, 8]);
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        c.params_grads()[0].0.data_mut()[0] = 1.0;
        c.params_grads()[1].0.data_mut()[0] = 0.0;
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn bias_broadcasts_per_channel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        for v in c.params_grads()[0].0.data_mut() {
            *v = 0.0;
        }
        c.params_grads()[1].0.data_mut().copy_from_slice(&[5.0, -5.0]);
        let y = c.forward(&Tensor::zeros(&[1, 1, 2, 2]), false);
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert!(y.data()[..4].iter().all(|&v| v == 5.0));
        assert!(y.data()[4..].iter().all(|&v| v == -5.0));
    }

    #[test]
    fn nchw_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let pos = nchw_to_positions(&t);
        let back = positions_to_nchw(&pos, 2, 3, 2, 2);
        assert_eq!(back.data(), t.data());
    }
}

//! Batch normalization.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// 2-D batch normalization: per-channel standardization over the batch
/// and spatial axes, with a learned scale (γ) and shift (β), plus running
/// statistics for inference.
///
/// The paper's heavyweight YOLO backbone uses batch norm; the pruned
/// YoloSpecialized models drop it (§5.2: shallow models don't need it
/// and train more simply without).
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    dgamma: Tensor,
    dbeta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            dgamma: Tensor::zeros(&[channels]),
            dbeta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn channels(&self) -> usize {
        self.gamma.numel()
    }

    /// Normalizes `input` with the given per-channel statistics, applying
    /// γ and β. Returns `(output, x_hat)`; `x_hat` is only needed by the
    /// training path.
    fn normalize(&self, input: &Tensor, means: &[f32], inv_std: &[f32]) -> (Tensor, Vec<f32>) {
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let plane = h * w;
        let data = input.data();
        let mut x_hat = vec![0.0f32; data.len()];
        let mut out = vec![0.0f32; data.len()];
        let g = self.gamma.data();
        let be = self.beta.data();
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * plane;
                for p in 0..plane {
                    let xh = (data[base + p] - means[ci]) * inv_std[ci];
                    x_hat[base + p] = xh;
                    out[base + p] = g[ci] * xh + be[ci];
                }
            }
        }
        (Tensor::from_vec(out, input.shape()), x_hat)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.infer(input);
        }
        assert_eq!(input.ndim(), 4, "BatchNorm2d expects [B, C, H, W]");
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        assert_eq!(c, self.channels(), "BatchNorm2d channel mismatch");
        let plane = h * w;
        let per_channel = (b * plane) as f32;
        let data = input.data();

        let mut means = vec![0.0f32; c];
        let mut vars = vec![0.0f32; c];
        for ci in 0..c {
            let mut sum = 0.0f32;
            for bi in 0..b {
                let base = (bi * c + ci) * plane;
                sum += data[base..base + plane].iter().sum::<f32>();
            }
            means[ci] = sum / per_channel;
            let mut sq = 0.0f32;
            for bi in 0..b {
                let base = (bi * c + ci) * plane;
                for &v in &data[base..base + plane] {
                    let d = v - means[ci];
                    sq += d * d;
                }
            }
            vars[ci] = sq / per_channel;
            self.running_mean[ci] =
                (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * means[ci];
            self.running_var[ci] =
                (1.0 - self.momentum) * self.running_var[ci] + self.momentum * vars[ci];
        }

        let inv_std: Vec<f32> = vars.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let (out, x_hat) = self.normalize(input, &means, &inv_std);
        self.cache = Some(BnCache { x_hat: Tensor::from_vec(x_hat, input.shape()), inv_std });
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "BatchNorm2d expects [B, C, H, W]");
        assert_eq!(input.shape()[1], self.channels(), "BatchNorm2d channel mismatch");
        let inv_std: Vec<f32> =
            self.running_var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        self.normalize(input, &self.running_mean, &inv_std).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("BatchNorm2d::backward without forward");
        let (b, c, h, w) =
            (grad_out.shape()[0], grad_out.shape()[1], grad_out.shape()[2], grad_out.shape()[3]);
        let plane = h * w;
        let n = (b * plane) as f32;
        let gd = grad_out.data();
        let xh = cache.x_hat.data();
        let g = self.gamma.data();

        // Per-channel sums needed by the BN gradient.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * plane;
                for p in 0..plane {
                    sum_dy[ci] += gd[base + p];
                    sum_dy_xhat[ci] += gd[base + p] * xh[base + p];
                }
            }
        }
        {
            let dg = self.dgamma.data_mut();
            let db = self.dbeta.data_mut();
            for ci in 0..c {
                dg[ci] += sum_dy_xhat[ci];
                db[ci] += sum_dy[ci];
            }
        }
        // dx = γ·inv_std/N · (N·dy − Σdy − x̂·Σ(dy·x̂))
        let mut dx = vec![0.0f32; gd.len()];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * plane;
                let k = g[ci] * cache.inv_std[ci] / n;
                for p in 0..plane {
                    dx[base + p] =
                        k * (n * gd[base + p] - sum_dy[ci] - xh[base + p] * sum_dy_xhat[ci]);
                }
            }
        }
        Tensor::from_vec(dx, grad_out.shape())
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.gamma, &mut self.dgamma), (&mut self.beta, &mut self.dbeta)]
    }

    // Running statistics must survive serialization: an imported model
    // with default (0, 1) running stats is useless in eval mode.
    fn extra_state(&self) -> Vec<f32> {
        let mut s = self.running_mean.clone();
        s.extend_from_slice(&self.running_var);
        s
    }

    fn extra_state_len(&self) -> usize {
        2 * self.channels()
    }

    fn load_extra_state(&mut self, state: &[f32]) {
        let c = self.channels();
        assert_eq!(state.len(), 2 * c, "BatchNorm2d state length mismatch");
        self.running_mean.copy_from_slice(&state[..c]);
        self.running_var.copy_from_slice(&state[c..]);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_forward_standardizes_channels() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2]);
        let y = bn.forward(&x, true);
        // Each channel should have mean ~0 and unit variance.
        for ci in 0..2 {
            let slice = &y.data()[ci * 4..(ci + 1) * 4];
            let mean: f32 = slice.iter().sum::<f32>() / 4.0;
            let var: f32 = slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![5.0, 5.0, 5.0, 5.0], &[1, 1, 2, 2]);
        // Repeated training passes move the running mean toward 5.
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // Running mean ≈ 5, running var ≈ 0 → output ≈ 0 everywhere.
        assert!(y.data().iter().all(|v| v.abs() < 0.5), "eval output {:?}", y.data());
    }

    #[test]
    fn gamma_beta_are_learnable() {
        let mut bn = BatchNorm2d::new(1);
        bn.params_grads()[0].0.data_mut()[0] = 2.0;
        bn.params_grads()[1].0.data_mut()[0] = 1.0;
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 1, 1, 2]);
        let y = bn.forward(&x, true);
        // x̂ = [-1, 1] → y = 2·x̂ + 1 = [-1, 3].
        assert!((y.data()[0] + 1.0).abs() < 1e-2);
        assert!((y.data()[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn backward_gradients_sum_to_zero_per_channel() {
        // BN output is mean-free per channel, so dL/dx must be orthogonal
        // to constant shifts: Σ dx over a channel ≈ 0.
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 2.0, -1.0], &[1, 1, 2, 3]);
        let _ = bn.forward(&x, true);
        let g = Tensor::from_vec(vec![1.0, -0.5, 0.2, 0.9, -0.1, 0.4], &[1, 1, 2, 3]);
        let dx = bn.backward(&g);
        let sum: f32 = dx.data().iter().sum();
        assert!(sum.abs() < 1e-4, "dx sum {sum}");
    }
}

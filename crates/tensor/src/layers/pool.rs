//! Pooling layers.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// 2×2 max pooling with stride 2.
///
/// Odd trailing rows/columns are dropped (floor division), matching the
/// common convention.
#[derive(Default)]
pub struct MaxPool2 {
    argmax: Option<Vec<usize>>,
    in_shape: Option<Vec<usize>>,
}

impl MaxPool2 {
    /// Creates a 2×2 max-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

fn maxpool2_compute(input: &Tensor) -> (Tensor, Vec<usize>) {
    assert_eq!(input.ndim(), 4, "MaxPool2 expects [B, C, H, W]");
    let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (oh, ow) = (h / 2, w / 2);
    let mut out = vec![0.0f32; b * c * oh * ow];
    let mut argmax = vec![0usize; b * c * oh * ow];
    let data = input.data();
    for bi in 0..b {
        for ci in 0..c {
            let plane = (bi * c + ci) * h * w;
            let oplane = (bi * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = plane + (oy * 2 + dy) * w + ox * 2 + dx;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[oplane + oy * ow + ox] = best;
                    argmax[oplane + oy * ow + ox] = best_idx;
                }
            }
        }
    }
    (Tensor::from_vec(out, &[b, c, oh, ow]), argmax)
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, argmax) = maxpool2_compute(input);
        if train {
            self.argmax = Some(argmax);
            self.in_shape = Some(input.shape().to_vec());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        maxpool2_compute(input).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("MaxPool2::backward without forward");
        let shape = self.in_shape.as_ref().expect("MaxPool2::backward without forward");
        let mut grad = Tensor::zeros(shape);
        let gd = grad.data_mut();
        for (&idx, &g) in argmax.iter().zip(grad_out.data().iter()) {
            gd[idx] += g;
        }
        grad
    }

    fn name(&self) -> &'static str {
        "MaxPool2"
    }
}

/// Global average pooling: `[B, C, H, W] → [B, C]`.
///
/// This is the "pool the final features by channel" step of the DA-GAN
/// encoder (Figure 7 of the paper).
#[derive(Default)]
pub struct GlobalAvgPool {
    in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.in_shape = Some(input.shape().to_vec());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "GlobalAvgPool expects [B, C, H, W]");
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let plane = h * w;
        let mut out = vec![0.0f32; b * c];
        let data = input.data();
        for i in 0..b * c {
            let s: f32 = data[i * plane..(i + 1) * plane].iter().sum();
            out[i] = s / plane as f32;
        }
        Tensor::from_vec(out, &[b, c])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.in_shape.as_ref().expect("GlobalAvgPool::backward without forward");
        let (h, w) = (shape[2], shape[3]);
        let plane = h * w;
        let scale = 1.0 / plane as f32;
        let mut grad = Tensor::zeros(shape);
        let gd = grad.data_mut();
        for (i, &g) in grad_out.data().iter().enumerate() {
            let v = g * scale;
            for x in &mut gd[i * plane..(i + 1) * plane] {
                *x = v;
            }
        }
        grad
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

/// Global max pooling: `[B, C, H, W] → [B, C]`.
///
/// The right reduction for presence-style predictions (e.g. ODIN's
/// lightweight "does this frame contain a car?" filters), where a strong
/// local activation anywhere should dominate.
#[derive(Default)]
pub struct GlobalMaxPool {
    argmax: Option<Vec<usize>>,
    in_shape: Option<Vec<usize>>,
}

impl GlobalMaxPool {
    /// Creates a global max-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

fn global_maxpool_compute(input: &Tensor) -> (Tensor, Vec<usize>) {
    assert_eq!(input.ndim(), 4, "GlobalMaxPool expects [B, C, H, W]");
    let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let plane = h * w;
    let mut out = vec![0.0f32; b * c];
    let mut argmax = vec![0usize; b * c];
    let data = input.data();
    for i in 0..b * c {
        let slice = &data[i * plane..(i + 1) * plane];
        let (mut bi, mut bv) = (0usize, f32::NEG_INFINITY);
        for (j, &v) in slice.iter().enumerate() {
            if v > bv {
                bv = v;
                bi = j;
            }
        }
        out[i] = bv;
        argmax[i] = i * plane + bi;
    }
    (Tensor::from_vec(out, &[b, c]), argmax)
}

impl Layer for GlobalMaxPool {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, argmax) = global_maxpool_compute(input);
        if train {
            self.argmax = Some(argmax);
            self.in_shape = Some(input.shape().to_vec());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        global_maxpool_compute(input).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("GlobalMaxPool::backward without forward");
        let shape = self.in_shape.as_ref().expect("GlobalMaxPool::backward without forward");
        let mut grad = Tensor::zeros(shape);
        let gd = grad.data_mut();
        for (&idx, &g) in argmax.iter().zip(grad_out.data().iter()) {
            gd[idx] += g;
        }
        grad
    }

    fn name(&self) -> &'static str {
        "GlobalMaxPool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_max_pool_picks_plane_maxima() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0, -1.0, -2.0, -3.0, -0.5], &[1, 2, 2, 2]);
        let mut p = GlobalMaxPool::new();
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[5.0, -0.5]);
        let g = p.backward(&Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn maxpool_picks_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, 7.0,
            ],
            &[1, 1, 4, 4],
        );
        let mut p = MaxPool2::new();
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 9.0, 7.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let mut p = MaxPool2::new();
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn gap_averages_planes() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]);
        let mut p = GlobalAvgPool::new();
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[4.0, 2.0]);
    }

    #[test]
    fn gap_backward_distributes_evenly() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let mut p = GlobalAvgPool::new();
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![8.0], &[1, 1]));
        assert_eq!(g.data(), &[2.0, 2.0, 2.0, 2.0]);
    }
}

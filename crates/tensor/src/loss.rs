//! Loss functions.
//!
//! Every loss returns `(scalar loss, gradient w.r.t. the prediction)`, with
//! the gradient already averaged over all elements so callers can feed it
//! straight into `Layer::backward`.

use crate::ops::sigmoid;
use crate::tensor::Tensor;

/// Binary cross-entropy on logits (numerically stable).
///
/// `loss = mean( max(x, 0) − x·t + ln(1 + e^{−|x|}) )`,
/// `∂loss/∂x = (σ(x) − t) / N`.
///
/// This is the loss used for both DA-GAN discriminators (Equations 3 and 4
/// of the paper) and for the pixel-wise reconstruction loss (Equation 5)
/// when pixel targets lie in `[0, 1]`.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    let n = logits.numel().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(logits.numel());
    for (&x, &t) in logits.data().iter().zip(targets.data().iter()) {
        loss += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        grad.push((sigmoid(x) - t) / n);
    }
    (loss / n, Tensor::from_vec(grad, logits.shape()))
}

/// Mean squared error.
///
/// `loss = mean((p − t)²)`, `∂loss/∂p = 2(p − t)/N`.
pub fn mse(pred: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), targets.shape(), "mse shape mismatch");
    let n = pred.numel().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(pred.numel());
    for (&p, &t) in pred.data().iter().zip(targets.data().iter()) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (loss / n, Tensor::from_vec(grad, pred.shape()))
}

/// Mean squared error with a per-element weight mask.
///
/// Used by the detector head, where box-coordinate errors only matter in
/// cells that contain an object.
pub fn weighted_mse(pred: &Tensor, targets: &Tensor, weights: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), targets.shape(), "weighted_mse shape mismatch");
    assert_eq!(pred.shape(), weights.shape(), "weighted_mse weight shape mismatch");
    let n = pred.numel().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(pred.numel());
    for ((&p, &t), &w) in pred.data().iter().zip(targets.data().iter()).zip(weights.data().iter()) {
        let d = p - t;
        loss += w * d * d;
        grad.push(2.0 * w * d / n);
    }
    (loss / n, Tensor::from_vec(grad, pred.shape()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_perfect_prediction_is_small() {
        let logits = Tensor::from_slice(&[20.0, -20.0]);
        let targets = Tensor::from_slice(&[1.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn bce_wrong_prediction_is_large() {
        let logits = Tensor::from_slice(&[20.0]);
        let targets = Tensor::from_slice(&[0.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss > 10.0);
        assert!(grad.data()[0] > 0.9);
    }

    #[test]
    fn bce_matches_manual_at_zero() {
        // At x=0, t=0.5: loss = ln 2, grad = 0.
        let (loss, grad) =
            bce_with_logits(&Tensor::from_slice(&[0.0]), &Tensor::from_slice(&[0.5]));
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
        assert!(grad.data()[0].abs() < 1e-7);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let (loss, grad) = bce_with_logits(
            &Tensor::from_slice(&[500.0, -500.0]),
            &Tensor::from_slice(&[0.0, 1.0]),
        );
        assert!(loss.is_finite());
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn mse_zero_when_equal() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let (loss, grad) = mse(&p, &p);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_gradient_direction() {
        let p = Tensor::from_slice(&[3.0]);
        let t = Tensor::from_slice(&[1.0]);
        let (loss, grad) = mse(&p, &t);
        assert_eq!(loss, 4.0);
        assert_eq!(grad.data()[0], 4.0); // 2*(3-1)/1
    }

    #[test]
    fn weighted_mse_ignores_zero_weight() {
        let p = Tensor::from_slice(&[5.0, 5.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let w = Tensor::from_slice(&[0.0, 1.0]);
        let (loss, grad) = weighted_mse(&p, &t, &w);
        assert_eq!(loss, 12.5); // 25/2
        assert_eq!(grad.data()[0], 0.0);
        assert_eq!(grad.data()[1], 5.0);
    }
}

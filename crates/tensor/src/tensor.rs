//! Dense, row-major, `f32` tensors.
//!
//! This is the storage type every model in ODIN is built on. It is
//! deliberately simple: a flat `Vec<f32>` plus a shape. All layout is
//! row-major (C order), so a `[B, C, H, W]` image batch stores the last
//! axis contiguously.
//!
//! Two allocation properties matter for the hot path:
//!
//! - The shape is stored inline (up to [`MAX_NDIM`] axes), so building a
//!   tensor never allocates for its shape.
//! - Dropping a tensor returns its flat buffer to the thread-local
//!   [`crate::scratch`] pool, and every constructor draws from that pool
//!   first. Steady-state forward/backward passes over fixed shapes
//!   therefore recycle the same buffers instead of hitting the global
//!   allocator (see `tests/scratch_reuse.rs`).

use std::fmt;

use crate::scratch;

/// Maximum number of axes a tensor can have.
pub const MAX_NDIM: usize = 6;

/// Inline shape storage: a length-tagged fixed array, so tensors carry
/// their shape without a heap allocation.
#[derive(Clone, Copy)]
struct Shape {
    len: u8,
    dims: [usize; MAX_NDIM],
}

impl Shape {
    #[inline]
    fn from_slice(shape: &[usize]) -> Self {
        assert!(shape.len() <= MAX_NDIM, "tensors support at most {MAX_NDIM} axes");
        let mut dims = [0usize; MAX_NDIM];
        dims[..shape.len()].copy_from_slice(shape);
        Shape { len: shape.len() as u8, dims }
    }

    #[inline]
    fn as_slice(&self) -> &[usize] {
        &self.dims[..self.len as usize]
    }
}

/// A dense, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use odin_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// ```
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Drop for Tensor {
    fn drop(&mut self) {
        scratch::recycle(std::mem::take(&mut self.data));
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor { data: scratch::copy_of(&self.data), shape: self.shape }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape() == other.shape() && self.data == other.data
    }
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the product of the shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "buffer length {} does not match shape {:?} (numel {})",
            data.len(),
            shape,
            numel
        );
        Tensor { data, shape: Shape::from_slice(shape) }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Tensor { data: scratch::take_zeroed(numel), shape: Shape::from_slice(shape) }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor { data: scratch::take_filled(numel, value), shape: Shape::from_slice(shape) }
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: scratch::copy_of(data), shape: Shape::from_slice(&[data.len()]) }
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of axes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len as usize
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Flat index of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    #[inline]
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let mut flat = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(self.shape().iter()).enumerate() {
            debug_assert!(ix < dim, "index {ix} out of bounds for axis {i} with size {dim}");
            flat = flat * dim + ix;
        }
        flat
    }

    /// Reads a single element.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Writes a single element.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let flat = self.flat_index(idx);
        self.data[flat] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape(),
            self.data.len(),
            shape,
            numel
        );
        Tensor { data: scratch::copy_of(&self.data), shape: Shape::from_slice(shape) }
    }

    /// In-place reshape (no copy).
    pub fn reshape_in_place(mut self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape element count mismatch");
        self.shape = Shape::from_slice(shape);
        self
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: scratch::collect_exact(self.data.len(), self.data.iter().map(|&x| f(x))),
            shape: self.shape,
        }
    }

    /// Elementwise map in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary op into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in zip");
        Tensor {
            data: scratch::collect_exact(
                self.data.len(),
                self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)),
            ),
            shape: self.shape,
        }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Adds `other * scale` into `self` in place.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_scaled");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Euclidean distance to another tensor of the same shape.
    pub fn dist(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in dist");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Fills the tensor with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Extracts row `i` of a 2-D tensor as a new 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape.dims[1];
        assert!(i < self.shape.dims[0], "row index out of bounds");
        Tensor {
            data: scratch::copy_of(&self.data[i * cols..(i + 1) * cols]),
            shape: Shape::from_slice(&[cols]),
        }
    }

    /// Stacks 1-D tensors of equal length into a 2-D `[n, len]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let len = rows[0].numel();
        let mut data = scratch::take_raw(rows.len() * len);
        for r in rows {
            assert_eq!(r.numel(), len, "row length mismatch in stack_rows");
            data.extend_from_slice(r.data());
        }
        Tensor { data, shape: Shape::from_slice(&[rows.len(), len]) }
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose() requires a 2-D tensor");
        let (r, c) = (self.shape.dims[0], self.shape.dims[1]);
        let mut out = scratch::take_zeroed(r * c);
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { data: out, shape: Shape::from_slice(&[c, r]) }
    }

    /// Clamps all elements into `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape())?;
        if self.numel() <= 16 {
            write!(f, ", data={:?}", self.data)?;
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, ... {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1],
                self.numel()
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[1, 2]), 6.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_and_ones() {
        let z = Tensor::zeros(&[3, 2]);
        assert_eq!(z.sum(), 0.0);
        let o = Tensor::ones(&[3, 2]);
        assert_eq!(o.sum(), 6.0);
    }

    #[test]
    fn set_and_get() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 7.0);
        assert_eq!(t.get(&[1, 0, 1]), 7.0);
        assert_eq!(t.data()[5], 7.0); // row-major: 1*4 + 0*2 + 1
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let r = t.reshape(&[2, 6]);
        assert_eq!(r.shape(), &[2, 6]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_bad_count_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.reshape(&[5]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_scaled_in_place() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[-1.0, 0.0, 3.0, 2.0]);
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -1.0);
    }

    #[test]
    fn norms_and_distance() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        let b = Tensor::from_slice(&[0.0, 0.0]);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.get(&[0, 1]), 4.0);
        assert_eq!(tt.get(&[2, 0]), 3.0);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let rows = vec![Tensor::from_slice(&[1.0, 2.0]), Tensor::from_slice(&[3.0, 4.0])];
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.row(1).data(), &[3.0, 4.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.set(&[1], f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_slice(&[-2.0, 0.5, 9.0]);
        assert_eq!(t.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn into_vec_preserves_contents() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_axes_panics() {
        let _ = Tensor::zeros(&[1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn dropped_buffers_are_recycled() {
        // Force the pool to hand the same allocation back on a
        // same-shape rebuild.
        let t = Tensor::zeros(&[4096 + 13]);
        let ptr = t.data().as_ptr();
        drop(t);
        let t2 = Tensor::zeros(&[4096 + 13]);
        assert_eq!(t2.data().as_ptr(), ptr);
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }
}

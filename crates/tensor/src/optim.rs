//! Optimizers: SGD with momentum, and Adam.
//!
//! Optimizers operate on the `(param, grad)` pairs a network exposes via
//! [`crate::Layer::params_grads`]. State (momentum buffers, Adam moments)
//! is keyed by position, which is stable because layer order is fixed.

use crate::tensor::Tensor;

/// An optimizer that can update a set of parameters given their gradients.
pub trait Optimizer {
    /// Applies one update step to every `(param, grad)` pair, then the
    /// caller is expected to zero the gradients.
    fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|(p, _)| vec![0.0; p.numel()]).collect();
        }
        for (i, (p, g)) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[i];
            assert_eq!(v.len(), p.numel(), "optimizer state shape drift");
            let pd = p.data_mut();
            let gd = g.data();
            for j in 0..pd.len() {
                v[j] = self.momentum * v[j] - self.lr * gd[j];
                pd[j] += v[j];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates an Adam optimizer with explicit betas. GAN training commonly
    /// uses `beta1 = 0.5`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|(p, _)| vec![0.0; p.numel()]).collect();
            self.v = params.iter().map(|(p, _)| vec![0.0; p.numel()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, g)) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            assert_eq!(m.len(), p.numel(), "optimizer state shape drift");
            let pd = p.data_mut();
            let gd = g.data();
            for j in 0..pd.len() {
                let grad = gd[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * grad;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * grad * grad;
                let mhat = m[j] / b1t;
                let vhat = v[j] / b2t;
                pd[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimize f(x) = x^2 starting at x = 5.
        let mut x = Tensor::from_slice(&[5.0]);
        let mut g = Tensor::zeros(&[1]);
        for _ in 0..steps {
            g.data_mut()[0] = 2.0 * x.data()[0];
            opt.step(&mut [(&mut x, &mut g)]);
        }
        x.data()[0]
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = quadratic_step(&mut opt, 50);
        assert!(x.abs() < 1e-3, "sgd did not converge: {x}");
    }

    #[test]
    fn sgd_momentum_still_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let x = quadratic_step(&mut opt, 200);
        assert!(x.abs() < 1e-2, "momentum sgd did not converge: {x}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut opt = Adam::new(0.3);
        let x = quadratic_step(&mut opt, 300);
        assert!(x.abs() < 1e-2, "adam did not converge: {x}");
    }

    #[test]
    fn learning_rate_can_be_decayed() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn adam_handles_multiple_params() {
        let mut opt = Adam::new(0.2);
        let mut a = Tensor::from_slice(&[3.0]);
        let mut b = Tensor::from_slice(&[-4.0, 2.0]);
        let mut ga = Tensor::zeros(&[1]);
        let mut gb = Tensor::zeros(&[2]);
        for _ in 0..200 {
            ga.data_mut()[0] = 2.0 * a.data()[0];
            gb.data_mut()[0] = 2.0 * b.data()[0];
            gb.data_mut()[1] = 2.0 * b.data()[1];
            opt.step(&mut [(&mut a, &mut ga), (&mut b, &mut gb)]);
        }
        assert!(a.data()[0].abs() < 0.05);
        assert!(b.norm() < 0.05);
    }
}

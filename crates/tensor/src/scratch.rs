//! Thread-local scratch-buffer arena.
//!
//! Every [`crate::Tensor`] returns its flat buffer here on drop, and all
//! tensor constructors (and the im2col/matmul hot paths) draw buffers
//! from here first. On a steady-state workload — repeated forward or
//! forward/backward passes over fixed shapes — the pool converges to the
//! working set and the tensor layer stops touching the global allocator
//! entirely (asserted by `tests/scratch_reuse.rs`).
//!
//! The pool is thread-local, so no locking is involved and buffers
//! recycled by SPECIALIZER worker threads stay with those threads. Two
//! caps bound memory: at most [`MAX_POOLED_BUFFERS`] buffers are kept,
//! and any buffer larger than [`MAX_POOLED_FLOATS`] is released to the
//! allocator instead of pooled.

use std::cell::RefCell;

/// Maximum number of free buffers kept per thread.
const MAX_POOLED_BUFFERS: usize = 64;
/// Largest buffer (in `f32` elements) the pool will retain: 16 MiB.
const MAX_POOLED_FLOATS: usize = 1 << 22;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a cleared buffer with capacity ≥ `n` (smallest fit wins, to
/// keep big buffers available for big requests).
pub(crate) fn take_raw(n: usize) -> Vec<f32> {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in pool.iter().enumerate() {
            let c = b.capacity();
            if c >= n && best.is_none_or(|(_, bc)| c < bc) {
                best = Some((i, c));
                if c == n {
                    break;
                }
            }
        }
        match best {
            Some((i, _)) => {
                let mut v = pool.swap_remove(i);
                v.clear();
                v
            }
            None => Vec::with_capacity(n),
        }
    })
}

/// Takes a buffer of exactly `n` zeros.
pub(crate) fn take_zeroed(n: usize) -> Vec<f32> {
    let mut v = take_raw(n);
    v.resize(n, 0.0);
    v
}

/// Takes a buffer of exactly `n` copies of `value`.
pub(crate) fn take_filled(n: usize, value: f32) -> Vec<f32> {
    let mut v = take_raw(n);
    v.resize(n, value);
    v
}

/// Copies a slice into a pooled buffer.
pub(crate) fn copy_of(src: &[f32]) -> Vec<f32> {
    let mut v = take_raw(src.len());
    v.extend_from_slice(src);
    v
}

/// Collects exactly `n` items from an iterator into a pooled buffer.
pub(crate) fn collect_exact(n: usize, iter: impl Iterator<Item = f32>) -> Vec<f32> {
    let mut v = take_raw(n);
    v.extend(iter);
    debug_assert_eq!(v.len(), n, "scratch::collect_exact length mismatch");
    v
}

/// Returns a buffer to the pool (or frees it, if the pool is full or the
/// buffer is empty/oversized).
pub(crate) fn recycle(v: Vec<f32>) {
    let cap = v.capacity();
    if cap == 0 || cap > MAX_POOLED_FLOATS {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED_BUFFERS {
            pool.push(v);
        }
    });
}

/// Number of free buffers currently pooled on this thread (diagnostics).
pub fn pooled_buffers() -> usize {
    POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused() {
        // Use an odd size unlikely to collide with other tests on this
        // thread.
        let mut v = take_raw(12345);
        v.resize(12345, 1.0);
        let ptr = v.as_ptr();
        recycle(v);
        let v2 = take_raw(12345);
        assert_eq!(v2.as_ptr(), ptr, "pool did not hand back the recycled buffer");
        assert!(v2.is_empty(), "recycled buffer must come back cleared");
    }

    #[test]
    fn zeroed_buffers_are_actually_zero() {
        let mut v = take_raw(64);
        v.resize(64, 7.0);
        recycle(v);
        let z = take_zeroed(64);
        assert!(z.iter().all(|&x| x == 0.0));
        assert_eq!(z.len(), 64);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let before = pooled_buffers();
        recycle(Vec::with_capacity(MAX_POOLED_FLOATS + 1));
        assert_eq!(pooled_buffers(), before);
    }
}

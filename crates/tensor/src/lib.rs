//! # odin-tensor
//!
//! A from-scratch CPU tensor and neural-network substrate for the ODIN
//! reproduction. Every model in the paper — the AE/AAE/DA-GAN generative
//! models of the drift DETECTOR and the YOLO-family object detectors of the
//! SPECIALIZER — is built and trained on this crate.
//!
//! Design notes:
//!
//! * **Layer-wise backprop, no autograd.** All of ODIN's networks are
//!   feed-forward stacks (plus adversarial alternation, which is just
//!   several stacks trained in turn). A [`Layer`] trait with explicit
//!   `forward`/`backward` keeps memory behaviour predictable and the
//!   implementation auditable.
//! * **im2col convolutions.** Convolutions are lowered to one big matrix
//!   multiply, the standard CPU strategy.
//! * **Determinism.** All initialization and sampling is seeded
//!   (`StdRng`), so every experiment in the bench harness is reproducible.
//! * **Deterministic parallelism.** Matmul and im2col/col2im kernels run
//!   on a persistent worker pool ([`par`]), partitioned over disjoint
//!   output row blocks whose boundaries depend only on the problem size.
//!   Results are bit-identical for any `ODIN_THREADS` value, including 1.
//! * **Zero-alloc hot path.** Tensors recycle their buffers through a
//!   thread-local scratch pool on drop, so steady-state forward/backward
//!   passes reuse memory instead of allocating.
//!
//! ## Quick example
//!
//! ```
//! use odin_tensor::{layers::{Dense, Relu}, loss, optim::{Adam, Optimizer},
//!                   Layer, Sequential, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new()
//!     .push(Dense::new(2, 16, &mut rng))
//!     .push(Relu::new())
//!     .push(Dense::new(16, 1, &mut rng));
//! let mut opt = Adam::new(0.01);
//!
//! // Learn y = x0 + x1 on a tiny batch.
//! let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[4, 2]);
//! let t = Tensor::from_vec(vec![0.0, 1.0, 1.0, 2.0], &[4, 1]);
//! for _ in 0..300 {
//!     let y = net.forward(&x, true);
//!     let (_, grad) = loss::mse(&y, &t);
//!     net.backward(&grad);
//!     opt.step(&mut net.params_grads());
//!     net.zero_grad();
//! }
//! let y = net.forward(&x, false);
//! assert!((y.get(&[3, 0]) - 2.0).abs() < 0.2);
//! ```

#![warn(missing_docs)]

pub mod init;
mod layer;
pub mod layers;
pub mod loss;
pub mod ops;
pub mod optim;
pub mod par;
pub mod qtensor;
pub mod scratch;
pub mod simd;
mod tensor;

pub use layer::{Layer, Sequential};
pub use tensor::{Tensor, MAX_NDIM};

//! Property tests for the [`Layer::extra_state`] / `load_extra_state`
//! contract across every layer type: the reported length always matches
//! the buffer, a save→load roundtrip is the identity, and loaded state
//! fully determines eval-mode behaviour (the invariants the odin-store
//! checkpoint format relies on to rebuild bit-identical networks).

use odin_tensor::layers::{
    BatchNorm2d, Conv2d, Dense, Flatten, GlobalAvgPool, GlobalMaxPool, LeakyRelu, MaxPool2, Relu,
    Reshape, Sigmoid, Tanh, Upsample2,
};
use odin_tensor::{Layer, Sequential, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every layer type the crate exports, boxed for uniform checking.
fn all_layers(channels: usize, seed: u64) -> Vec<Box<dyn Layer>> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        Box::new(Relu::new()),
        Box::new(LeakyRelu::new(0.1)),
        Box::new(Sigmoid::new()),
        Box::new(Tanh::new()),
        Box::new(Conv2d::new(channels, channels, 3, 1, 1, &mut rng)),
        Box::new(Dense::new(8, 4, &mut rng)),
        Box::new(BatchNorm2d::new(channels)),
        Box::new(GlobalAvgPool::new()),
        Box::new(GlobalMaxPool::new()),
        Box::new(MaxPool2::new()),
        Box::new(Flatten::new()),
        Box::new(Reshape::new(channels, 2, 2)),
        Box::new(Upsample2::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `extra_state()` and `extra_state_len()` agree for every layer,
    /// and reloading a layer's own state is the identity.
    #[test]
    fn reported_length_matches_and_self_roundtrip_holds(
        channels in 1usize..5,
        seed in 0u64..1000,
    ) {
        for mut layer in all_layers(channels, seed) {
            let state = layer.extra_state();
            prop_assert_eq!(
                state.len(),
                layer.extra_state_len(),
                "{} misreports its extra-state length",
                layer.name()
            );
            layer.load_extra_state(&state);
            let reread: Vec<u32> = layer.extra_state().iter().map(|v| v.to_bits()).collect();
            let orig: Vec<u32> = state.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(reread, orig, "{} self-roundtrip drifted", layer.name());
        }
    }

    /// Only BatchNorm2d carries extra state; every stateless layer must
    /// report zero so container formats can skip it.
    #[test]
    fn stateless_layers_report_empty(channels in 1usize..5, seed in 0u64..1000) {
        for layer in all_layers(channels, seed) {
            if layer.name() == "BatchNorm2d" {
                prop_assert_eq!(layer.extra_state_len(), 2 * channels);
            } else {
                prop_assert_eq!(
                    layer.extra_state_len(),
                    0,
                    "{} unexpectedly claims extra state",
                    layer.name()
                );
                prop_assert!(layer.extra_state().is_empty());
            }
        }
    }

    /// Arbitrary (valid) running statistics roundtrip bit-exactly
    /// through load→save, and two twins loaded with the same state are
    /// bit-identical in eval mode.
    #[test]
    fn batchnorm_state_roundtrips_and_determines_inference(
        channels in 1usize..5,
        state_seed in 0u64..u64::MAX,
    ) {
        let state = {
            let mut s = state_seed;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) * 5.0 + 0.01
            };
            (0..2 * channels).map(|_| next()).collect::<Vec<f32>>()
        };
        let mut a = BatchNorm2d::new(channels);
        let mut b = BatchNorm2d::new(channels);
        a.load_extra_state(&state);
        b.load_extra_state(&state);
        let reread: Vec<u32> = a.extra_state().iter().map(|v| v.to_bits()).collect();
        let orig: Vec<u32> = state.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(reread, orig, "loaded state must read back bit-exactly");

        let input = Tensor::from_vec(
            (0..2 * channels * 9).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[2, channels, 3, 3],
        );
        let ya = a.infer(&input);
        let yb = b.infer(&input);
        let bits_a: Vec<u32> = ya.data().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = yb.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits_a, bits_b, "same state must mean same eval output");
    }

    /// A Sequential export→import roundtrip (parameters + extra state
    /// together) rebuilds a bit-identical network even after training
    /// has moved the running statistics off their defaults.
    #[test]
    fn sequential_export_import_carries_extra_state(
        seed in 0u64..1000,
        steps in 1usize..4,
    ) {
        let channels = 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new()
            .push(Conv2d::new(channels, channels, 3, 1, 1, &mut rng))
            .push(BatchNorm2d::new(channels))
            .push(Relu::new());
        // Drive training-mode forwards so the running stats move.
        for step in 0..steps {
            let x = Tensor::from_vec(
                (0..channels * 16).map(|i| ((i + step) as f32 * 0.21).cos()).collect(),
                &[1, channels, 4, 4],
            );
            let _ = net.forward(&x, true);
        }
        let flat = net.export_params();
        prop_assert_eq!(flat.len(), net.export_len());

        let mut rng2 = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut twin = Sequential::new()
            .push(Conv2d::new(channels, channels, 3, 1, 1, &mut rng2))
            .push(BatchNorm2d::new(channels))
            .push(Relu::new());
        twin.import_params(&flat);

        let x = Tensor::from_vec(
            (0..channels * 16).map(|i| (i as f32 * 0.13).sin()).collect(),
            &[1, channels, 4, 4],
        );
        let ya = net.infer(&x);
        let yb = twin.infer(&x);
        let bits_a: Vec<u32> = ya.data().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = yb.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits_a, bits_b, "export/import must carry running stats");
    }
}

/// Length mismatches must panic loudly (the documented contract), not
/// silently truncate — a checkpoint bug would otherwise corrupt stats.
#[test]
#[should_panic(expected = "state length mismatch")]
fn batchnorm_rejects_wrong_state_length() {
    let mut bn = BatchNorm2d::new(3);
    bn.load_extra_state(&[0.0; 5]);
}

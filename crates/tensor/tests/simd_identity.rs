//! The SIMD dispatch contract: the AVX2 micro-kernels are bit-identical
//! to the scalar kernels on every shape (including ragged tails narrower
//! than one vector register), the fused conv+ReLU pass matches the
//! unfused conv followed by a standalone activation, and the int8
//! quantizer is exact to half a quantization step with byte-identical
//! SIMD and scalar paths.
//!
//! These tests flip the process-global SIMD knob, so each one serializes
//! on a shared mutex and restores the default dispatch through an RAII
//! guard. On CPUs without AVX2 both "paths" are scalar and the identity
//! assertions hold trivially.

use odin_tensor::layers::Conv2d;
use odin_tensor::ops::{matmul, matmul_nt, matmul_tn};
use odin_tensor::qtensor::{dot_i8, quantize_activations, QConv2d};
use odin_tensor::simd;
use odin_tensor::{Layer, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

static KNOB: Mutex<()> = Mutex::new(());

/// Holds the SIMD knob lock and restores default dispatch on drop.
struct SimdGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

impl SimdGuard<'_> {
    fn acquire() -> Self {
        let lock = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        SimdGuard { _lock: lock }
    }
}

impl Drop for SimdGuard<'_> {
    fn drop(&mut self) {
        simd::reset_simd();
    }
}

fn rand_tensor(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect(), shape)
}

/// Runs `f` with SIMD forced off then on and asserts the two tensors are
/// bit-identical.
fn assert_simd_invariant(f: impl Fn() -> Tensor) {
    simd::set_simd_enabled(false);
    let scalar = f();
    simd::set_simd_enabled(true);
    let vector = f();
    assert_eq!(scalar.shape(), vector.shape());
    assert_eq!(scalar.data(), vector.data(), "SIMD result differs from scalar");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The matmul family is bit-identical across dispatch paths on
    /// arbitrary shapes. `n` ranges across the 8-wide panel boundary so
    /// ragged column tails (n % 8 != 0) and sub-panel widths (n < 8)
    /// are both exercised.
    #[test]
    fn matmul_family_is_simd_invariant(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let _g = SimdGuard::acquire();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, &[m, k]);
        let b = rand_tensor(&mut rng, &[k, n]);
        let b_t = rand_tensor(&mut rng, &[n, k]);
        let a_t = rand_tensor(&mut rng, &[k, m]);
        assert_simd_invariant(|| matmul(&a, &b));
        assert_simd_invariant(|| matmul_nt(&a, &b_t));
        assert_simd_invariant(|| matmul_tn(&a_t, &b));
    }

    /// The fused conv+activation sweep equals the unfused convolution
    /// followed by a standalone elementwise activation — bit for bit,
    /// on both dispatch paths (ReLU-as-max keeps +0.0 for negatives,
    /// matching the fused kernel's blend).
    #[test]
    fn fused_conv_relu_matches_unfused(
        batch in 1usize..3,
        in_c in 1usize..3,
        out_c in 1usize..6,
        hw in 3usize..9,
        steep in (0usize..2).prop_map(|i| i == 1),
        seed in 0u64..1000,
    ) {
        let _g = SimdGuard::acquire();
        let slope = if steep { 0.1f32 } else { 0.0 };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = rand_tensor(&mut rng, &[batch, in_c, hw, hw]);
        for simd_on in [false, true] {
            simd::set_simd_enabled(simd_on);
            let plain = Conv2d::k3(in_c, out_c, 1, &mut StdRng::seed_from_u64(seed ^ 0xF));
            let fused = Conv2d::k3(in_c, out_c, 1, &mut StdRng::seed_from_u64(seed ^ 0xF))
                .fuse_leaky_relu(slope);
            let y = plain.infer(&x);
            let want: Vec<f32> =
                y.data().iter().map(|&v| if v > 0.0 { v } else { slope * v }).collect();
            let got = fused.infer(&x);
            prop_assert_eq!(
                got.data(),
                &want[..],
                "fused activation diverges (simd={})", simd_on
            );
        }
    }

    /// Quantize→dequantize round-trip error is bounded by half a
    /// quantization step for every element, and the quantized bytes are
    /// identical on both dispatch paths (ties-to-even rounding on each).
    #[test]
    fn quantize_roundtrip_and_paths_agree(
        n in 1usize..200,
        scale_mag in 0.01f32..8.0,
        seed in 0u64..1000,
    ) {
        let _g = SimdGuard::acquire();
        let mut rng = StdRng::seed_from_u64(seed);
        let src: Vec<f32> = (0..n).map(|_| rng.gen_range(-scale_mag..scale_mag)).collect();

        simd::set_simd_enabled(false);
        let mut q_scalar = Vec::new();
        let s_scalar = quantize_activations(&src, &mut q_scalar);
        simd::set_simd_enabled(true);
        let mut q_vector = Vec::new();
        let s_vector = quantize_activations(&src, &mut q_vector);

        prop_assert_eq!(s_scalar.to_bits(), s_vector.to_bits(), "scales diverge");
        prop_assert_eq!(&q_scalar, &q_vector, "quantized bytes diverge");
        for (&v, &qi) in src.iter().zip(q_scalar.iter()) {
            let back = f32::from(qi) * s_scalar;
            prop_assert!(
                (v - back).abs() <= s_scalar * 0.5 + 1e-6,
                "round-trip error beyond half a step: {} -> {}", v, back
            );
        }
    }

    /// The int8 dot product and the direct NHWC quantized convolution
    /// produce identical results on both dispatch paths — integer
    /// accumulation has no rounding, so this is exact equality of the
    /// i32 sums and of the f32 requantized outputs.
    #[test]
    fn int8_kernels_are_simd_invariant(
        len in 1usize..100,
        in_c in 1usize..4,
        out_c in 1usize..6,
        hw in 3usize..8,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let _g = SimdGuard::acquire();
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<i8> = (0..len).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
        let b: Vec<i8> = (0..len).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
        simd::set_simd_enabled(false);
        let dot_scalar = dot_i8(&a, &b);
        simd::set_simd_enabled(true);
        prop_assert_eq!(dot_scalar, dot_i8(&a, &b), "int8 dot diverges");

        let fan_in = in_c * 9;
        let w: Vec<f32> = (0..out_c * fan_in).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let bias: Vec<f32> = (0..out_c).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
        let conv = QConv2d::new(&w, &bias, in_c, out_c, 3, stride, 1, Some(0.1));
        let x: Vec<i8> = (0..hw * hw * in_c).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
        let run = |on: bool| {
            simd::set_simd_enabled(on);
            let mut out = Vec::new();
            conv.forward_nhwc(&x, 0.02, hw, hw, &mut out);
            out
        };
        let scalar = run(false);
        let vector = run(true);
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&scalar), bits(&vector), "quantized conv diverges");
    }
}

//! Asserts the zero-allocation contract of the scratch arena: after a
//! short warm-up, repeated `Conv2d::forward` (and forward+backward)
//! calls with a fixed batch shape perform no heap allocations at all —
//! every buffer is drawn from and returned to the thread-local pool.
//!
//! A counting global allocator makes the assertion exact. The whole
//! file is one `#[test]` so no other test binary's allocations are
//! counted, and the worker pool is pinned to one thread so no allocation
//! happens on a thread we can't warm up.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use odin_tensor::layers::Conv2d;
use odin_tensor::{par, Layer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn conv_forward_is_allocation_free_at_steady_state() {
    par::set_num_threads(1);
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv2d::k3(3, 16, 1, &mut rng);
    let n = 8 * 3 * 24 * 24;
    let x =
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), &[8, 3, 24, 24]);

    // Warm up: the pool learns the working set for this shape.
    let mut checksum = 0.0f32;
    for _ in 0..4 {
        checksum += conv.forward(&x, false).data()[0];
    }

    let before = alloc_count();
    for _ in 0..8 {
        checksum += conv.forward(&x, false).data()[0];
    }
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "Conv2d::forward allocated on the steady-state path (checksum {checksum})"
    );

    // Training steady state: forward + backward with grad accumulation
    // also stabilizes to zero allocations once its buffers are pooled.
    for _ in 0..4 {
        let y = conv.forward(&x, true);
        checksum += conv.backward(&y).data()[0];
        conv.zero_grad();
    }
    let before = alloc_count();
    for _ in 0..8 {
        let y = conv.forward(&x, true);
        checksum += conv.backward(&y).data()[0];
        conv.zero_grad();
    }
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "Conv2d forward+backward allocated at steady state (checksum {checksum})"
    );
}

//! Property-based tests for the tensor algebra core.

use odin_tensor::ops::{col2im, im2col, matmul, matmul_nt, matmul_tn, softmax_rows, ConvGeom};
use odin_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(max_elems: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 1..=max_elems)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_is_commutative(a in tensor_strategy(64)) {
        let n = a.len();
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let ta = Tensor::from_vec(a, &[n]);
        let tb = Tensor::from_vec(b, &[n]);
        let ab = ta.add(&tb);
        let ba = tb.add(&ta);
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_then_add_roundtrips(a in tensor_strategy(64)) {
        let n = a.len();
        let b: Vec<f32> = a.iter().map(|x| x - 3.0).collect();
        let ta = Tensor::from_vec(a, &[n]);
        let tb = Tensor::from_vec(b, &[n]);
        let back = ta.sub(&tb).add(&tb);
        for (x, y) in back.data().iter().zip(ta.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_distributes_over_add(a in tensor_strategy(32), s in -4.0f32..4.0) {
        let n = a.len();
        let b: Vec<f32> = a.iter().rev().cloned().collect();
        let ta = Tensor::from_vec(a, &[n]);
        let tb = Tensor::from_vec(b, &[n]);
        let lhs = ta.add(&tb).scale(s);
        let rhs = ta.scale(s).add(&tb.scale(s));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6) {
        let data: Vec<f32> = (0..rows * cols).map(|i| i as f32 * 0.7).collect();
        let t = Tensor::from_vec(data, &[rows, cols]);
        let tt = t.transpose().transpose();
        prop_assert_eq!(tt.data(), t.data());
    }

    #[test]
    fn matmul_identity_is_noop(rows in 1usize..5, cols in 1usize..5) {
        let data: Vec<f32> = (0..rows * cols).map(|i| (i as f32).sin()).collect();
        let a = Tensor::from_vec(data, &[rows, cols]);
        let mut eye = Tensor::zeros(&[cols, cols]);
        for i in 0..cols {
            eye.set(&[i, i], 1.0);
        }
        let prod = matmul(&a, &eye);
        for (x, y) in prod.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_variants_agree(m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        let a = Tensor::from_vec((0..m * k).map(|i| (i as f32 * 0.3).cos()).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|i| (i as f32 * 0.7).sin()).collect(), &[k, n]);
        let base = matmul(&a, &b);
        let via_nt = matmul_nt(&a, &b.transpose());
        let via_tn = matmul_tn(&a.transpose(), &b);
        for ((x, y), z) in base.data().iter().zip(via_nt.data()).zip(via_tn.data()) {
            prop_assert!((x - y).abs() < 1e-4);
            prop_assert!((x - z).abs() < 1e-4);
        }
    }

    #[test]
    fn dist_satisfies_triangle_inequality(a in tensor_strategy(16)) {
        let n = a.len();
        let b: Vec<f32> = a.iter().map(|x| x + 1.0).collect();
        let c: Vec<f32> = a.iter().map(|x| x * -0.5).collect();
        let ta = Tensor::from_vec(a, &[n]);
        let tb = Tensor::from_vec(b, &[n]);
        let tc = Tensor::from_vec(c, &[n]);
        prop_assert!(ta.dist(&tc) <= ta.dist(&tb) + tb.dist(&tc) + 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..4, cols in 1usize..6) {
        let x = Tensor::from_vec(
            (0..rows * cols).map(|i| (i as f32 * 1.3).sin() * 5.0).collect(),
            &[rows, cols],
        );
        let s = softmax_rows(&x);
        for i in 0..rows {
            let row = s.row(i);
            prop_assert!(row.min() >= 0.0);
            prop_assert!((row.sum() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(h in 3usize..8, w in 3usize..8, stride in 1usize..3) {
        let g = ConvGeom { in_c: 2, in_h: h, in_w: w, kernel: 3, stride, pad: 1 };
        let n_in = 2 * h * w;
        let x = Tensor::from_vec((0..n_in).map(|i| (i as f32 * 0.13).sin()).collect(), &[1, 2, h, w]);
        let cols = im2col(&x, &g);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| (i as f32 * 0.29).cos()).collect(),
            cols.shape(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, &g, 1);
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch {} vs {}", lhs, rhs);
    }

    #[test]
    fn reshape_preserves_sum(a in tensor_strategy(24)) {
        let n = a.len();
        let t = Tensor::from_vec(a, &[n]);
        let r = t.reshape(&[1, n]);
        prop_assert_eq!(t.sum(), r.sum());
    }

    #[test]
    fn fused_softmax_matches_two_pass_reference(rows in 1usize..8, cols in 1usize..12) {
        let x = Tensor::from_vec(
            (0..rows * cols).map(|i| (i as f32 * 0.7).sin() * 20.0).collect(),
            &[rows, cols],
        );
        let got = softmax_rows(&x);
        // The pre-fusion implementation: max pass, exp pass writing the
        // output, then a separate divide pass — bit-for-bit.
        let mut expect = vec![0.0f32; rows * cols];
        for i in 0..rows {
            let row = &x.data()[i * cols..(i + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - m).exp();
                expect[i * cols + j] = e;
                sum += e;
            }
            for v in &mut expect[i * cols..(i + 1) * cols] {
                *v /= sum;
            }
        }
        prop_assert_eq!(got.data(), &expect[..]);
    }
}

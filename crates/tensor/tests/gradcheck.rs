//! Numerical gradient checks for every layer.
//!
//! These are the load-bearing tests of the whole repository: if a backward
//! pass is wrong, every model trained on top silently degrades. Each check
//! compares analytic parameter and input gradients against central finite
//! differences on a small network.

use odin_tensor::layers::{
    BatchNorm2d, Conv2d, Dense, Flatten, GlobalAvgPool, GlobalMaxPool, LeakyRelu, MaxPool2, Relu,
    Reshape, Sigmoid, Tanh, Upsample2,
};
use odin_tensor::{loss, Layer, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f32 = 2e-3;
const TOL: f32 = 3e-2;

/// Scalar loss used for checking: MSE against a fixed random target.
/// Always runs in train mode so batch-statistic layers (BatchNorm) see
/// the same forward function the analytic gradient was derived for; all
/// layers are deterministic, so this is safe for finite differences.
fn scalar_loss(net: &mut Sequential, x: &Tensor, target: &Tensor) -> (f32, Tensor) {
    let y = net.forward(x, true);
    loss::mse(&y, target)
}

/// Checks all parameter gradients and the input gradient of `net` at `x`.
fn gradcheck(net: &mut Sequential, x: &Tensor, out_shape: &[usize], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let target = Tensor::from_vec(
        (0..out_shape.iter().product::<usize>()).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        out_shape,
    );

    // Analytic gradients.
    net.zero_grad();
    let (_, dgrad) = scalar_loss(net, x, &target);
    let dx = net.backward(&dgrad);

    // Check parameter gradients (a random subset for large tensors).
    let n_params = net.params_grads().len();
    for pi in 0..n_params {
        let numel = net.params_grads()[pi].0.numel();
        let step = (numel / 8).max(1);
        for j in (0..numel).step_by(step) {
            let analytic = net.params_grads()[pi].1.data()[j];
            let orig = net.params_grads()[pi].0.data()[j];
            net.params_grads()[pi].0.data_mut()[j] = orig + EPS;
            let (lp, _) = scalar_loss(net, x, &target);
            net.params_grads()[pi].0.data_mut()[j] = orig - EPS;
            let (lm, _) = scalar_loss(net, x, &target);
            net.params_grads()[pi].0.data_mut()[j] = orig;
            let numeric = (lp - lm) / (2.0 * EPS);
            let denom = analytic.abs().max(numeric.abs()).max(1.0);
            assert!(
                (analytic - numeric).abs() / denom < TOL,
                "param {pi}[{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    // Check input gradients.
    let mut xp = x.clone();
    let step = (x.numel() / 8).max(1);
    for j in (0..x.numel()).step_by(step) {
        let analytic = dx.data()[j];
        let orig = xp.data()[j];
        xp.data_mut()[j] = orig + EPS;
        let (lp, _) = scalar_loss(net, &xp, &target);
        xp.data_mut()[j] = orig - EPS;
        let (lm, _) = scalar_loss(net, &xp, &target);
        xp.data_mut()[j] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        let denom = analytic.abs().max(numeric.abs()).max(1.0);
        assert!(
            (analytic - numeric).abs() / denom < TOL,
            "input[{j}]: analytic {analytic} vs numeric {numeric}"
        );
    }
}

fn rand_input(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    Tensor::from_vec(
        (0..shape.iter().product::<usize>()).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        shape,
    )
}

#[test]
fn gradcheck_dense() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut net = Sequential::new().push(Dense::new(5, 4, &mut rng));
    let x = rand_input(&mut rng, &[3, 5]);
    gradcheck(&mut net, &x, &[3, 4], 1);
}

#[test]
fn gradcheck_dense_relu_dense() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = Sequential::new()
        .push(Dense::new(4, 8, &mut rng))
        .push(Relu::new())
        .push(Dense::new(8, 3, &mut rng));
    let x = rand_input(&mut rng, &[2, 4]);
    gradcheck(&mut net, &x, &[2, 3], 2);
}

#[test]
fn gradcheck_leaky_relu() {
    let mut rng = StdRng::seed_from_u64(12);
    let mut net = Sequential::new()
        .push(Dense::new(4, 6, &mut rng))
        .push(LeakyRelu::new(0.2))
        .push(Dense::new(6, 2, &mut rng));
    let x = rand_input(&mut rng, &[2, 4]);
    gradcheck(&mut net, &x, &[2, 2], 3);
}

#[test]
fn gradcheck_sigmoid_tanh() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut net = Sequential::new()
        .push(Dense::new(3, 5, &mut rng))
        .push(Tanh::new())
        .push(Dense::new(5, 3, &mut rng))
        .push(Sigmoid::new());
    let x = rand_input(&mut rng, &[2, 3]);
    gradcheck(&mut net, &x, &[2, 3], 4);
}

#[test]
fn gradcheck_conv_stride1() {
    let mut rng = StdRng::seed_from_u64(14);
    let mut net = Sequential::new().push(Conv2d::new(2, 3, 3, 1, 1, &mut rng)).push(Flatten::new());
    let x = rand_input(&mut rng, &[1, 2, 4, 4]);
    gradcheck(&mut net, &x, &[1, 48], 5);
}

#[test]
fn gradcheck_conv_stride2() {
    let mut rng = StdRng::seed_from_u64(15);
    let mut net = Sequential::new()
        .push(Conv2d::new(1, 4, 3, 2, 1, &mut rng))
        .push(Relu::new())
        .push(Flatten::new());
    let x = rand_input(&mut rng, &[2, 1, 6, 6]);
    gradcheck(&mut net, &x, &[2, 36], 6);
}

#[test]
fn gradcheck_conv_deep() {
    let mut rng = StdRng::seed_from_u64(16);
    let mut net = Sequential::new()
        .push(Conv2d::new(1, 2, 3, 2, 1, &mut rng))
        .push(LeakyRelu::default())
        .push(Conv2d::new(2, 3, 3, 2, 1, &mut rng))
        .push(Flatten::new())
        .push(Dense::new(12, 2, &mut rng));
    let x = rand_input(&mut rng, &[1, 1, 8, 8]);
    gradcheck(&mut net, &x, &[1, 2], 7);
}

#[test]
fn gradcheck_maxpool() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut net = Sequential::new()
        .push(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
        .push(MaxPool2::new())
        .push(Flatten::new());
    let x = rand_input(&mut rng, &[1, 1, 4, 4]);
    gradcheck(&mut net, &x, &[1, 8], 8);
}

#[test]
fn gradcheck_global_avg_pool() {
    let mut rng = StdRng::seed_from_u64(18);
    let mut net =
        Sequential::new().push(Conv2d::new(1, 3, 3, 1, 1, &mut rng)).push(GlobalAvgPool::new());
    let x = rand_input(&mut rng, &[2, 1, 4, 4]);
    gradcheck(&mut net, &x, &[2, 3], 9);
}

#[test]
fn gradcheck_batch_norm() {
    // Note: BN's forward depends on batch statistics, so the numeric
    // check perturbs one element and the analytic gradient must account
    // for the mean/var coupling — exactly what the backward implements.
    let mut rng = StdRng::seed_from_u64(22);
    let mut net = Sequential::new()
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(BatchNorm2d::new(3))
        .push(Relu::new())
        .push(Flatten::new())
        .push(Dense::new(48, 2, &mut rng));
    let x = rand_input(&mut rng, &[2, 1, 4, 4]);
    gradcheck(&mut net, &x, &[2, 2], 12);
}

#[test]
fn gradcheck_global_max_pool() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut net = Sequential::new()
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(GlobalMaxPool::new())
        .push(Dense::new(3, 2, &mut rng));
    let x = rand_input(&mut rng, &[2, 1, 4, 4]);
    gradcheck(&mut net, &x, &[2, 2], 11);
}

#[test]
fn gradcheck_decoder_shape() {
    // Dense -> Reshape -> Upsample -> Conv: the decoder pattern.
    let mut rng = StdRng::seed_from_u64(19);
    let mut net = Sequential::new()
        .push(Dense::new(4, 8, &mut rng))
        .push(Reshape::new(2, 2, 2))
        .push(Upsample2::new())
        .push(Conv2d::new(2, 1, 3, 1, 1, &mut rng))
        .push(Flatten::new());
    let x = rand_input(&mut rng, &[1, 4]);
    gradcheck(&mut net, &x, &[1, 16], 10);
}

#[test]
fn gradcheck_bce_loss_gradient() {
    // Check the BCE-with-logits gradient itself numerically.
    let mut rng = StdRng::seed_from_u64(20);
    let logits = rand_input(&mut rng, &[6]);
    let targets = Tensor::from_slice(&[1.0, 0.0, 1.0, 0.0, 0.5, 1.0]);
    let (_, grad) = loss::bce_with_logits(&logits, &targets);
    for j in 0..logits.numel() {
        let mut lp = logits.clone();
        lp.data_mut()[j] += EPS;
        let (llp, _) = loss::bce_with_logits(&lp, &targets);
        let mut lm = logits.clone();
        lm.data_mut()[j] -= EPS;
        let (llm, _) = loss::bce_with_logits(&lm, &targets);
        let numeric = (llp - llm) / (2.0 * EPS);
        assert!(
            (grad.data()[j] - numeric).abs() < 1e-3,
            "bce grad[{j}]: {} vs {}",
            grad.data()[j],
            numeric
        );
    }
}

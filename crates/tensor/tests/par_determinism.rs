//! The parallel backend's determinism contract: every kernel produces
//! bit-identical results for any thread count, and the forced-parallel
//! path matches the forced-serial path on every shape.
//!
//! These tests mutate process-global knobs (thread count, parallel
//! threshold), so each one serializes on a shared mutex and restores the
//! defaults through an RAII guard.

use odin_tensor::layers::Conv2d;
use odin_tensor::ops::{im2col, matmul, matmul_nt, matmul_tn, softmax_rows, ConvGeom};
use odin_tensor::par;
use odin_tensor::{Layer, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

static KNOBS: Mutex<()> = Mutex::new(());

/// Holds the knob lock and restores defaults on drop.
struct KnobGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

impl KnobGuard<'_> {
    fn acquire() -> Self {
        let lock = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        KnobGuard { _lock: lock }
    }
}

impl Drop for KnobGuard<'_> {
    fn drop(&mut self) {
        par::set_num_threads(1);
        par::reset_parallel_threshold();
    }
}

fn rand_tensor(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect(), shape)
}

/// Runs `f` under 1, 2, and 4 threads with the parallel threshold forced
/// to zero (so even tiny shapes exercise the pool) and asserts all three
/// results are bit-identical.
fn assert_thread_invariant(f: impl Fn() -> Tensor) {
    par::set_parallel_threshold(0);
    par::set_num_threads(1);
    let t1 = f();
    par::set_num_threads(2);
    let t2 = f();
    par::set_num_threads(4);
    let t4 = f();
    assert_eq!(t1.shape(), t2.shape());
    assert_eq!(t1.shape(), t4.shape());
    assert_eq!(t1.data(), t2.data(), "1-thread vs 2-thread results differ");
    assert_eq!(t1.data(), t4.data(), "1-thread vs 4-thread results differ");
}

/// Asserts the forced-parallel path (threshold 0, 4 threads) matches the
/// forced-serial path (threshold usize::MAX) bit for bit.
fn assert_serial_matches_parallel(f: impl Fn() -> Tensor) {
    par::set_num_threads(4);
    par::set_parallel_threshold(usize::MAX);
    let serial = f();
    par::set_parallel_threshold(0);
    let parallel = f();
    assert_eq!(serial.shape(), parallel.shape());
    assert_eq!(serial.data(), parallel.data(), "serial fallback differs from parallel path");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_family_is_thread_invariant(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let _g = KnobGuard::acquire();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_tensor(&mut rng, &[m, k]);
        let b = rand_tensor(&mut rng, &[k, n]);
        let b_t = rand_tensor(&mut rng, &[n, k]);
        let a_t = rand_tensor(&mut rng, &[k, m]);
        assert_thread_invariant(|| matmul(&a, &b));
        assert_thread_invariant(|| matmul_nt(&a, &b_t));
        assert_thread_invariant(|| matmul_tn(&a_t, &b));
        assert_serial_matches_parallel(|| matmul(&a, &b));
        assert_serial_matches_parallel(|| matmul_nt(&a, &b_t));
        assert_serial_matches_parallel(|| matmul_tn(&a_t, &b));
    }

    #[test]
    fn conv_forward_backward_is_thread_invariant(
        batch in 1usize..4,
        in_c in 1usize..3,
        out_c in 1usize..5,
        hw in 4usize..10,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let _g = KnobGuard::acquire();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = rand_tensor(&mut rng, &[batch, in_c, hw, hw]);
        // One forward+backward per thread count, from identical weights.
        let run = |threads: usize, threshold: usize| {
            par::set_num_threads(threads);
            par::set_parallel_threshold(threshold);
            let mut conv = Conv2d::k3(in_c, out_c, stride, &mut StdRng::seed_from_u64(seed ^ 0xC0));
            let y = conv.forward(&x, true);
            let gx = conv.backward(&y);
            let (dw, db) = {
                let pg = conv.params_grads();
                (pg[0].1.clone(), pg[1].1.clone())
            };
            (y, gx, dw, db)
        };
        let base = run(1, 0);
        for threads in [2usize, 4] {
            let got = run(threads, 0);
            assert_eq!(base.0.data(), got.0.data(), "forward differs at {threads} threads");
            assert_eq!(base.1.data(), got.1.data(), "input grad differs at {threads} threads");
            assert_eq!(base.2.data(), got.2.data(), "weight grad differs at {threads} threads");
            assert_eq!(base.3.data(), got.3.data(), "bias grad differs at {threads} threads");
        }
        let serial = run(4, usize::MAX);
        assert_eq!(base.0.data(), serial.0.data(), "serial conv forward differs");
        assert_eq!(base.1.data(), serial.1.data(), "serial conv backward differs");
    }

    #[test]
    fn im2col_and_softmax_are_thread_invariant(
        batch in 1usize..4,
        hw in 3usize..9,
        seed in 0u64..1000,
    ) {
        let _g = KnobGuard::acquire();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ConvGeom { in_c: 2, in_h: hw, in_w: hw, kernel: 3, stride: 1, pad: 1 };
        let x = rand_tensor(&mut rng, &[batch, 2, hw, hw]);
        assert_thread_invariant(|| im2col(&x, &g));
        assert_serial_matches_parallel(|| im2col(&x, &g));
        let logits = rand_tensor(&mut rng, &[batch * 7, 11]);
        assert_thread_invariant(|| softmax_rows(&logits));
        assert_serial_matches_parallel(|| softmax_rows(&logits));
    }
}

//! The YOLO-sim detector family (§5.2 of the paper).
//!
//! Three roles, two architectures:
//!
//! * **YoloSim** (heavyweight): a deep, wide backbone — the stand-in for
//!   YOLOv3's 24-conv-layer network. Accurate but slow and large.
//! * **YoloSpecialized**: a pruned backbone trained *from scratch* on one
//!   cluster's data with oracle labels.
//! * **YoloLite**: the same pruned backbone, but distilled from a teacher
//!   (trained on the teacher's *outputs*, no oracle labels needed).
//!
//! The paper's YOLOv3 has ~62M parameters (237 MB); CPU training at that
//! scale is not feasible, so both architectures are scaled down while
//! preserving the heavy-to-small parameter and depth ratio (~7×) that
//! drives Table 4's throughput/memory results.

use std::fmt;

use odin_data::{Frame, GtBox, Image};
use odin_tensor::layers::{BatchNorm2d, Conv2d, LeakyRelu};
use odin_tensor::optim::{Adam, Optimizer};
use odin_tensor::{Layer, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

use crate::head::{build_targets, decode, detector_loss, Detection, LossWeights, HEAD_CHANNELS};
use crate::map::mean_average_precision;
use crate::nms::nms;

/// Detector backbone architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorArch {
    /// The heavyweight YoloSim backbone.
    Heavy,
    /// The pruned backbone shared by YoloSpecialized and YoloLite.
    Small,
}

impl fmt::Display for DetectorArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorArch::Heavy => write!(f, "YoloSim"),
            DetectorArch::Small => write!(f, "YoloSmall"),
        }
    }
}

/// Default confidence threshold used at inference.
pub const DEFAULT_CONF: f32 = 0.35;
/// Default NMS IoU threshold.
pub const DEFAULT_NMS_IOU: f32 = 0.45;
/// Negative slope of the backbone activations (`LeakyRelu::default()`).
pub(crate) const LEAKY_SLOPE: f32 = 0.2;

/// The Small backbone's conv stack: `(in_c, out_c, kernel, stride, pad,
/// fused leaky-ReLU)` per layer. [`Detector::small`] builds the f32 net
/// from this table and `QDetector::quantize` uses it to slice the flat
/// [`Detector::export_params`] buffer, so the two can never drift apart.
pub(crate) const SMALL_CONVS: [(usize, usize, usize, usize, usize, bool); 4] = [
    (3, 16, 3, 2, 1, true),
    (16, 32, 3, 2, 1, true),
    (32, 40, 3, 2, 1, true),
    (40, HEAD_CHANNELS, 1, 1, 0, false),
];

/// A grid object detector.
pub struct Detector {
    net: Sequential,
    arch: DetectorArch,
    size: usize,
    grid: usize,
    opt: Adam,
    weights: LossWeights,
    /// Confidence threshold applied in [`Detector::detect`].
    pub conf_threshold: f32,
}

impl Detector {
    /// Builds the heavyweight YoloSim detector for `size`×`size` frames.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not divisible by 8.
    pub fn heavy(size: usize, rng: &mut StdRng) -> Self {
        assert_eq!(size % 8, 0, "frame size must be divisible by 8");
        // Batch-normalized, like the original YOLO backbone; the pruned
        // models below drop BN per §5.2.
        let net = Sequential::new()
            .push(Conv2d::k3(3, 24, 2, rng))
            .push(BatchNorm2d::new(24))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(24, 48, 2, rng))
            .push(BatchNorm2d::new(48))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(48, 64, 1, rng))
            .push(BatchNorm2d::new(64))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(64, 64, 2, rng))
            .push(BatchNorm2d::new(64))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(64, 64, 1, rng))
            .push(BatchNorm2d::new(64))
            .push(LeakyRelu::default())
            .push(Conv2d::new(64, HEAD_CHANNELS, 1, 1, 0, rng));
        Detector {
            net,
            arch: DetectorArch::Heavy,
            size,
            grid: size / 8,
            opt: Adam::new(1e-3),
            weights: LossWeights::default(),
            conf_threshold: DEFAULT_CONF,
        }
    }

    /// Builds the pruned small detector (YoloSpecialized / YoloLite
    /// architecture). Per §5.2 the pruned model drops several conv layers
    /// (and batch norm, which these models never had to begin with).
    pub fn small(size: usize, rng: &mut StdRng) -> Self {
        assert_eq!(size % 8, 0, "frame size must be divisible by 8");
        // Activations are fused into the convs (no BN between conv and
        // activation here, unlike the heavy backbone): same RNG draws,
        // same parameter layout, bit-identical outputs — just one output
        // sweep per conv instead of three on the serving hot path.
        let mut net = Sequential::new();
        for &(in_c, out_c, kernel, stride, pad, leaky) in SMALL_CONVS.iter() {
            let conv = Conv2d::new(in_c, out_c, kernel, stride, pad, rng);
            net = net.push(if leaky { conv.fuse_leaky_relu(LEAKY_SLOPE) } else { conv });
        }
        Detector {
            net,
            arch: DetectorArch::Small,
            size,
            grid: size / 8,
            opt: Adam::new(1.5e-3),
            weights: LossWeights::default(),
            conf_threshold: DEFAULT_CONF,
        }
    }

    /// The architecture of this detector.
    pub fn arch(&self) -> DetectorArch {
        self.arch
    }

    /// Frame side length expected by the detector.
    pub fn input_size(&self) -> usize {
        self.size
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.net.num_params()
    }

    /// Model size in bytes (f32 parameters) — the "memory footprint" of
    /// Table 4.
    pub fn param_bytes(&self) -> usize {
        self.net.param_bytes()
    }

    /// Raw head output for a `[B, 3, s, s]` batch.
    ///
    /// Inference is const-correct (`&self`): a frozen detector can be
    /// shared behind an `Arc` and serve several threads concurrently —
    /// e.g. the teacher feeding background distillation workers.
    pub fn forward(&self, batch: &Tensor) -> Tensor {
        self.net.infer(batch)
    }

    /// Runs detection (decode + NMS) on a batch of frames.
    pub fn detect_batch(&self, images: &[&Image]) -> Vec<Vec<Detection>> {
        let resized: Vec<Image> = images
            .iter()
            .map(|im| {
                if im.height() == self.size && im.width() == self.size {
                    (*im).clone()
                } else {
                    im.resize_nearest(self.size, self.size)
                }
            })
            .collect();
        let batch = Image::batch(&resized);
        let pred = self.net.infer(&batch);
        decode(&pred, self.size, self.conf_threshold)
            .into_iter()
            .map(|d| nms(d, DEFAULT_NMS_IOU))
            .collect()
    }

    /// Runs detection on one frame.
    pub fn detect(&self, image: &Image) -> Vec<Detection> {
        self.detect_batch(&[image]).pop().expect("one frame in, one out")
    }

    /// One gradient step against explicit per-frame box labels.
    pub fn train_step(&mut self, batch: &Tensor, boxes: &[&[GtBox]]) -> f32 {
        let targets = build_targets(boxes, self.grid, self.size);
        let pred = self.net.forward(batch, true);
        let (loss, grad) = detector_loss(&pred, &targets, &self.weights);
        self.net.backward(&grad);
        self.opt.step(&mut self.net.params_grads());
        self.net.zero_grad();
        loss
    }

    /// Trains against oracle (ground-truth) labels — how SPECIALIZER
    /// builds a YoloSpecialized model once labels are available.
    pub fn train_oracle(
        &mut self,
        rng: &mut StdRng,
        frames: &[Frame],
        iters: usize,
        batch_size: usize,
    ) -> Vec<f32> {
        assert!(!frames.is_empty(), "cannot train on zero frames");
        (0..iters)
            .map(|_| {
                let picks: Vec<&Frame> =
                    (0..batch_size).map(|_| &frames[rng.gen_range(0..frames.len())]).collect();
                let images: Vec<Image> = picks.iter().map(|f| f.image.clone()).collect();
                let batch = Image::batch(&images);
                let boxes: Vec<&[GtBox]> = picks.iter().map(|f| f.boxes.as_slice()).collect();
                self.train_step(&batch, &boxes)
            })
            .collect()
    }

    /// Trains against a teacher's outputs (knowledge distillation) — how
    /// SPECIALIZER builds a YoloLite model *before* oracle labels arrive.
    pub fn train_distill(
        &mut self,
        rng: &mut StdRng,
        teacher: &Detector,
        frames: &[Frame],
        iters: usize,
        batch_size: usize,
    ) -> Vec<f32> {
        assert!(!frames.is_empty(), "cannot distill on zero frames");
        assert_eq!(teacher.size, self.size, "teacher/student input size mismatch");
        (0..iters)
            .map(|_| {
                let picks: Vec<&Frame> =
                    (0..batch_size).map(|_| &frames[rng.gen_range(0..frames.len())]).collect();
                let images: Vec<&Image> = picks.iter().map(|f| &f.image).collect();
                // Teacher pseudo-labels replace the oracle.
                let pseudo: Vec<Vec<GtBox>> = teacher
                    .detect_batch(&images)
                    .into_iter()
                    .map(|dets| dets.into_iter().map(|d| d.bbox).collect())
                    .collect();
                let owned: Vec<Image> = picks.iter().map(|f| f.image.clone()).collect();
                let batch = Image::batch(&owned);
                let boxes: Vec<&[GtBox]> = pseudo.iter().map(|v| v.as_slice()).collect();
                self.train_step(&batch, &boxes)
            })
            .collect()
    }

    /// Evaluates mAP against ground truth over a set of frames.
    pub fn evaluate_map(&self, frames: &[Frame]) -> f32 {
        if frames.is_empty() {
            return 0.0;
        }
        let mut all_dets = Vec::with_capacity(frames.len());
        // Batch in chunks to bound memory.
        for chunk in frames.chunks(16) {
            let images: Vec<&Image> = chunk.iter().map(|f| &f.image).collect();
            all_dets.extend(self.detect_batch(&images));
        }
        let gts: Vec<&[GtBox]> = frames.iter().map(|f| f.boxes.as_slice()).collect();
        mean_average_precision(&all_dets, &gts, crate::map::MAP_IOU)
    }

    /// Serialized buffer length (parameters + batch-norm running stats).
    pub fn export_len(&self) -> usize {
        self.net.export_len()
    }

    /// Exports parameters and non-trainable state (for model-registry
    /// snapshots and caches).
    pub fn export_params(&self) -> Vec<f32> {
        self.net.export_params()
    }

    /// Imports parameters produced by [`Detector::export_params`] on a
    /// same-architecture detector.
    pub fn import_params(&mut self, flat: &[f32]) {
        self.net.import_params(flat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{Condition, SceneGen, Subset, TimeOfDay, Weather};
    use rand::SeedableRng;

    #[test]
    fn heavy_is_much_larger_than_small() {
        let mut rng = StdRng::seed_from_u64(0);
        let heavy = Detector::heavy(48, &mut rng);
        let small = Detector::small(48, &mut rng);
        let ratio = heavy.num_params() as f32 / small.num_params() as f32;
        assert!(
            (5.0..14.0).contains(&ratio),
            "heavy/small parameter ratio {ratio} out of the paper's ballpark (~7x)"
        );
    }

    #[test]
    fn forward_has_head_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Detector::small(48, &mut rng);
        let out = d.forward(&Tensor::zeros(&[2, 3, 48, 48]));
        assert_eq!(out.shape(), &[2, HEAD_CHANNELS, 6, 6]);
    }

    #[test]
    fn training_reduces_detection_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = SceneGen::new(48);
        let frames: Vec<Frame> = (0..20)
            .map(|_| gen.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day)))
            .collect();
        let mut d = Detector::small(48, &mut rng);
        let trace = d.train_oracle(&mut rng, &frames, 60, 8);
        let head: f32 = trace[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = trace[trace.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "loss did not drop: {head} -> {tail}");
    }

    #[test]
    fn trained_detector_beats_untrained_map() {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 120);
        let test = gen.subset_frames(&mut rng, Subset::Day, 30);
        let mut trained = Detector::small(48, &mut rng);
        let untrained = Detector::small(48, &mut rng);
        trained.train_oracle(&mut rng, &frames, 700, 8);
        let m_trained = trained.evaluate_map(&test);
        let m_untrained = untrained.evaluate_map(&test);
        assert!(
            m_trained > m_untrained + 0.05,
            "training did not help: {m_untrained} -> {m_trained}"
        );
        assert!(m_trained > 0.1, "trained mAP {m_trained} too low");
    }

    #[test]
    fn distillation_transfers_teacher_behaviour() {
        let mut rng = StdRng::seed_from_u64(4);
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 120);
        let test = gen.subset_frames(&mut rng, Subset::Day, 30);
        let mut teacher = Detector::small(48, &mut rng); // small teacher keeps the test fast
        teacher.train_oracle(&mut rng, &frames, 700, 8);
        let mut student = Detector::small(48, &mut rng);
        student.train_distill(&mut rng, &teacher, &frames, 400, 8);
        let m_student = student.evaluate_map(&test);
        let fresh = Detector::small(48, &mut rng);
        let m_fresh = fresh.evaluate_map(&test);
        assert!(
            m_student > m_fresh,
            "distilled student ({m_student}) no better than untrained ({m_fresh})"
        );
    }

    #[test]
    fn export_import_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Detector::small(48, &mut rng);
        let mut b = Detector::small(48, &mut rng);
        let x = Tensor::ones(&[1, 3, 48, 48]);
        let blob = a.export_params();
        b.import_params(&blob);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
    }

    #[test]
    fn detect_resizes_foreign_sizes() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = Detector::small(48, &mut rng);
        let img = Image::new(3, 64, 64);
        let _ = d.detect(&img); // must not panic
    }
}

//! The single-shot grid detection head: target encoding, loss, and
//! decoding.
//!
//! Like YOLO (§5.2 of the paper), the detector divides the image into a
//! `G × G` grid; each cell predicts an objectness score, a box
//! (center offset within the cell plus width/height relative to the
//! image), and per-class scores. Channel layout of the `[B, 5+C, G, G]`
//! prediction tensor:
//!
//! | channel | meaning |
//! |---|---|
//! | 0 | objectness logit |
//! | 1–4 | box logits (cx, cy, w, h) — sigmoid-squashed at decode |
//! | 5… | class logits |

use odin_data::{GtBox, ObjectClass, NUM_CLASSES};
use odin_tensor::ops::sigmoid;
use odin_tensor::Tensor;

/// Channels per grid cell: objectness + 4 box + classes.
pub const HEAD_CHANNELS: usize = 5 + NUM_CLASSES;

/// A decoded detection.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Predicted box in pixel coordinates.
    pub bbox: GtBox,
    /// Objectness × class confidence.
    pub score: f32,
}

/// Builds the `[B, HEAD_CHANNELS, G, G]` training target from ground
/// truth. The cell containing a box center is responsible for it.
pub fn build_targets(boxes_per_frame: &[&[GtBox]], grid: usize, size: usize) -> Tensor {
    let b = boxes_per_frame.len();
    let mut t = Tensor::zeros(&[b, HEAD_CHANNELS, grid, grid]);
    let cell = size as f32 / grid as f32;
    for (bi, boxes) in boxes_per_frame.iter().enumerate() {
        for gt in boxes.iter() {
            let (cx, cy) = gt.center();
            let gx = ((cx / cell) as usize).min(grid - 1);
            let gy = ((cy / cell) as usize).min(grid - 1);
            t.set(&[bi, 0, gy, gx], 1.0);
            t.set(&[bi, 1, gy, gx], (cx / cell - gx as f32).clamp(0.0, 1.0));
            t.set(&[bi, 2, gy, gx], (cy / cell - gy as f32).clamp(0.0, 1.0));
            t.set(&[bi, 3, gy, gx], (gt.w / size as f32).clamp(0.0, 1.0));
            t.set(&[bi, 4, gy, gx], (gt.h / size as f32).clamp(0.0, 1.0));
            t.set(&[bi, 5 + gt.class.index(), gy, gx], 1.0);
        }
    }
    t
}

/// Loss weights, YOLO-style.
#[derive(Debug, Clone, Copy)]
pub struct LossWeights {
    /// Weight of objectness BCE in cells *without* objects (down-weighted
    /// to balance the many empty cells).
    pub no_obj: f32,
    /// Weight of the box-coordinate MSE.
    pub boxes: f32,
    /// Weight of the class BCE.
    pub class: f32,
}

impl Default for LossWeights {
    fn default() -> Self {
        LossWeights { no_obj: 0.5, boxes: 5.0, class: 1.0 }
    }
}

/// Detector loss and its gradient w.r.t. the raw prediction tensor.
///
/// * objectness: BCE-with-logits over every cell (empty cells weighted by
///   `no_obj`),
/// * box: MSE between sigmoid(pred) and target, only in object cells,
/// * class: BCE-with-logits, only in object cells.
pub fn detector_loss(pred: &Tensor, target: &Tensor, w: &LossWeights) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "pred/target shape mismatch");
    assert_eq!(pred.ndim(), 4, "expected [B, C, G, G]");
    let (b, c, gh, gw) = (pred.shape()[0], pred.shape()[1], pred.shape()[2], pred.shape()[3]);
    assert_eq!(c, HEAD_CHANNELS, "channel count mismatch");
    let plane = gh * gw;
    let pd = pred.data();
    let td = target.data();
    let mut grad = vec![0.0f32; pd.len()];
    let mut loss = 0.0f32;
    let n = (b * plane) as f32;
    for bi in 0..b {
        let base = bi * c * plane;
        for p in 0..plane {
            let obj = td[base + p]; // channel 0
                                    // Objectness BCE.
            {
                let x = pd[base + p];
                let t = obj;
                let wgt = if obj > 0.5 { 1.0 } else { w.no_obj };
                loss += wgt * (x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln());
                grad[base + p] = wgt * (sigmoid(x) - t) / n;
            }
            if obj > 0.5 {
                // Box MSE on sigmoid outputs.
                for ch in 1..5 {
                    let idx = base + ch * plane + p;
                    let s = sigmoid(pd[idx]);
                    let d = s - td[idx];
                    loss += w.boxes * d * d;
                    grad[idx] = w.boxes * 2.0 * d * s * (1.0 - s) / n;
                }
                // Class BCE.
                for ch in 5..c {
                    let idx = base + ch * plane + p;
                    let x = pd[idx];
                    let t = td[idx];
                    loss += w.class * (x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln());
                    grad[idx] = w.class * (sigmoid(x) - t) / n;
                }
            }
        }
    }
    (loss / n, Tensor::from_vec(grad, pred.shape()))
}

/// Decodes a `[B, HEAD_CHANNELS, G, G]` prediction into per-frame
/// detections with objectness ≥ `conf_threshold` (before NMS).
pub fn decode(pred: &Tensor, size: usize, conf_threshold: f32) -> Vec<Vec<Detection>> {
    assert_eq!(pred.ndim(), 4, "expected [B, C, G, G]");
    let (b, c, gh, gw) = (pred.shape()[0], pred.shape()[1], pred.shape()[2], pred.shape()[3]);
    assert_eq!(c, HEAD_CHANNELS, "channel count mismatch");
    let plane = gh * gw;
    let cell = size as f32 / gw as f32;
    let pd = pred.data();
    let mut out = Vec::with_capacity(b);
    for bi in 0..b {
        let base = bi * c * plane;
        let mut dets = Vec::new();
        for gy in 0..gh {
            for gx in 0..gw {
                let p = gy * gw + gx;
                let obj = sigmoid(pd[base + p]);
                if obj < conf_threshold {
                    continue;
                }
                let cx = (gx as f32 + sigmoid(pd[base + plane + p])) * cell;
                let cy = (gy as f32 + sigmoid(pd[base + 2 * plane + p])) * cell;
                let bw = sigmoid(pd[base + 3 * plane + p]) * size as f32;
                let bh = sigmoid(pd[base + 4 * plane + p]) * size as f32;
                // Class with the highest logit.
                let (mut best_c, mut best_v) = (0usize, f32::NEG_INFINITY);
                for ch in 0..NUM_CLASSES {
                    let v = pd[base + (5 + ch) * plane + p];
                    if v > best_v {
                        best_v = v;
                        best_c = ch;
                    }
                }
                let class_conf = sigmoid(best_v);
                dets.push(Detection {
                    bbox: GtBox {
                        class: ObjectClass::from_index(best_c),
                        x: cx - bw / 2.0,
                        y: cy - bh / 2.0,
                        w: bw.max(1e-3),
                        h: bh.max(1e-3),
                    },
                    score: obj * class_conf,
                });
            }
        }
        out.push(dets);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_box() -> GtBox {
        GtBox { class: ObjectClass::Car, x: 10.0, y: 18.0, w: 8.0, h: 6.0 }
    }

    #[test]
    fn targets_mark_center_cell() {
        let b = one_box(); // center (14, 21); grid 6, size 48 → cell 8 → (gx=1, gy=2)
        let t = build_targets(&[&[b]], 6, 48);
        assert_eq!(t.shape(), &[1, HEAD_CHANNELS, 6, 6]);
        assert_eq!(t.get(&[0, 0, 2, 1]), 1.0);
        assert_eq!(t.get(&[0, 0, 0, 0]), 0.0);
        // cx offset = 14/8 - 1 = 0.75
        assert!((t.get(&[0, 1, 2, 1]) - 0.75).abs() < 1e-5);
        // class one-hot
        assert_eq!(t.get(&[0, 5, 2, 1]), 1.0);
        assert_eq!(t.get(&[0, 6, 2, 1]), 0.0);
    }

    #[test]
    fn empty_frame_targets_are_zero() {
        let t = build_targets(&[&[]], 6, 48);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn loss_is_zero_for_perfect_logits() {
        let b = one_box();
        let target = build_targets(&[&[b]], 6, 48);
        // Build "perfect" logits: large where target=1, very negative
        // elsewhere; box channels need logit(sigmoid^-1(target)).
        let mut pred = Tensor::zeros(target.shape());
        let plane = 36;
        for p in 0..plane {
            for ch in 0..HEAD_CHANNELS {
                let idx = ch * plane + p;
                let t = target.data()[idx];
                let v = if (1..=4).contains(&ch) {
                    // inverse sigmoid, clamped
                    let tc = t.clamp(1e-4, 1.0 - 1e-4);
                    (tc / (1.0 - tc)).ln()
                } else if t > 0.5 {
                    30.0
                } else {
                    -30.0
                };
                pred.data_mut()[idx] = v;
            }
        }
        let (loss, grad) = detector_loss(&pred, &target, &LossWeights::default());
        // Box channels of non-object cells don't contribute; everything
        // else is saturated-correct.
        assert!(loss < 0.01, "perfect prediction loss {loss}");
        assert!(grad.data().iter().all(|g| g.abs() < 1e-3));
    }

    #[test]
    fn loss_gradient_matches_finite_difference() {
        let b = one_box();
        let target = build_targets(&[&[b]], 6, 48);
        let mut pred = Tensor::zeros(target.shape());
        for (i, v) in pred.data_mut().iter_mut().enumerate() {
            *v = ((i * 13 % 17) as f32 - 8.0) * 0.1;
        }
        let w = LossWeights::default();
        let (_, grad) = detector_loss(&pred, &target, &w);
        let eps = 1e-2;
        for &idx in &[0usize, 36, 72, 180, 200] {
            let orig = pred.data()[idx];
            pred.data_mut()[idx] = orig + eps;
            let (lp, _) = detector_loss(&pred, &target, &w);
            pred.data_mut()[idx] = orig - eps;
            let (lm, _) = detector_loss(&pred, &target, &w);
            pred.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "grad[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn decode_roundtrips_targets() {
        // Encoding a box and decoding perfect logits should recover it.
        let b = one_box();
        let target = build_targets(&[&[b]], 6, 48);
        let mut pred = Tensor::zeros(target.shape());
        let plane = 36;
        for p in 0..plane {
            for ch in 0..HEAD_CHANNELS {
                let idx = ch * plane + p;
                let t = target.data()[idx];
                let v = if (1..=4).contains(&ch) {
                    let tc = t.clamp(1e-4, 1.0 - 1e-4);
                    (tc / (1.0 - tc)).ln()
                } else if t > 0.5 {
                    20.0
                } else {
                    -20.0
                };
                pred.data_mut()[idx] = v;
            }
        }
        let dets = decode(&pred, 48, 0.5);
        assert_eq!(dets[0].len(), 1);
        let d = &dets[0][0];
        assert_eq!(d.bbox.class, ObjectClass::Car);
        assert!(d.bbox.iou(&b) > 0.8, "decoded box {:?} vs gt {:?}", d.bbox, b);
        assert!(d.score > 0.9);
    }

    #[test]
    fn decode_respects_threshold() {
        let pred = Tensor::full(&[1, HEAD_CHANNELS, 6, 6], -10.0);
        let dets = decode(&pred, 48, 0.3);
        assert!(dets[0].is_empty());
    }
}

//! # odin-detect
//!
//! The object-detection substrate of ODIN (§5.2 of the paper): a
//! YOLO-style single-shot grid detector with a heavyweight backbone
//! (**YoloSim**, the static baseline) and a pruned backbone used both for
//! per-cluster **YoloSpecialized** models (trained from scratch on oracle
//! labels) and **YoloLite** models (distilled from a teacher's outputs).
//!
//! Also provides NMS, VOC-style mAP evaluation, and throughput/memory
//! profiling — the measurements behind Figure 8 and Tables 3–5 and 7.

#![warn(missing_docs)]

pub mod head;
pub mod map;
pub mod model;
pub mod nms;
pub mod profile;
pub mod qmodel;

pub use head::{build_targets, decode, detector_loss, Detection, LossWeights, HEAD_CHANNELS};
pub use map::{mean_average_precision, MAP_IOU};
pub use model::{Detector, DetectorArch, DEFAULT_CONF, DEFAULT_NMS_IOU};
pub use nms::nms;
pub use profile::{profile, profile_quantized, Profile};
pub use qmodel::QDetector;

//! Int8 quantized serving of the Small (YoloSpecialized / YoloLite)
//! detector.
//!
//! [`QDetector::quantize`] snapshots a trained f32 [`Detector`] into
//! per-channel symmetric int8 weights (see [`odin_tensor::qtensor`] for
//! the scheme) — done once at model-install time. Serving then runs a
//! direct NHWC int8 convolution stack: no im2col gather, ~4× smaller
//! weight traffic, 16-lane integer dot products. Outputs are
//! *approximately* equal to the f32 detector's (quantization noise),
//! which is why installs gate the swap on an mAP-delta check.

use odin_data::{Frame, Image};
use odin_tensor::qtensor::{max_abs, quantize_activations, quantize_into, QConv2d};
use odin_tensor::Tensor;

use crate::head::{decode, Detection, HEAD_CHANNELS};
use crate::map::mean_average_precision;
use crate::model::{Detector, DetectorArch, LEAKY_SLOPE, SMALL_CONVS};
use crate::nms::nms;

/// An int8-quantized Small detector, produced from a trained f32
/// [`Detector`] by [`QDetector::quantize`].
pub struct QDetector {
    convs: Vec<QConv2d>,
    size: usize,
    conf_threshold: f32,
    params: usize,
}

impl QDetector {
    /// Quantizes a trained detector for int8 serving. Only the Small
    /// (pruned) architecture is supported — the heavy YoloSim keeps
    /// batch-norm layers and is never served per cluster — so `Heavy`
    /// returns `None`.
    ///
    /// Quantization is a pure function of the exported parameters:
    /// re-quantizing the same weights (e.g. after a checkpoint restore)
    /// reproduces the exact same int8 model.
    pub fn quantize(d: &Detector) -> Option<QDetector> {
        if d.arch() != DetectorArch::Small {
            return None;
        }
        let flat = d.export_params();
        let mut convs = Vec::with_capacity(SMALL_CONVS.len());
        let mut off = 0usize;
        for &(in_c, out_c, kernel, stride, pad, leaky) in SMALL_CONVS.iter() {
            let fan_in = in_c * kernel * kernel;
            let w = &flat[off..off + out_c * fan_in];
            off += out_c * fan_in;
            let b = &flat[off..off + out_c];
            off += out_c;
            let act = if leaky { Some(LEAKY_SLOPE) } else { None };
            convs.push(QConv2d::new(w, b, in_c, out_c, kernel, stride, pad, act));
        }
        assert_eq!(off, flat.len(), "Small layout does not cover the exported parameters");
        Some(QDetector {
            convs,
            size: d.input_size(),
            conf_threshold: d.conf_threshold,
            params: d.num_params(),
        })
    }

    /// Frame side length expected by the detector.
    pub fn input_size(&self) -> usize {
        self.size
    }

    /// Logical parameter count (same network as the f32 original).
    pub fn num_params(&self) -> usize {
        self.params
    }

    /// Bytes of the served representation: int8 weights plus f32
    /// scales and biases — the footprint Table 4 reports for an
    /// int8-served model.
    pub fn param_bytes(&self) -> usize {
        self.convs.iter().map(QConv2d::param_bytes).sum()
    }

    /// Runs the int8 conv stack on one image's `[3, s, s]` f32 data,
    /// appending the head output into `pred` in NCHW order.
    ///
    /// `scratch` holds the three reusable buffers (quantized input,
    /// f32 activations) so batch serving does not allocate per frame.
    fn forward_one(&self, data: &[f32], scratch: &mut QScratch, pred: &mut Vec<f32>) {
        let s = self.size;
        // NCHW → NHWC int8 with a per-frame dynamic scale: quantize the
        // whole NCHW buffer vectorized, then interleave bytes.
        let max = max_abs(data);
        let mut scale = if max > 0.0 { max / 127.0 } else { 1.0 };
        let plane = s * s;
        scratch.plane.clear();
        scratch.plane.resize(data.len(), 0);
        quantize_into(data, 1.0 / scale, &mut scratch.plane);
        scratch.q.clear();
        scratch.q.resize(data.len(), 0);
        for c in 0..3 {
            let chan = &scratch.plane[c * plane..(c + 1) * plane];
            for (p, &v) in chan.iter().enumerate() {
                scratch.q[p * 3 + c] = v;
            }
        }
        let (mut h, mut w) = (s, s);
        let last = self.convs.len() - 1;
        for (i, conv) in self.convs.iter().enumerate() {
            let (oh, ow) = conv.forward_nhwc(&scratch.q, scale, h, w, &mut scratch.f);
            (h, w) = (oh, ow);
            if i < last {
                scale = quantize_activations(&scratch.f, &mut scratch.q);
            }
        }
        // Head output: NHWC [g, g, HEAD_CHANNELS] → NCHW.
        let g = h;
        debug_assert_eq!(scratch.f.len(), g * g * HEAD_CHANNELS);
        let base = pred.len();
        pred.resize(base + g * g * HEAD_CHANNELS, 0.0);
        let dst = &mut pred[base..];
        for p in 0..g * g {
            for ch in 0..HEAD_CHANNELS {
                dst[ch * g * g + p] = scratch.f[p * HEAD_CHANNELS + ch];
            }
        }
    }

    /// Raw head output for a `[B, 3, s, s]` batch — the int8 analogue
    /// of [`Detector::forward`], returning `[B, HEAD_CHANNELS, g, g]`.
    pub fn forward(&self, batch: &Tensor) -> Tensor {
        assert_eq!(batch.ndim(), 4, "QDetector expects [B, 3, s, s]");
        let b = batch.shape()[0];
        let s = self.size;
        assert_eq!(batch.shape()[2], s, "input size mismatch");
        let g = s / 8; // three stride-2 convs
        let mut pred = Vec::with_capacity(b * HEAD_CHANNELS * g * g);
        let mut scratch = QScratch::default();
        let img_len = 3 * s * s;
        let data = batch.data();
        for bi in 0..b {
            self.forward_one(&data[bi * img_len..(bi + 1) * img_len], &mut scratch, &mut pred);
        }
        Tensor::from_vec(pred, &[b, HEAD_CHANNELS, g, g])
    }

    /// Runs detection (decode + NMS) on a batch of frames — the int8
    /// analogue of [`Detector::detect_batch`].
    pub fn detect_batch(&self, images: &[&Image]) -> Vec<Vec<Detection>> {
        let s = self.size;
        let mut pred = Vec::new();
        let mut scratch = QScratch::default();
        let mut resized_buf; // keeps a resized image alive across the loop body
        for im in images {
            let data = if im.height() == s && im.width() == s {
                im.data()
            } else {
                resized_buf = im.resize_nearest(s, s);
                resized_buf.data()
            };
            self.forward_one(data, &mut scratch, &mut pred);
        }
        let g = s / 8;
        let pred = Tensor::from_vec(pred, &[images.len(), HEAD_CHANNELS, g, g]);
        decode(&pred, s, self.conf_threshold)
            .into_iter()
            .map(|d| nms(d, crate::model::DEFAULT_NMS_IOU))
            .collect()
    }

    /// Runs detection on one frame.
    pub fn detect(&self, image: &Image) -> Vec<Detection> {
        self.detect_batch(&[image]).pop().expect("one frame in, one out")
    }

    /// Evaluates mAP against ground truth — same protocol as
    /// [`Detector::evaluate_map`], for the install-time delta gate.
    pub fn evaluate_map(&self, frames: &[Frame]) -> f32 {
        if frames.is_empty() {
            return 0.0;
        }
        let mut all_dets = Vec::with_capacity(frames.len());
        for chunk in frames.chunks(16) {
            let images: Vec<&Image> = chunk.iter().map(|f| &f.image).collect();
            all_dets.extend(self.detect_batch(&images));
        }
        let gts: Vec<&[odin_data::GtBox]> = frames.iter().map(|f| f.boxes.as_slice()).collect();
        mean_average_precision(&all_dets, &gts, crate::map::MAP_IOU)
    }
}

/// Reusable int8/f32 activation buffers for one serving thread.
#[derive(Default)]
struct QScratch {
    q: Vec<i8>,
    f: Vec<f32>,
    /// NCHW-order quantized input, before NHWC interleave.
    plane: Vec<i8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{Condition, SceneGen, Subset, TimeOfDay, Weather};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn heavy_is_not_quantizable() {
        let mut rng = StdRng::seed_from_u64(0);
        let heavy = Detector::heavy(48, &mut rng);
        assert!(QDetector::quantize(&heavy).is_none());
    }

    #[test]
    fn quantized_bytes_are_much_smaller() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Detector::small(48, &mut rng);
        let q = QDetector::quantize(&d).expect("small quantizes");
        assert_eq!(q.num_params(), d.num_params());
        assert!(
            q.param_bytes() * 3 < d.param_bytes(),
            "int8 {} not ~4x below f32 {}",
            q.param_bytes(),
            d.param_bytes()
        );
    }

    #[test]
    fn quantized_forward_tracks_f32_head() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 60);
        let mut d = Detector::small(48, &mut rng);
        d.train_oracle(&mut rng, &frames, 200, 8);
        let q = QDetector::quantize(&d).expect("small quantizes");
        let img = gen.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day)).image;
        let x = Image::batch(&[img]);
        let pf = d.forward(&x);
        let pq = q.forward(&x);
        assert_eq!(pf.shape(), pq.shape());
        let max_abs = pf.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let max_err =
            pf.data().iter().zip(pq.data()).fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()));
        assert!(
            max_err < 0.15 * max_abs.max(1.0),
            "quantized head diverges: max_err {max_err}, f32 max {max_abs}"
        );
    }

    #[test]
    fn quantized_map_close_to_f32() {
        // Trained on real scenes, evaluated on held-out ones.
        let mut rng = StdRng::seed_from_u64(2);
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 120);
        let test = gen.subset_frames(&mut rng, Subset::Day, 30);
        let mut d = Detector::small(48, &mut rng);
        d.train_oracle(&mut rng, &frames, 700, 8);
        let q = QDetector::quantize(&d).expect("small quantizes");
        let mf = d.evaluate_map(&test);
        let mq = q.evaluate_map(&test);
        assert!(mq > mf - 0.05, "int8 mAP {mq} dropped more than 0.05 below f32 mAP {mf}");
    }

    #[test]
    fn quantization_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Detector::small(48, &mut rng);
        let a = QDetector::quantize(&d).expect("small quantizes");
        let b = QDetector::quantize(&d).expect("small quantizes");
        let x = Tensor::ones(&[1, 3, 48, 48]);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
    }

    #[test]
    fn detect_resizes_foreign_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Detector::small(48, &mut rng);
        let q = QDetector::quantize(&d).expect("small quantizes");
        let img = Image::new(3, 64, 64);
        let _ = q.detect(&img); // must not panic
    }
}

//! Per-class non-maximum suppression.

use crate::head::Detection;

/// Greedy per-class NMS: detections are processed in descending score
/// order; any detection overlapping an already-kept same-class detection
/// with IoU ≥ `iou_threshold` is suppressed.
pub fn nms(mut dets: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    assert!((0.0..=1.0).contains(&iou_threshold), "IoU threshold must be in [0,1]");
    dets.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    let mut kept: Vec<Detection> = Vec::with_capacity(dets.len());
    for d in dets {
        let suppressed = kept
            .iter()
            .any(|k| k.bbox.class == d.bbox.class && k.bbox.iou(&d.bbox) >= iou_threshold);
        if !suppressed {
            kept.push(d);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{GtBox, ObjectClass};

    fn det(class: ObjectClass, x: f32, score: f32) -> Detection {
        Detection { bbox: GtBox { class, x, y: 0.0, w: 10.0, h: 10.0 }, score }
    }

    #[test]
    fn overlapping_same_class_suppressed() {
        let dets = vec![det(ObjectClass::Car, 0.0, 0.9), det(ObjectClass::Car, 1.0, 0.5)];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn different_classes_not_suppressed() {
        let dets = vec![det(ObjectClass::Car, 0.0, 0.9), det(ObjectClass::Truck, 1.0, 0.5)];
        assert_eq!(nms(dets, 0.5).len(), 2);
    }

    #[test]
    fn disjoint_boxes_kept() {
        let dets = vec![det(ObjectClass::Car, 0.0, 0.9), det(ObjectClass::Car, 50.0, 0.5)];
        assert_eq!(nms(dets, 0.5).len(), 2);
    }

    #[test]
    fn nms_is_idempotent() {
        let dets = vec![
            det(ObjectClass::Car, 0.0, 0.9),
            det(ObjectClass::Car, 2.0, 0.8),
            det(ObjectClass::Car, 40.0, 0.7),
        ];
        let once = nms(dets, 0.5);
        let twice = nms(once.clone(), 0.5);
        assert_eq!(once, twice);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(nms(Vec::new(), 0.5).is_empty());
    }
}

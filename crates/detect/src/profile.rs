//! Throughput and memory measurement (Table 4).

use std::time::Instant;

use odin_data::Image;

use crate::model::Detector;
use crate::qmodel::QDetector;

/// Measured performance profile of a detector.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Inference throughput in frames per second.
    pub fps: f32,
    /// Model size in bytes (f32 parameters).
    pub bytes: usize,
    /// Trainable parameter count.
    pub params: usize,
}

/// Measures a detector's inference throughput over `n_frames` frames
/// (processed in batches of `batch`), plus its memory footprint.
///
/// # Panics
///
/// Panics if `n_frames` or `batch` is zero.
pub fn profile(detector: &mut Detector, n_frames: usize, batch: usize) -> Profile {
    assert!(n_frames > 0 && batch > 0, "need at least one frame and batch");
    let s = detector.input_size();
    let frames: Vec<Image> = (0..batch).map(|_| Image::new(3, s, s)).collect();
    let refs: Vec<&Image> = frames.iter().collect();
    // Warm-up pass (first-touch allocations).
    let _ = detector.detect_batch(&refs);
    let start = Instant::now();
    let mut done = 0usize;
    while done < n_frames {
        let _ = detector.detect_batch(&refs);
        done += batch;
    }
    let secs = start.elapsed().as_secs_f32().max(1e-9);
    Profile {
        fps: done as f32 / secs,
        bytes: detector.param_bytes(),
        params: detector.num_params(),
    }
}

/// [`profile`] for an int8-quantized detector: same measurement
/// protocol, with `bytes` reporting the actually-served int8
/// representation.
pub fn profile_quantized(detector: &QDetector, n_frames: usize, batch: usize) -> Profile {
    assert!(n_frames > 0 && batch > 0, "need at least one frame and batch");
    let s = detector.input_size();
    let frames: Vec<Image> = (0..batch).map(|_| Image::new(3, s, s)).collect();
    let refs: Vec<&Image> = frames.iter().collect();
    let _ = detector.detect_batch(&refs);
    let start = Instant::now();
    let mut done = 0usize;
    while done < n_frames {
        let _ = detector.detect_batch(&refs);
        done += batch;
    }
    let secs = start.elapsed().as_secs_f32().max(1e-9);
    Profile {
        fps: done as f32 / secs,
        bytes: detector.param_bytes(),
        params: detector.num_params(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profile_reports_positive_numbers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Detector::small(48, &mut rng);
        let p = profile(&mut d, 8, 4);
        assert!(p.fps > 0.0);
        assert_eq!(p.bytes, d.param_bytes());
        assert_eq!(p.params, d.num_params());
    }

    #[test]
    fn small_is_faster_than_heavy() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut small = Detector::small(48, &mut rng);
        let mut heavy = Detector::heavy(48, &mut rng);
        let ps = profile(&mut small, 16, 8);
        let ph = profile(&mut heavy, 16, 8);
        assert!(ps.fps > ph.fps, "small ({} fps) should beat heavy ({} fps)", ps.fps, ph.fps);
        assert!(ps.bytes < ph.bytes);
    }
}

//! Mean average precision (mAP) — the detection-accuracy metric of the
//! paper's evaluation (Figure 8, Tables 3, 5, 7).
//!
//! VOC-style: per class, detections are matched greedily (by descending
//! score) to unmatched ground-truth boxes at IoU ≥ 0.5; AP is the area
//! under the interpolated precision-recall curve; mAP averages over the
//! classes that appear in the ground truth.

use odin_data::{GtBox, ObjectClass};

use crate::head::Detection;

/// Default IoU threshold for a true positive.
///
/// VOC uses 0.5 at megapixel resolution; BDD-sim frames are 48 px, where
/// one-pixel box jitter on a typical 10×6 object already costs ~0.2 IoU,
/// so the threshold is scaled to 0.4 to keep the metric's discrimination
/// comparable (see DESIGN.md, substitutions).
pub const MAP_IOU: f32 = 0.4;

/// Computes mAP over a set of frames.
///
/// `detections[i]` are the (post-NMS) detections for frame `i`, and
/// `ground_truth[i]` its labels. Classes absent from the ground truth are
/// skipped. Returns 0 when there is no ground truth at all.
pub fn mean_average_precision(
    detections: &[Vec<Detection>],
    ground_truth: &[&[GtBox]],
    iou_threshold: f32,
) -> f32 {
    assert_eq!(detections.len(), ground_truth.len(), "frame count mismatch");
    let mut aps = Vec::new();
    for class in ObjectClass::ALL {
        let total_gt: usize =
            ground_truth.iter().map(|g| g.iter().filter(|b| b.class == class).count()).sum();
        if total_gt == 0 {
            continue;
        }
        aps.push(average_precision(detections, ground_truth, class, total_gt, iou_threshold));
    }
    if aps.is_empty() {
        0.0
    } else {
        aps.iter().sum::<f32>() / aps.len() as f32
    }
}

fn average_precision(
    detections: &[Vec<Detection>],
    ground_truth: &[&[GtBox]],
    class: ObjectClass,
    total_gt: usize,
    iou_threshold: f32,
) -> f32 {
    // Gather (frame, detection) for this class, sorted by score.
    let mut dets: Vec<(usize, &Detection)> = Vec::new();
    for (fi, frame_dets) in detections.iter().enumerate() {
        for d in frame_dets.iter().filter(|d| d.bbox.class == class) {
            dets.push((fi, d));
        }
    }
    dets.sort_by(|a, b| b.1.score.partial_cmp(&a.1.score).expect("finite scores"));

    let mut matched: Vec<Vec<bool>> = ground_truth.iter().map(|g| vec![false; g.len()]).collect();
    let mut tp = Vec::with_capacity(dets.len());
    for (fi, d) in dets {
        let gts = ground_truth[fi];
        let mut best = (usize::MAX, iou_threshold);
        for (gi, gt) in gts.iter().enumerate() {
            if gt.class != class || matched[fi][gi] {
                continue;
            }
            let iou = d.bbox.iou(gt);
            if iou >= best.1 {
                best = (gi, iou);
            }
        }
        if best.0 != usize::MAX {
            matched[fi][best.0] = true;
            tp.push(true);
        } else {
            tp.push(false);
        }
    }

    // Precision/recall curve and interpolated AP.
    let mut cum_tp = 0usize;
    let mut precisions = Vec::with_capacity(tp.len());
    let mut recalls = Vec::with_capacity(tp.len());
    for (i, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            cum_tp += 1;
        }
        precisions.push(cum_tp as f32 / (i + 1) as f32);
        recalls.push(cum_tp as f32 / total_gt as f32);
    }
    // Monotone precision envelope.
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        if precisions[i] < precisions[i + 1] {
            precisions[i] = precisions[i + 1];
        }
    }
    // Riemann sum over recall increments.
    let mut ap = 0.0f32;
    let mut prev_recall = 0.0f32;
    for (p, r) in precisions.iter().zip(recalls.iter()) {
        ap += p * (r - prev_recall);
        prev_recall = *r;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(class: ObjectClass, x: f32) -> GtBox {
        GtBox { class, x, y: 0.0, w: 10.0, h: 10.0 }
    }

    fn det(class: ObjectClass, x: f32, score: f32) -> Detection {
        Detection { bbox: gt(class, x), score }
    }

    #[test]
    fn perfect_detections_give_map_one() {
        let gts = [vec![gt(ObjectClass::Car, 0.0), gt(ObjectClass::Truck, 30.0)]];
        let dets = vec![vec![det(ObjectClass::Car, 0.5, 0.9), det(ObjectClass::Truck, 30.5, 0.8)]];
        let refs: Vec<&[GtBox]> = gts.iter().map(|v| v.as_slice()).collect();
        let map = mean_average_precision(&dets, &refs, MAP_IOU);
        assert!((map - 1.0).abs() < 1e-5, "mAP {map}");
    }

    #[test]
    fn no_detections_give_map_zero() {
        let gts = [vec![gt(ObjectClass::Car, 0.0)]];
        let dets = vec![vec![]];
        let refs: Vec<&[GtBox]> = gts.iter().map(|v| v.as_slice()).collect();
        assert_eq!(mean_average_precision(&dets, &refs, MAP_IOU), 0.0);
    }

    #[test]
    fn misplaced_detection_is_false_positive() {
        let gts = [vec![gt(ObjectClass::Car, 0.0)]];
        let dets = vec![vec![det(ObjectClass::Car, 40.0, 0.9)]];
        let refs: Vec<&[GtBox]> = gts.iter().map(|v| v.as_slice()).collect();
        assert_eq!(mean_average_precision(&dets, &refs, MAP_IOU), 0.0);
    }

    #[test]
    fn duplicate_detections_hurt_precision() {
        let gts = [vec![gt(ObjectClass::Car, 0.0)]];
        let one = vec![vec![det(ObjectClass::Car, 0.0, 0.9)]];
        let dup = vec![vec![
            det(ObjectClass::Car, 0.0, 0.9),
            det(ObjectClass::Car, 1.0, 0.8),
            det(ObjectClass::Car, 2.0, 0.7),
        ]];
        let refs: Vec<&[GtBox]> = gts.iter().map(|v| v.as_slice()).collect();
        let map_one = mean_average_precision(&one, &refs, MAP_IOU);
        let map_dup = mean_average_precision(&dup, &refs, MAP_IOU);
        // Duplicates rank below the true positive, so interpolated AP is
        // unchanged at worst; to punish them we check precision at full
        // recall instead.
        assert!(map_dup <= map_one + 1e-6);
    }

    #[test]
    fn wrong_class_does_not_match() {
        let gts = [vec![gt(ObjectClass::Car, 0.0)]];
        let dets = vec![vec![det(ObjectClass::Truck, 0.0, 0.9)]];
        let refs: Vec<&[GtBox]> = gts.iter().map(|v| v.as_slice()).collect();
        assert_eq!(mean_average_precision(&dets, &refs, MAP_IOU), 0.0);
    }

    #[test]
    fn partial_recall_gives_partial_map() {
        let gts = [vec![gt(ObjectClass::Car, 0.0), gt(ObjectClass::Car, 40.0)]];
        let dets = vec![vec![det(ObjectClass::Car, 0.0, 0.9)]];
        let refs: Vec<&[GtBox]> = gts.iter().map(|v| v.as_slice()).collect();
        let map = mean_average_precision(&dets, &refs, MAP_IOU);
        assert!((map - 0.5).abs() < 1e-5, "mAP {map}");
    }

    #[test]
    fn absent_classes_are_skipped_not_zeroed() {
        // Only cars in GT; truck detections are FPs for the car AP only
        // if class-matched — absent truck class must not drag mAP down.
        let gts = [vec![gt(ObjectClass::Car, 0.0)]];
        let dets = vec![vec![det(ObjectClass::Car, 0.0, 0.9)]];
        let refs: Vec<&[GtBox]> = gts.iter().map(|v| v.as_slice()).collect();
        assert!((mean_average_precision(&dets, &refs, MAP_IOU) - 1.0).abs() < 1e-5);
    }
}

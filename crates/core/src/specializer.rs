//! SPECIALIZER — per-cluster model generation (§5.1–§5.2, Algorithm 2).
//!
//! When DETECTOR promotes a new cluster, SPECIALIZER builds models for
//! it:
//!
//! 1. immediately, a **YoloLite** model distilled from the heavyweight
//!    teacher's outputs on the cluster's frames (no oracle labels
//!    needed), and
//! 2. once oracle labels are available, a **YoloSpecialized** model
//!    trained from scratch on those labels, which replaces the lite
//!    model.

use odin_data::Frame;
use odin_detect::{Detector, DetectorArch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of SPECIALIZER's training runs.
#[derive(Debug, Clone, Copy)]
pub struct SpecializerConfig {
    /// Architecture of the generated models (Small for the paper's
    /// YoloSpecialized/YoloLite; Heavy reproduces the ODIN-HEAVY variant
    /// of Table 6).
    pub arch: DetectorArch,
    /// Frame side length.
    pub frame_size: usize,
    /// Oracle-training iterations for specialized models.
    pub train_iters: usize,
    /// Distillation iterations for lite models.
    pub distill_iters: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for SpecializerConfig {
    fn default() -> Self {
        SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 700,
            distill_iters: 500,
            batch_size: 8,
        }
    }
}

/// Per-cluster model builder.
#[derive(Debug, Clone, Copy)]
pub struct Specializer {
    cfg: SpecializerConfig,
}

impl Specializer {
    /// Creates a specializer.
    pub fn new(cfg: SpecializerConfig) -> Self {
        Specializer { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SpecializerConfig {
        &self.cfg
    }

    fn fresh(&self, rng: &mut StdRng) -> Detector {
        match self.cfg.arch {
            DetectorArch::Heavy => Detector::heavy(self.cfg.frame_size, rng),
            DetectorArch::Small => Detector::small(self.cfg.frame_size, rng),
        }
    }

    /// Trains a YoloSpecialized model from scratch on the cluster's
    /// frames with oracle labels.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn build_specialized(&self, seed: u64, frames: &[Frame]) -> Detector {
        assert!(!frames.is_empty(), "cannot specialize on zero frames");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = self.fresh(&mut rng);
        model.train_oracle(&mut rng, frames, self.cfg.train_iters, self.cfg.batch_size);
        model
    }

    /// Trains a YoloLite model by distilling the teacher's outputs on the
    /// cluster's frames — deployable before any oracle label exists.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn build_lite(&self, seed: u64, teacher: &Detector, frames: &[Frame]) -> Detector {
        assert!(!frames.is_empty(), "cannot distill on zero frames");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = self.fresh(&mut rng);
        model.train_distill(&mut rng, teacher, frames, self.cfg.distill_iters, self.cfg.batch_size);
        model
    }

    /// Balanced subsampling: caps each cluster's training set at the size
    /// of the smallest, as §6.3 does to control for class imbalance when
    /// comparing cross-subset accuracy (Table 3).
    pub fn balanced_subsets<'a>(frame_sets: &[&'a [Frame]], seed: u64) -> Vec<Vec<&'a Frame>> {
        let min = frame_sets.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(seed);
        frame_sets
            .iter()
            .map(|set| {
                let mut idx: Vec<usize> = (0..set.len()).collect();
                for i in (1..idx.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    idx.swap(i, j);
                }
                idx.truncate(min);
                idx.into_iter().map(|i| &set[i]).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{SceneGen, Subset};

    fn quick_cfg() -> SpecializerConfig {
        SpecializerConfig { train_iters: 40, distill_iters: 30, ..SpecializerConfig::default() }
    }

    #[test]
    fn specialized_model_is_deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(0);
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 10);
        let sp = Specializer::new(quick_cfg());
        let a = sp.build_specialized(7, &frames);
        let b = sp.build_specialized(7, &frames);
        assert_eq!(a.export_params(), b.export_params());
    }

    #[test]
    fn lite_model_uses_small_arch_by_default() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 10);
        let sp = Specializer::new(quick_cfg());
        let teacher = Detector::small(48, &mut rng);
        let lite = sp.build_lite(3, &teacher, &frames);
        assert_eq!(lite.arch(), DetectorArch::Small);
    }

    #[test]
    fn heavy_arch_builds_heavy_models() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 8);
        let cfg = SpecializerConfig { arch: DetectorArch::Heavy, train_iters: 5, ..quick_cfg() };
        let sp = Specializer::new(cfg);
        let m = sp.build_specialized(0, &frames);
        assert_eq!(m.arch(), DetectorArch::Heavy);
    }

    #[test]
    fn balanced_subsets_equalize_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = SceneGen::new(48);
        let a = gen.subset_frames(&mut rng, Subset::Day, 12);
        let b = gen.subset_frames(&mut rng, Subset::Night, 5);
        let balanced = Specializer::balanced_subsets(&[&a, &b], 0);
        assert_eq!(balanced[0].len(), 5);
        assert_eq!(balanced[1].len(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot specialize on zero frames")]
    fn empty_frames_panic() {
        let sp = Specializer::new(quick_cfg());
        let _ = sp.build_specialized(0, &[]);
    }
}

//! SPECIALIZER scheduling — inline or on background workers.
//!
//! The paper's SPECIALIZER "generates a new model" whenever DETECTOR
//! promotes a cluster (Algorithm 2). Training a detector takes orders of
//! magnitude longer than serving a frame, so doing it on the serving
//! thread stalls the stream for the whole training run. This module
//! decouples the stages:
//!
//! * [`TrainingMode::Inline`] trains synchronously inside
//!   `Odin::process`. Fully deterministic — every paper-table harness
//!   uses it, and it is the default.
//! * [`TrainingMode::Background`] hands [`TrainJob`]s to a
//!   [`TrainingPool`] of worker threads over channels. The serving
//!   thread never trains; completed models are drained and installed at
//!   frame boundaries, and frames for a still-training cluster are
//!   served by the teacher or by nearby clusters' models meanwhile.
//!
//! Because each job carries its own seed (derived from the submission
//! sequence number), the models a background pool produces are
//! bit-identical to the ones inline training would have built — only
//! *when* they become servable differs.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use odin_data::Frame;
use odin_detect::Detector;
use odin_telemetry::SpanCtx;

use crate::registry::ModelKind;
use crate::specializer::Specializer;
use crate::telemetry::Telemetry;

/// How SPECIALIZER schedules training work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainingMode {
    /// Train on the calling thread inside `process`. Deterministic
    /// frame-by-frame; the default, and what the paper-table harnesses
    /// use.
    #[default]
    Inline,
    /// Train on `workers` background threads (at least one). `process`
    /// never trains on the calling thread; call
    /// `Odin::finish_training` to wait for stragglers.
    Background {
        /// Worker-thread count; clamped to at least 1.
        workers: usize,
    },
}

/// One unit of SPECIALIZER work: build a model of `kind` for
/// `cluster_id` from `frames`, seeding all randomness from `seed`.
#[derive(Debug)]
pub struct TrainJob {
    /// The submitting stream's index when the pool is shared by a
    /// multi-stream server (`0` for a single-stream pipeline). The
    /// [`TrainRouter`] uses it to hand the finished model back to the
    /// shard that asked for it.
    pub stream: usize,
    /// The promoted cluster the model will serve.
    pub cluster_id: usize,
    /// RNG seed — carried in the job so Inline and Background modes
    /// build identical models.
    pub seed: u64,
    /// Specialized (oracle labels) or Lite (teacher distillation).
    pub kind: ModelKind,
    /// The cluster's accumulated training frames.
    pub frames: Vec<Frame>,
    /// Trace context the job was submitted under: the worker-side
    /// `train` span parents onto the submitter's `train_job_queued`
    /// marker, so one trace links drift detection to the trained model
    /// across the thread hop.
    pub ctx: SpanCtx,
}

/// A model built by a worker, ready for registry installation.
pub struct TrainedModel {
    /// The stream whose shard submitted the job (copied from
    /// [`TrainJob::stream`]).
    pub stream: usize,
    /// The cluster the model was built for.
    pub cluster_id: usize,
    /// The trained detector.
    pub detector: Detector,
    /// Specialized or Lite.
    pub kind: ModelKind,
    /// Wall-clock the training run took, in milliseconds.
    pub wall_ms: f64,
    /// Trace context for the install: same trace as the submitting
    /// recovery arc, parented on the worker's `train` span.
    pub ctx: SpanCtx,
}

/// What came back from a worker for one submitted job: a trained model,
/// or notice that the job was discarded at dequeue because its cluster
/// was evicted first ([`TrainingPool::cancel`]). Cancellations still
/// flow through the results channel so the submitted/collected
/// accounting (and the drain barrier) stays exact.
pub(crate) enum TrainOutcome {
    /// The job trained to completion.
    Done(TrainedModel),
    /// The job was tombstoned before a worker picked it up; only the
    /// submitting stream is needed, to settle its outstanding count.
    Cancelled { stream: usize },
}

/// A pool of SPECIALIZER worker threads fed over channels.
///
/// Jobs flow worker-ward through an unbounded MPMC channel; finished
/// models flow back through a second one. Counters are monotone
/// (`submitted >= started >= finished`), so queue depth and in-flight
/// counts are snapshots computed from their differences.
pub struct TrainingPool {
    /// `None` only transiently during drop (taking it closes the
    /// channel so workers exit their recv loop).
    jobs: Option<Sender<TrainJob>>,
    results: Receiver<TrainOutcome>,
    workers: Vec<JoinHandle<()>>,
    submitted: Arc<AtomicUsize>,
    started: Arc<AtomicUsize>,
    finished: Arc<AtomicUsize>,
    /// Jobs tombstoned by [`TrainingPool::cancel`]: workers discard a
    /// dequeued job whose `(stream, cluster_id)` is in the set. Cluster
    /// ids are never reused, so a tombstone that arrives after its job
    /// already started is inert forever.
    cancelled: Arc<parking_lot::Mutex<BTreeSet<(usize, usize)>>>,
    /// Results the owner has pulled out of `results` (main-thread only).
    collected: usize,
}

impl TrainingPool {
    /// Spawns `workers` (at least 1) threads that build models with
    /// `specializer`, distilling from `teacher` for Lite jobs. Each
    /// worker continues the job's trace under `telemetry`: it opens a
    /// `train` span from [`TrainJob::ctx`], measures wall time against
    /// the telemetry clock, and threads a child context into the
    /// [`TrainedModel`] for the install marker back on the serving
    /// thread.
    pub fn new(
        workers: usize,
        specializer: Specializer,
        teacher: Arc<Detector>,
        telemetry: Telemetry,
    ) -> Self {
        let (job_tx, job_rx) = unbounded::<TrainJob>();
        let (res_tx, res_rx) = unbounded::<TrainOutcome>();
        let submitted = Arc::new(AtomicUsize::new(0));
        let started = Arc::new(AtomicUsize::new(0));
        let finished = Arc::new(AtomicUsize::new(0));
        let cancelled = Arc::new(parking_lot::Mutex::new(BTreeSet::new()));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = job_rx.clone();
                let tx = res_tx.clone();
                let teacher = Arc::clone(&teacher);
                let started = Arc::clone(&started);
                let finished = Arc::clone(&finished);
                let cancelled = Arc::clone(&cancelled);
                let telemetry = telemetry.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        started.fetch_add(1, Ordering::SeqCst);
                        if cancelled.lock().remove(&(job.stream, job.cluster_id)) {
                            // Evicted before training started: the
                            // cluster this model would serve is gone.
                            // Discard the job without burning a
                            // training run.
                            telemetry.train_cancelled.inc();
                            finished.fetch_add(1, Ordering::SeqCst);
                            if tx.send(TrainOutcome::Cancelled { stream: job.stream }).is_err() {
                                break;
                            }
                            continue;
                        }
                        let mut span = telemetry.span("train", job.ctx);
                        span.set_cluster(job.cluster_id);
                        let detector = match job.kind {
                            ModelKind::Specialized => {
                                specializer.build_specialized(job.seed, &job.frames)
                            }
                            ModelKind::Lite => {
                                specializer.build_lite(job.seed, &teacher, &job.frames)
                            }
                        };
                        let ctx = span.child_ctx();
                        let wall_ms = span.close();
                        let done = TrainedModel {
                            stream: job.stream,
                            cluster_id: job.cluster_id,
                            detector,
                            kind: job.kind,
                            wall_ms,
                            ctx,
                        };
                        finished.fetch_add(1, Ordering::SeqCst);
                        if tx.send(TrainOutcome::Done(done)).is_err() {
                            break; // pool dropped; nobody wants results
                        }
                    }
                })
            })
            .collect();
        TrainingPool {
            jobs: Some(job_tx),
            results: res_rx,
            workers: handles,
            submitted,
            started,
            finished,
            cancelled,
            collected: 0,
        }
    }

    /// Tombstones `(stream, cluster_id)`'s queued job: a worker that
    /// dequeues it discards it instead of training (counted in
    /// `odin_train_cancelled_total` by the discarding worker). Best
    /// effort — a job already running trains to completion and is
    /// dropped by the install-time orphan path instead. Cluster ids are
    /// never reused, so a tombstone that lands too late stays inert.
    pub fn cancel(&self, stream: usize, cluster_id: usize) {
        self.cancelled.lock().insert((stream, cluster_id));
    }

    /// Enqueues a job; returns immediately.
    pub fn submit(&self, job: TrainJob) {
        self.submitted.fetch_add(1, Ordering::SeqCst);
        self.jobs
            .as_ref()
            .expect("job channel open until drop")
            .send(job)
            .expect("training workers alive");
    }

    /// Jobs enqueued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.submitted.load(Ordering::SeqCst).saturating_sub(self.started.load(Ordering::SeqCst))
    }

    /// Jobs currently training on a worker.
    pub fn in_flight(&self) -> usize {
        self.started.load(Ordering::SeqCst).saturating_sub(self.finished.load(Ordering::SeqCst))
    }

    /// Jobs submitted whose results have not yet been collected.
    pub fn pending(&self) -> usize {
        self.submitted.load(Ordering::SeqCst).saturating_sub(self.collected)
    }

    /// Collects every finished model without blocking. Cancelled jobs
    /// are settled (counted as collected) but yield no model.
    pub fn drain(&mut self) -> Vec<TrainedModel> {
        self.drain_outcomes()
            .into_iter()
            .filter_map(|o| match o {
                TrainOutcome::Done(m) => Some(m),
                TrainOutcome::Cancelled { .. } => None,
            })
            .collect()
    }

    /// [`TrainingPool::drain`] keeping cancellation outcomes — the
    /// [`TrainRouter`] needs them to settle per-stream accounting.
    pub(crate) fn drain_outcomes(&mut self) -> Vec<TrainOutcome> {
        let mut out = Vec::new();
        while let Ok(o) = self.results.try_recv() {
            self.collected += 1;
            out.push(o);
        }
        out
    }

    /// Blocks until every submitted job has finished, returning all
    /// uncollected results. With more than one worker the order results
    /// arrive in is nondeterministic; callers install into a map keyed
    /// by cluster id, so final state does not depend on it.
    pub fn drain_barrier(&mut self) -> Vec<TrainedModel> {
        let mut out = Vec::new();
        while self.collected < self.submitted.load(Ordering::SeqCst) {
            match self.results.recv() {
                Ok(o) => {
                    self.collected += 1;
                    if let TrainOutcome::Done(m) = o {
                        out.push(m);
                    }
                }
                Err(_) => break, // a worker died; don't hang forever
            }
        }
        out
    }

    /// Blocks until one more job settles (trained or cancelled) and
    /// returns its outcome, or `None` when nothing is outstanding (or a
    /// worker died). The [`TrainRouter`] uses this to wait for one
    /// stream's jobs while banking other streams' results.
    pub(crate) fn recv_blocking(&mut self) -> Option<TrainOutcome> {
        if self.collected >= self.submitted.load(Ordering::SeqCst) {
            return None;
        }
        match self.results.recv() {
            Ok(o) => {
                self.collected += 1;
                Some(o)
            }
            Err(_) => None,
        }
    }
}

impl Drop for TrainingPool {
    /// Closes the job channel and joins the workers. A worker mid-run
    /// finishes its current job first, so dropping a busy pool can
    /// block for up to one training run.
    fn drop(&mut self) {
        self.jobs.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A multi-stream front over one shared [`TrainingPool`]: jobs from
/// every shard flow into the same worker threads, and finished models
/// are routed back to the shard (stream) that submitted them.
///
/// The router is the process-wide half of SPECIALIZER in the sharded
/// serving layer: one set of training workers serves N streams, so a
/// drift burst on one camera borrows the whole training capacity
/// instead of a per-stream slice. Per-stream result queues keep shards
/// isolated — a shard only ever sees its own models.
pub struct TrainRouter {
    inner: parking_lot::Mutex<RouterInner>,
}

struct RouterInner {
    pool: TrainingPool,
    /// Finished models banked for streams that have not drained yet.
    ready: std::collections::BTreeMap<usize, Vec<TrainedModel>>,
    /// Outstanding (submitted but not yet routed) jobs per stream.
    outstanding: std::collections::BTreeMap<usize, usize>,
}

impl TrainRouter {
    /// Builds a router over a fresh pool of `workers` threads. Worker
    /// spans record into `telemetry` (the server's registry when
    /// shared); each job's [`SpanCtx`] still carries the submitting
    /// shard's trace id, so traces stay grouped per stream.
    pub fn new(
        workers: usize,
        specializer: Specializer,
        teacher: Arc<Detector>,
        telemetry: Telemetry,
    ) -> Arc<Self> {
        Arc::new(TrainRouter {
            inner: parking_lot::Mutex::new(RouterInner {
                pool: TrainingPool::new(workers, specializer, teacher, telemetry),
                ready: std::collections::BTreeMap::new(),
                outstanding: std::collections::BTreeMap::new(),
            }),
        })
    }

    /// Enqueues a job on the shared pool ([`TrainJob::stream`] decides
    /// which shard gets the result back).
    pub fn submit(&self, job: TrainJob) {
        let mut inner = self.inner.lock();
        *inner.outstanding.entry(job.stream).or_insert(0) += 1;
        inner.pool.submit(job);
    }

    fn route(inner: &mut RouterInner, o: TrainOutcome, stream: usize, out: &mut Vec<TrainedModel>) {
        let from = match &o {
            TrainOutcome::Done(m) => m.stream,
            TrainOutcome::Cancelled { stream } => *stream,
        };
        if let Some(n) = inner.outstanding.get_mut(&from) {
            *n = n.saturating_sub(1);
        }
        let TrainOutcome::Done(m) = o else { return };
        if m.stream == stream {
            out.push(m);
        } else {
            inner.ready.entry(m.stream).or_default().push(m);
        }
    }

    /// Cancels `stream`'s queued-but-not-started training job for
    /// `cluster_id` (best effort — see [`TrainingPool::cancel`]).
    pub fn cancel(&self, stream: usize, cluster_id: usize) {
        self.inner.lock().pool.cancel(stream, cluster_id);
    }

    /// Collects `stream`'s finished models without blocking (banked
    /// ones first, then whatever the pool has completed).
    pub fn drain(&self, stream: usize) -> Vec<TrainedModel> {
        let mut inner = self.inner.lock();
        let mut out = inner.ready.remove(&stream).unwrap_or_default();
        for o in inner.pool.drain_outcomes() {
            Self::route(&mut inner, o, stream, &mut out);
        }
        out
    }

    /// Blocks until every job `stream` submitted has finished, then
    /// returns them. Other streams' models completed meanwhile are
    /// banked for their own shards. Holds the router lock while
    /// waiting, so concurrent drains of other streams stall until this
    /// stream's jobs land — callers only block here at quiesce points
    /// (`Odin::finish_training`), never on the per-frame path.
    pub fn drain_barrier(&self, stream: usize) -> Vec<TrainedModel> {
        let mut inner = self.inner.lock();
        let mut out = inner.ready.remove(&stream).unwrap_or_default();
        for o in inner.pool.drain_outcomes() {
            Self::route(&mut inner, o, stream, &mut out);
        }
        while inner.outstanding.get(&stream).copied().unwrap_or(0) > 0 {
            match inner.pool.recv_blocking() {
                Some(o) => Self::route(&mut inner, o, stream, &mut out),
                None => break, // a worker died; don't hang forever
            }
        }
        out
    }

    /// Jobs enqueued on the shared pool but not yet picked up (all
    /// streams).
    pub fn queue_depth(&self) -> usize {
        self.inner.lock().pool.queue_depth()
    }

    /// Jobs currently training on a worker (all streams).
    pub fn in_flight(&self) -> usize {
        self.inner.lock().pool.in_flight()
    }

    /// Jobs submitted by `stream` whose models have not been handed
    /// back yet.
    pub fn outstanding_for(&self, stream: usize) -> usize {
        self.inner.lock().outstanding.get(&stream).copied().unwrap_or(0)
    }
}

/// One shard's handle onto a (possibly shared) [`TrainRouter`]: the
/// pipeline submits with its own stream index and only ever drains its
/// own results.
#[derive(Clone)]
pub struct TrainHandle {
    router: Arc<TrainRouter>,
    stream: usize,
}

impl TrainHandle {
    /// Wraps `router` for the shard serving `stream`.
    pub fn new(router: Arc<TrainRouter>, stream: usize) -> Self {
        TrainHandle { router, stream }
    }

    /// Enqueues a job, stamping it with this shard's stream index.
    pub fn submit(&self, mut job: TrainJob) {
        job.stream = self.stream;
        self.router.submit(job);
    }

    /// Cancels this shard's queued-but-not-started job for
    /// `cluster_id` (best effort — see [`TrainingPool::cancel`]).
    pub fn cancel(&self, cluster_id: usize) {
        self.router.cancel(self.stream, cluster_id);
    }

    /// This shard's stream index.
    pub fn stream(&self) -> usize {
        self.stream
    }

    /// Non-blocking collection of this shard's finished models.
    pub fn drain(&self) -> Vec<TrainedModel> {
        self.router.drain(self.stream)
    }

    /// Blocks until every job this shard submitted has finished.
    pub fn drain_barrier(&self) -> Vec<TrainedModel> {
        self.router.drain_barrier(self.stream)
    }

    /// Shared-pool queue depth (all streams).
    pub fn queue_depth(&self) -> usize {
        self.router.queue_depth()
    }

    /// Shared-pool in-flight count (all streams).
    pub fn in_flight(&self) -> usize {
        self.router.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specializer::SpecializerConfig;
    use odin_data::{SceneGen, Subset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_specializer() -> Specializer {
        Specializer::new(SpecializerConfig {
            train_iters: 10,
            distill_iters: 8,
            batch_size: 4,
            ..SpecializerConfig::default()
        })
    }

    fn fixture() -> (Arc<Detector>, Vec<Frame>) {
        let mut rng = StdRng::seed_from_u64(0);
        let teacher = Arc::new(Detector::small(48, &mut rng));
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 8);
        (teacher, frames)
    }

    fn tel() -> Telemetry {
        let t = Telemetry::new();
        t.clear_sinks();
        t
    }

    fn ctx() -> SpanCtx {
        SpanCtx { trace: 1, parent: odin_telemetry::NO_PARENT }
    }

    #[test]
    fn pool_trains_and_returns_models() {
        let (teacher, frames) = fixture();
        let mut pool = TrainingPool::new(2, quick_specializer(), teacher, tel());
        for (i, kind) in [ModelKind::Specialized, ModelKind::Lite].into_iter().enumerate() {
            pool.submit(TrainJob {
                stream: 0,
                cluster_id: i,
                seed: i as u64,
                kind,
                frames: frames.clone(),
                ctx: ctx(),
            });
        }
        let done = pool.drain_barrier();
        assert_eq!(done.len(), 2);
        assert_eq!(pool.pending(), 0);
        let mut kinds: Vec<_> = done.iter().map(|m| (m.cluster_id, m.kind)).collect();
        kinds.sort_by_key(|&(id, _)| id);
        assert_eq!(kinds, vec![(0, ModelKind::Specialized), (1, ModelKind::Lite)]);
        assert!(done.iter().all(|m| m.wall_ms >= 0.0));
    }

    #[test]
    fn background_model_matches_inline_training() {
        let (teacher, frames) = fixture();
        let sp = quick_specializer();
        let inline = sp.build_specialized(7, &frames);
        let mut pool = TrainingPool::new(1, sp, teacher, tel());
        pool.submit(TrainJob {
            stream: 0,
            cluster_id: 0,
            seed: 7,
            kind: ModelKind::Specialized,
            frames,
            ctx: ctx(),
        });
        let done = pool.drain_barrier();
        assert_eq!(done[0].detector.export_params(), inline.export_params());
    }

    #[test]
    fn worker_span_continues_the_submitted_trace() {
        let (teacher, frames) = fixture();
        let telemetry = tel();
        let mut pool = TrainingPool::new(1, quick_specializer(), teacher, telemetry.clone());
        let submitted = SpanCtx { trace: 42, parent: 7 };
        pool.submit(TrainJob {
            stream: 0,
            cluster_id: 5,
            seed: 1,
            kind: ModelKind::Lite,
            frames,
            ctx: submitted,
        });
        let done = pool.drain_barrier();
        assert_eq!(done.len(), 1);
        // The model's install context continues the submitter's trace...
        assert_eq!(done[0].ctx.trace, 42);
        // ...parented on the worker-side train span, which itself
        // parents onto the submitted context.
        let rec = telemetry.flight_record();
        let train =
            rec.spans.iter().find(|s| s.name == "train").expect("worker recorded a train span");
        assert_eq!(train.trace, 42);
        assert_eq!(train.parent, 7);
        assert_eq!(train.cluster, 5);
        assert_eq!(done[0].ctx.parent, train.id);
    }

    #[test]
    fn counters_settle_after_barrier() {
        let (teacher, frames) = fixture();
        let mut pool = TrainingPool::new(1, quick_specializer(), teacher, tel());
        pool.submit(TrainJob {
            stream: 0,
            cluster_id: 3,
            seed: 1,
            kind: ModelKind::Lite,
            frames,
            ctx: ctx(),
        });
        assert_eq!(pool.pending(), 1);
        let _ = pool.drain_barrier();
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn cancelled_job_is_discarded_and_counted() {
        let (teacher, frames) = fixture();
        let telemetry = tel();
        let mut pool = TrainingPool::new(1, quick_specializer(), teacher, telemetry.clone());
        // Tombstone first, then submit: the worker is guaranteed to see
        // the cancellation at dequeue (cluster ids are never reused, so
        // an early tombstone is exactly as valid as a late one).
        pool.cancel(0, 9);
        pool.submit(TrainJob {
            stream: 0,
            cluster_id: 9,
            seed: 1,
            kind: ModelKind::Lite,
            frames,
            ctx: ctx(),
        });
        let done = pool.drain_barrier();
        assert!(done.is_empty(), "cancelled job must not produce a model");
        assert_eq!(pool.pending(), 0, "cancellation settles the submitted/collected accounting");
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(telemetry.train_cancelled.get(), 1);
    }

    #[test]
    fn router_settles_outstanding_for_cancelled_jobs() {
        let (teacher, frames) = fixture();
        let router = TrainRouter::new(1, quick_specializer(), teacher, tel());
        let handle = TrainHandle::new(Arc::clone(&router), 0);
        handle.cancel(4);
        handle.submit(TrainJob {
            stream: 0,
            cluster_id: 4,
            seed: 1,
            kind: ModelKind::Lite,
            frames,
            ctx: ctx(),
        });
        assert!(handle.drain_barrier().is_empty());
        assert_eq!(router.outstanding_for(0), 0, "cancelled job settles its stream's accounting");
    }

    #[test]
    fn drain_without_jobs_is_empty() {
        let (teacher, _) = fixture();
        let mut pool = TrainingPool::new(1, quick_specializer(), teacher, tel());
        assert!(pool.drain().is_empty());
        assert!(pool.drain_barrier().is_empty());
    }

    #[test]
    fn router_hands_each_stream_only_its_own_models() {
        let (teacher, frames) = fixture();
        let router = TrainRouter::new(2, quick_specializer(), teacher, tel());
        let a = TrainHandle::new(Arc::clone(&router), 0);
        let b = TrainHandle::new(Arc::clone(&router), 1);
        for (handle, cluster) in [(&a, 0), (&b, 1), (&a, 2)] {
            handle.submit(TrainJob {
                stream: 99, // overridden by the handle
                cluster_id: cluster,
                seed: cluster as u64,
                kind: ModelKind::Lite,
                frames: frames.clone(),
                ctx: ctx(),
            });
        }
        // Stream 0's barrier returns exactly its two models and banks
        // stream 1's if it finished meanwhile.
        let got_a = a.drain_barrier();
        let mut ids: Vec<_> = got_a.iter().map(|m| m.cluster_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2]);
        assert!(got_a.iter().all(|m| m.stream == 0));
        assert_eq!(router.outstanding_for(0), 0);

        let got_b = b.drain_barrier();
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0].cluster_id, 1);
        assert_eq!(got_b[0].stream, 1);
        assert_eq!(router.outstanding_for(1), 0);
        // Nothing left for either stream.
        assert!(a.drain().is_empty());
        assert!(b.drain().is_empty());
    }
}

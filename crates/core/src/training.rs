//! SPECIALIZER scheduling — inline or on background workers.
//!
//! The paper's SPECIALIZER "generates a new model" whenever DETECTOR
//! promotes a cluster (Algorithm 2). Training a detector takes orders of
//! magnitude longer than serving a frame, so doing it on the serving
//! thread stalls the stream for the whole training run. This module
//! decouples the stages:
//!
//! * [`TrainingMode::Inline`] trains synchronously inside
//!   `Odin::process`. Fully deterministic — every paper-table harness
//!   uses it, and it is the default.
//! * [`TrainingMode::Background`] hands [`TrainJob`]s to a
//!   [`TrainingPool`] of worker threads over channels. The serving
//!   thread never trains; completed models are drained and installed at
//!   frame boundaries, and frames for a still-training cluster are
//!   served by the teacher or by nearby clusters' models meanwhile.
//!
//! Because each job carries its own seed (derived from the submission
//! sequence number), the models a background pool produces are
//! bit-identical to the ones inline training would have built — only
//! *when* they become servable differs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use odin_data::Frame;
use odin_detect::Detector;
use odin_telemetry::SpanCtx;

use crate::registry::ModelKind;
use crate::specializer::Specializer;
use crate::telemetry::Telemetry;

/// How SPECIALIZER schedules training work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainingMode {
    /// Train on the calling thread inside `process`. Deterministic
    /// frame-by-frame; the default, and what the paper-table harnesses
    /// use.
    #[default]
    Inline,
    /// Train on `workers` background threads (at least one). `process`
    /// never trains on the calling thread; call
    /// `Odin::finish_training` to wait for stragglers.
    Background {
        /// Worker-thread count; clamped to at least 1.
        workers: usize,
    },
}

/// One unit of SPECIALIZER work: build a model of `kind` for
/// `cluster_id` from `frames`, seeding all randomness from `seed`.
#[derive(Debug)]
pub struct TrainJob {
    /// The promoted cluster the model will serve.
    pub cluster_id: usize,
    /// RNG seed — carried in the job so Inline and Background modes
    /// build identical models.
    pub seed: u64,
    /// Specialized (oracle labels) or Lite (teacher distillation).
    pub kind: ModelKind,
    /// The cluster's accumulated training frames.
    pub frames: Vec<Frame>,
    /// Trace context the job was submitted under: the worker-side
    /// `train` span parents onto the submitter's `train_job_queued`
    /// marker, so one trace links drift detection to the trained model
    /// across the thread hop.
    pub ctx: SpanCtx,
}

/// A model built by a worker, ready for registry installation.
pub struct TrainedModel {
    /// The cluster the model was built for.
    pub cluster_id: usize,
    /// The trained detector.
    pub detector: Detector,
    /// Specialized or Lite.
    pub kind: ModelKind,
    /// Wall-clock the training run took, in milliseconds.
    pub wall_ms: f64,
    /// Trace context for the install: same trace as the submitting
    /// recovery arc, parented on the worker's `train` span.
    pub ctx: SpanCtx,
}

/// A pool of SPECIALIZER worker threads fed over channels.
///
/// Jobs flow worker-ward through an unbounded MPMC channel; finished
/// models flow back through a second one. Counters are monotone
/// (`submitted >= started >= finished`), so queue depth and in-flight
/// counts are snapshots computed from their differences.
pub struct TrainingPool {
    /// `None` only transiently during drop (taking it closes the
    /// channel so workers exit their recv loop).
    jobs: Option<Sender<TrainJob>>,
    results: Receiver<TrainedModel>,
    workers: Vec<JoinHandle<()>>,
    submitted: Arc<AtomicUsize>,
    started: Arc<AtomicUsize>,
    finished: Arc<AtomicUsize>,
    /// Results the owner has pulled out of `results` (main-thread only).
    collected: usize,
}

impl TrainingPool {
    /// Spawns `workers` (at least 1) threads that build models with
    /// `specializer`, distilling from `teacher` for Lite jobs. Each
    /// worker continues the job's trace under `telemetry`: it opens a
    /// `train` span from [`TrainJob::ctx`], measures wall time against
    /// the telemetry clock, and threads a child context into the
    /// [`TrainedModel`] for the install marker back on the serving
    /// thread.
    pub fn new(
        workers: usize,
        specializer: Specializer,
        teacher: Arc<Detector>,
        telemetry: Telemetry,
    ) -> Self {
        let (job_tx, job_rx) = unbounded::<TrainJob>();
        let (res_tx, res_rx) = unbounded::<TrainedModel>();
        let submitted = Arc::new(AtomicUsize::new(0));
        let started = Arc::new(AtomicUsize::new(0));
        let finished = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = job_rx.clone();
                let tx = res_tx.clone();
                let teacher = Arc::clone(&teacher);
                let started = Arc::clone(&started);
                let finished = Arc::clone(&finished);
                let telemetry = telemetry.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        started.fetch_add(1, Ordering::SeqCst);
                        let mut span = telemetry.span("train", job.ctx);
                        span.set_cluster(job.cluster_id);
                        let detector = match job.kind {
                            ModelKind::Specialized => {
                                specializer.build_specialized(job.seed, &job.frames)
                            }
                            ModelKind::Lite => {
                                specializer.build_lite(job.seed, &teacher, &job.frames)
                            }
                        };
                        let ctx = span.child_ctx();
                        let wall_ms = span.close();
                        let done = TrainedModel {
                            cluster_id: job.cluster_id,
                            detector,
                            kind: job.kind,
                            wall_ms,
                            ctx,
                        };
                        finished.fetch_add(1, Ordering::SeqCst);
                        if tx.send(done).is_err() {
                            break; // pool dropped; nobody wants results
                        }
                    }
                })
            })
            .collect();
        TrainingPool {
            jobs: Some(job_tx),
            results: res_rx,
            workers: handles,
            submitted,
            started,
            finished,
            collected: 0,
        }
    }

    /// Enqueues a job; returns immediately.
    pub fn submit(&self, job: TrainJob) {
        self.submitted.fetch_add(1, Ordering::SeqCst);
        self.jobs
            .as_ref()
            .expect("job channel open until drop")
            .send(job)
            .expect("training workers alive");
    }

    /// Jobs enqueued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.submitted.load(Ordering::SeqCst).saturating_sub(self.started.load(Ordering::SeqCst))
    }

    /// Jobs currently training on a worker.
    pub fn in_flight(&self) -> usize {
        self.started.load(Ordering::SeqCst).saturating_sub(self.finished.load(Ordering::SeqCst))
    }

    /// Jobs submitted whose results have not yet been collected.
    pub fn pending(&self) -> usize {
        self.submitted.load(Ordering::SeqCst).saturating_sub(self.collected)
    }

    /// Collects every finished model without blocking.
    pub fn drain(&mut self) -> Vec<TrainedModel> {
        let mut out = Vec::new();
        while let Ok(m) = self.results.try_recv() {
            self.collected += 1;
            out.push(m);
        }
        out
    }

    /// Blocks until every submitted job has finished, returning all
    /// uncollected results. With more than one worker the order results
    /// arrive in is nondeterministic; callers install into a map keyed
    /// by cluster id, so final state does not depend on it.
    pub fn drain_barrier(&mut self) -> Vec<TrainedModel> {
        let mut out = Vec::new();
        while self.collected < self.submitted.load(Ordering::SeqCst) {
            match self.results.recv() {
                Ok(m) => {
                    self.collected += 1;
                    out.push(m);
                }
                Err(_) => break, // a worker died; don't hang forever
            }
        }
        out
    }
}

impl Drop for TrainingPool {
    /// Closes the job channel and joins the workers. A worker mid-run
    /// finishes its current job first, so dropping a busy pool can
    /// block for up to one training run.
    fn drop(&mut self) {
        self.jobs.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specializer::SpecializerConfig;
    use odin_data::{SceneGen, Subset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_specializer() -> Specializer {
        Specializer::new(SpecializerConfig {
            train_iters: 10,
            distill_iters: 8,
            batch_size: 4,
            ..SpecializerConfig::default()
        })
    }

    fn fixture() -> (Arc<Detector>, Vec<Frame>) {
        let mut rng = StdRng::seed_from_u64(0);
        let teacher = Arc::new(Detector::small(48, &mut rng));
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 8);
        (teacher, frames)
    }

    fn tel() -> Telemetry {
        let t = Telemetry::new();
        t.clear_sinks();
        t
    }

    fn ctx() -> SpanCtx {
        SpanCtx { trace: 1, parent: odin_telemetry::NO_PARENT }
    }

    #[test]
    fn pool_trains_and_returns_models() {
        let (teacher, frames) = fixture();
        let mut pool = TrainingPool::new(2, quick_specializer(), teacher, tel());
        for (i, kind) in [ModelKind::Specialized, ModelKind::Lite].into_iter().enumerate() {
            pool.submit(TrainJob {
                cluster_id: i,
                seed: i as u64,
                kind,
                frames: frames.clone(),
                ctx: ctx(),
            });
        }
        let done = pool.drain_barrier();
        assert_eq!(done.len(), 2);
        assert_eq!(pool.pending(), 0);
        let mut kinds: Vec<_> = done.iter().map(|m| (m.cluster_id, m.kind)).collect();
        kinds.sort_by_key(|&(id, _)| id);
        assert_eq!(kinds, vec![(0, ModelKind::Specialized), (1, ModelKind::Lite)]);
        assert!(done.iter().all(|m| m.wall_ms >= 0.0));
    }

    #[test]
    fn background_model_matches_inline_training() {
        let (teacher, frames) = fixture();
        let sp = quick_specializer();
        let inline = sp.build_specialized(7, &frames);
        let mut pool = TrainingPool::new(1, sp, teacher, tel());
        pool.submit(TrainJob {
            cluster_id: 0,
            seed: 7,
            kind: ModelKind::Specialized,
            frames,
            ctx: ctx(),
        });
        let done = pool.drain_barrier();
        assert_eq!(done[0].detector.export_params(), inline.export_params());
    }

    #[test]
    fn worker_span_continues_the_submitted_trace() {
        let (teacher, frames) = fixture();
        let telemetry = tel();
        let mut pool = TrainingPool::new(1, quick_specializer(), teacher, telemetry.clone());
        let submitted = SpanCtx { trace: 42, parent: 7 };
        pool.submit(TrainJob {
            cluster_id: 5,
            seed: 1,
            kind: ModelKind::Lite,
            frames,
            ctx: submitted,
        });
        let done = pool.drain_barrier();
        assert_eq!(done.len(), 1);
        // The model's install context continues the submitter's trace...
        assert_eq!(done[0].ctx.trace, 42);
        // ...parented on the worker-side train span, which itself
        // parents onto the submitted context.
        let rec = telemetry.flight_record();
        let train =
            rec.spans.iter().find(|s| s.name == "train").expect("worker recorded a train span");
        assert_eq!(train.trace, 42);
        assert_eq!(train.parent, 7);
        assert_eq!(train.cluster, 5);
        assert_eq!(done[0].ctx.parent, train.id);
    }

    #[test]
    fn counters_settle_after_barrier() {
        let (teacher, frames) = fixture();
        let mut pool = TrainingPool::new(1, quick_specializer(), teacher, tel());
        pool.submit(TrainJob { cluster_id: 3, seed: 1, kind: ModelKind::Lite, frames, ctx: ctx() });
        assert_eq!(pool.pending(), 1);
        let _ = pool.drain_barrier();
        assert_eq!(pool.pending(), 0);
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn drain_without_jobs_is_empty() {
        let (teacher, _) = fixture();
        let mut pool = TrainingPool::new(1, quick_specializer(), teacher, tel());
        assert!(pool.drain().is_empty());
        assert!(pool.drain_barrier().is_empty());
    }
}

//! The pipeline's telemetry facade: pre-registered counters, gauges,
//! per-stage latency histograms, the drift timeline, and the structured
//! event log, all backed by [`odin_telemetry::Registry`].
//!
//! Every handle is registered once at construction so metric names and
//! histogram bucket bounds are fixed for the life of the pipeline —
//! the precondition for output that is bit-identical at any
//! `ODIN_THREADS` and across checkpoint/restore. Get the facade with
//! [`crate::pipeline::Odin::telemetry`]; expositions come from
//! [`Telemetry::render_prometheus`] / [`Telemetry::render_json`] /
//! [`Telemetry::snapshot`].
//!
//! Stage timers cover: `encode` (latent projection), `ingest`
//! (cluster/Δ-band observation), `select` (SELECTOR decision), `detect`
//! (model/teacher inference + NMS), `train` (SPECIALIZER wall time),
//! `snapshot_build` (checkpoint serialization), `snapshot_write`
//! (background atomic file write), and `wal_append` (drift-event WAL
//! append + fsync).

use std::sync::{Arc, Mutex};

use odin_telemetry::render::{render_json, render_prometheus};
use odin_telemetry::{
    log_bounds, Clock, Counter, EventSink, Gauge, Histogram, Level, Registry, StderrSink,
    TelemetrySnapshot, TimelineEvent, TimelineStage,
};

/// Bucket bounds (ms) shared by the fast per-frame stages. Log-spaced
/// from 5 µs to 5 s: encode/select/detect on a tiny synthetic frame sit
/// near the bottom; a cold teacher inference near the middle.
fn stage_bounds() -> Vec<f64> {
    log_bounds(0.005, 5_000.0, 14)
}

/// Bucket bounds (ms) for SPECIALIZER training runs, which live on a
/// much slower scale (milliseconds to minutes).
fn train_bounds() -> Vec<f64> {
    log_bounds(1.0, 600_000.0, 14)
}

/// Shared telemetry facade for one pipeline instance. Cloning is cheap
/// and shares all state (the clone observes into the same registry).
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<Registry>,
    last_error: Arc<Mutex<Option<String>>>,

    // Counters.
    pub(crate) frames: Counter,
    pub(crate) served_teacher: Counter,
    pub(crate) served_ensemble: Counter,
    pub(crate) served_fallback: Counter,
    pub(crate) drift_events: Counter,
    pub(crate) evictions: Counter,
    pub(crate) jobs_submitted: Counter,
    pub(crate) models_lite: Counter,
    pub(crate) models_specialized: Counter,
    pub(crate) snapshots: Counter,
    pub(crate) wal_appends: Counter,
    pub(crate) store_errors: Counter,

    // Gauges.
    pub(crate) clusters: Gauge,
    pub(crate) models: Gauge,
    pub(crate) queue_depth: Gauge,
    pub(crate) in_flight: Gauge,

    // Stage latency histograms.
    pub(crate) stage_encode: Histogram,
    pub(crate) stage_ingest: Histogram,
    pub(crate) stage_select: Histogram,
    pub(crate) stage_detect: Histogram,
    pub(crate) stage_train: Histogram,
    pub(crate) stage_snapshot_build: Histogram,
    pub(crate) stage_snapshot_write: Histogram,
    pub(crate) stage_wal_append: Histogram,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("registry", &self.registry).finish()
    }
}

impl Telemetry {
    /// Creates a facade with every pipeline metric pre-registered and a
    /// warn-level stderr sink installed (so store failures stay visible
    /// on the console by default).
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        registry.add_sink(Arc::new(StderrSink::default()));
        let stage = stage_bounds();
        Telemetry {
            frames: registry.counter("odin_frames_total"),
            served_teacher: registry.counter("odin_served_teacher_total"),
            served_ensemble: registry.counter("odin_served_ensemble_total"),
            served_fallback: registry.counter("odin_served_fallback_total"),
            drift_events: registry.counter("odin_drift_events_total"),
            evictions: registry.counter("odin_evictions_total"),
            jobs_submitted: registry.counter("odin_train_jobs_total"),
            models_lite: registry.counter("odin_models_installed_lite_total"),
            models_specialized: registry.counter("odin_models_installed_specialized_total"),
            snapshots: registry.counter("odin_snapshots_total"),
            wal_appends: registry.counter("odin_wal_appends_total"),
            store_errors: registry.counter("odin_store_errors_total"),
            clusters: registry.gauge("odin_clusters"),
            models: registry.gauge("odin_models"),
            queue_depth: registry.gauge("odin_train_queue_depth"),
            in_flight: registry.gauge("odin_train_in_flight"),
            stage_encode: registry.histogram("odin_stage_encode_ms", &stage),
            stage_ingest: registry.histogram("odin_stage_ingest_ms", &stage),
            stage_select: registry.histogram("odin_stage_select_ms", &stage),
            stage_detect: registry.histogram("odin_stage_detect_ms", &stage),
            stage_train: registry.histogram("odin_stage_train_ms", &train_bounds()),
            stage_snapshot_build: registry.histogram("odin_stage_snapshot_build_ms", &stage),
            stage_snapshot_write: registry.histogram("odin_stage_snapshot_write_ms", &stage),
            stage_wal_append: registry.histogram("odin_stage_wal_append_ms", &stage),
            registry,
            last_error: Arc::new(Mutex::new(None)),
        }
    }

    /// The underlying registry (for ad-hoc metrics or direct access).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Current time in ms from the registry clock.
    pub(crate) fn now_ms(&self) -> f64 {
        self.registry.now_ms()
    }

    /// A closure over the registry clock, for components that measure
    /// durations off-thread (the training pool). Reads the clock at call
    /// time, so a later [`Telemetry::set_clock`] takes effect here too.
    pub(crate) fn time_source(&self) -> Arc<dyn Fn() -> f64 + Send + Sync> {
        let registry = Arc::clone(&self.registry);
        Arc::new(move || registry.now_ms())
    }

    /// Replaces the time source. Installing an
    /// [`odin_telemetry::ManualClock`] makes every recorded duration a
    /// pure function of the stream — the determinism tests rely on it.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        self.registry.set_clock(clock);
    }

    /// Adds an event sink (events fan out to all sinks).
    pub fn add_sink(&self, sink: Arc<dyn EventSink>) {
        self.registry.add_sink(sink);
    }

    /// Removes every event sink, including the default stderr sink.
    pub fn clear_sinks(&self) {
        self.registry.clear_sinks();
    }

    /// Emits a structured event.
    pub fn event(&self, level: Level, target: &'static str, message: impl Into<String>) {
        self.registry.event(level, target, message);
    }

    /// Records a drift-timeline marker at the given stream frame.
    pub(crate) fn record_timeline(&self, stage: TimelineStage, cluster_id: usize, frame: usize) {
        self.registry.record_timeline(stage, cluster_id, frame);
    }

    /// The drift timeline recorded so far, oldest first.
    pub fn timeline(&self) -> Vec<TimelineEvent> {
        self.registry.timeline()
    }

    /// Counts one snapshot/WAL failure, remembers it as the last store
    /// error, and emits an error-level event. Never panics: persistence
    /// failures must not take down the serving path.
    pub(crate) fn record_store_error(
        &self,
        what: impl std::fmt::Display,
        detail: impl std::fmt::Display,
    ) {
        self.store_errors.inc();
        let message = format!("{what}: {detail}");
        *self.last_error.lock().unwrap() = Some(message.clone());
        self.registry.event(Level::Error, "store", message);
    }

    /// The most recent store failure, if any.
    pub fn last_store_error(&self) -> Option<String> {
        self.last_error.lock().unwrap().clone()
    }

    /// A frozen, ordered copy of all metrics and the timeline.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot()
    }

    /// Restores metric values from a snapshot (all handles stay valid).
    pub(crate) fn load(&self, snap: &TelemetrySnapshot) {
        self.registry.load(snap);
    }

    /// Prometheus text exposition of the current state.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }

    /// JSON dump of the current state (stable key order).
    pub fn render_json(&self) -> String {
        render_json(&self.snapshot())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_state() {
        let tel = Telemetry::new();
        tel.clear_sinks(); // keep test output quiet
        let other = tel.clone();
        other.frames.add(3);
        assert_eq!(tel.frames.get(), 3);
        other.record_store_error("wal append", "disk full");
        assert_eq!(tel.store_errors.get(), 1);
        assert_eq!(tel.last_store_error().as_deref(), Some("wal append: disk full"));
    }

    #[test]
    fn renders_cover_preregistered_metrics() {
        let tel = Telemetry::new();
        tel.clear_sinks();
        let prom = tel.render_prometheus();
        assert!(prom.contains("odin_frames_total 0"));
        assert!(prom.contains("# TYPE odin_stage_encode_ms histogram"));
        let json = tel.render_json();
        assert!(json.contains("\"odin_store_errors_total\":0"));
    }
}

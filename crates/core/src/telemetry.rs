//! The pipeline's telemetry facade: pre-registered counters, gauges,
//! per-stage latency histograms, the drift timeline, and the structured
//! event log, all backed by [`odin_telemetry::Registry`].
//!
//! Every handle is registered once at construction so metric names and
//! histogram bucket bounds are fixed for the life of the pipeline —
//! the precondition for output that is bit-identical at any
//! `ODIN_THREADS` and across checkpoint/restore. Get the facade with
//! [`crate::pipeline::Odin::telemetry`]; expositions come from
//! [`Telemetry::render_prometheus`] / [`Telemetry::render_json`] /
//! [`Telemetry::snapshot`].
//!
//! Stage timers cover: `encode` (latent projection), `ingest`
//! (cluster/Δ-band observation), `select` (SELECTOR decision), `detect`
//! (model/teacher inference + NMS), `train` (SPECIALIZER wall time),
//! `snapshot_build` (checkpoint serialization), `snapshot_write`
//! (background atomic file write), and `wal_append` (drift-event WAL
//! append + fsync).
//!
//! Each stage timer is also a *span*: the same RAII guard that feeds
//! the histogram records a [`odin_telemetry::SpanRecord`] into the
//! always-on flight recorder, linked by parent id into a per-frame or
//! per-recovery trace. [`Telemetry::render_chrome_trace`] exports the
//! recorder as Chrome-trace JSON (loadable in Perfetto), and
//! [`Telemetry::serve`] exposes `/metrics`, `/trace`, and `/healthz`
//! over a zero-dependency HTTP server.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use odin_log::EVENT_LOG_FILE;
use odin_telemetry::render::{render_json, render_prometheus};
use odin_telemetry::{
    chrome_trace, log_bounds, serve, unpoison, Clock, Counter, EventSink, FlightRecord, Gauge,
    Histogram, HttpHandlers, Level, MetricsServer, Registry, Request, Response, SpanCtx, SpanGuard,
    StderrSink, TelemetrySnapshot, TimelineEvent, TimelineStage,
};

/// Bucket bounds (ms) shared by the fast per-frame stages. Log-spaced
/// from 5 µs to 5 s: encode/select/detect on a tiny synthetic frame sit
/// near the bottom; a cold teacher inference near the middle.
fn stage_bounds() -> Vec<f64> {
    log_bounds(0.005, 5_000.0, 14)
}

/// Bucket bounds (ms) for SPECIALIZER training runs, which live on a
/// much slower scale (milliseconds to minutes).
fn train_bounds() -> Vec<f64> {
    log_bounds(1.0, 600_000.0, 14)
}

/// Shared telemetry facade for one pipeline instance. Cloning is cheap
/// and shares all state (the clone observes into the same registry).
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<Registry>,
    last_error: Arc<Mutex<Option<String>>>,
    /// Where the flight recorder auto-dumps (Chrome-trace JSON) on
    /// drift events and store errors; set when a store is attached.
    dump_path: Arc<Mutex<Option<PathBuf>>>,

    // Counters.
    pub(crate) frames: Counter,
    pub(crate) served_teacher: Counter,
    pub(crate) served_ensemble: Counter,
    pub(crate) served_fallback: Counter,
    pub(crate) drift_events: Counter,
    pub(crate) evictions: Counter,
    pub(crate) jobs_submitted: Counter,
    pub(crate) models_lite: Counter,
    pub(crate) models_specialized: Counter,
    pub(crate) snapshots: Counter,
    pub(crate) wal_appends: Counter,
    pub(crate) store_errors: Counter,
    pub(crate) quant_fallback: Counter,
    /// Drift events whose cluster matched an archived attic signature
    /// (the cached model was reinstalled instead of retrained).
    pub(crate) attic_hits: Counter,
    /// Drift events that probed a non-empty attic and found no match.
    pub(crate) attic_misses: Counter,
    /// Evicted-cluster models archived into the attic.
    pub(crate) attic_archived: Counter,
    /// Attic entries dropped by the byte-budget LRU.
    pub(crate) attic_evicted: Counter,
    /// Trained models dropped because their cluster was evicted while
    /// the job ran.
    pub(crate) train_orphaned: Counter,
    /// Queued training jobs cancelled before starting because their
    /// cluster was evicted.
    pub(crate) train_cancelled: Counter,
    /// Records accepted into the event-log queue.
    pub(crate) event_log_appended: Counter,
    /// Records dropped because the event-log queue was full.
    pub(crate) event_log_dropped: Counter,

    // Gauges.
    pub(crate) clusters: Gauge,
    pub(crate) models: Gauge,
    pub(crate) queue_depth: Gauge,
    pub(crate) in_flight: Gauge,
    /// Configured serving precision: 0 = f32, 1 = int8.
    pub(crate) serve_precision: Gauge,
    /// Instantaneous event-log queue depth (emitter minus writer).
    pub(crate) event_log_queue_depth: Gauge,

    // Stage latency histograms.
    pub(crate) stage_encode: Histogram,
    pub(crate) stage_ingest: Histogram,
    pub(crate) stage_select: Histogram,
    pub(crate) stage_detect: Histogram,
    pub(crate) stage_train: Histogram,
    pub(crate) stage_snapshot_build: Histogram,
    pub(crate) stage_snapshot_write: Histogram,
    pub(crate) stage_wal_append: Histogram,
    /// Wall time per sealed event-log segment write (background
    /// thread; live only when the event log is enabled).
    pub(crate) event_log_flush: Histogram,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("registry", &self.registry).finish()
    }
}

impl Telemetry {
    /// Creates a facade with every pipeline metric pre-registered and a
    /// warn-level stderr sink installed (so store failures stay visible
    /// on the console by default).
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        registry.add_sink(Arc::new(StderrSink::default()));
        let stage = stage_bounds();
        Telemetry {
            frames: registry.counter("odin_frames_total"),
            served_teacher: registry.counter("odin_served_teacher_total"),
            served_ensemble: registry.counter("odin_served_ensemble_total"),
            served_fallback: registry.counter("odin_served_fallback_total"),
            drift_events: registry.counter("odin_drift_events_total"),
            evictions: registry.counter("odin_evictions_total"),
            jobs_submitted: registry.counter("odin_train_jobs_total"),
            models_lite: registry.counter("odin_models_installed_lite_total"),
            models_specialized: registry.counter("odin_models_installed_specialized_total"),
            snapshots: registry.counter("odin_snapshots_total"),
            wal_appends: registry.counter("odin_wal_appends_total"),
            store_errors: registry.counter("odin_store_errors_total"),
            quant_fallback: registry.counter("odin_quant_fallback_total"),
            attic_hits: registry.counter("odin_attic_hits_total"),
            attic_misses: registry.counter("odin_attic_misses_total"),
            attic_archived: registry.counter("odin_attic_archived_total"),
            attic_evicted: registry.counter("odin_attic_evicted_total"),
            train_orphaned: registry.counter("odin_train_orphaned_total"),
            train_cancelled: registry.counter("odin_train_cancelled_total"),
            event_log_appended: registry.counter("odin_event_log_appended_total"),
            event_log_dropped: registry.counter("odin_event_log_dropped_total"),
            clusters: registry.gauge("odin_clusters"),
            models: registry.gauge("odin_models"),
            queue_depth: registry.gauge("odin_training_queue_depth"),
            in_flight: registry.gauge("odin_train_in_flight"),
            serve_precision: registry.gauge("odin_serve_precision"),
            event_log_queue_depth: registry.gauge("odin_event_log_queue_depth"),
            stage_encode: registry.histogram("odin_stage_encode_ms", &stage),
            stage_ingest: registry.histogram("odin_stage_ingest_ms", &stage),
            stage_select: registry.histogram("odin_stage_select_ms", &stage),
            stage_detect: registry.histogram("odin_stage_detect_ms", &stage),
            stage_train: registry.histogram("odin_stage_train_ms", &train_bounds()),
            stage_snapshot_build: registry.histogram("odin_stage_snapshot_build_ms", &stage),
            stage_snapshot_write: registry.histogram("odin_stage_snapshot_write_ms", &stage),
            stage_wal_append: registry.histogram("odin_stage_wal_append_ms", &stage),
            event_log_flush: registry.histogram("odin_event_log_flush_ms", &stage),
            registry,
            last_error: Arc::new(Mutex::new(None)),
            dump_path: Arc::new(Mutex::new(None)),
        }
    }

    /// The underlying registry (for ad-hoc metrics or direct access).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Opens a root span in a brand-new trace.
    pub(crate) fn root_span(&self, name: &'static str) -> SpanGuard {
        self.registry.tracer().root(name)
    }

    /// Opens a span under `ctx` (for cross-thread continuation, e.g.
    /// the training pool's worker-side `train` span).
    pub(crate) fn span(&self, name: &'static str, ctx: SpanCtx) -> SpanGuard {
        self.registry.tracer().span(name, ctx)
    }

    /// Records an instant marker span and returns its id so later spans
    /// can parent onto it.
    pub(crate) fn instant(
        &self,
        name: &'static str,
        ctx: SpanCtx,
        cluster: i64,
        frame: i64,
    ) -> u64 {
        self.registry.tracer().instant(name, ctx, cluster, frame)
    }

    /// Allocates a fresh trace id (one per recovery arc).
    pub(crate) fn new_trace(&self) -> u64 {
        self.registry.tracer().new_trace()
    }

    /// The per-frame root span, tagged with the stream frame index.
    pub(crate) fn frame_span(&self, frame_idx: u64) -> SpanGuard {
        let mut g = self.root_span("frame");
        g.set_frame(frame_idx as usize);
        g
    }

    /// RAII stage timer: opens a span under `ctx`; when the guard drops
    /// the span closes and its duration lands in `hist`. One guard feeds
    /// both the latency histogram and the flight recorder, so the two
    /// views can never disagree.
    pub(crate) fn stage_span(
        &self,
        name: &'static str,
        hist: &Histogram,
        ctx: SpanCtx,
    ) -> StageSpan {
        StageSpan { span: Some(self.span(name, ctx)), hist: hist.clone() }
    }

    /// Like [`Telemetry::stage_span`] but as the root of its own trace
    /// (batch stages that don't belong to a single frame).
    pub(crate) fn stage_root_span(&self, name: &'static str, hist: &Histogram) -> StageSpan {
        StageSpan { span: Some(self.root_span(name)), hist: hist.clone() }
    }

    /// Replaces the time source. Installing an
    /// [`odin_telemetry::ManualClock`] makes every recorded duration a
    /// pure function of the stream — the determinism tests rely on it.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        self.registry.set_clock(clock);
    }

    /// Adds an event sink (events fan out to all sinks).
    pub fn add_sink(&self, sink: Arc<dyn EventSink>) {
        self.registry.add_sink(sink);
    }

    /// Removes every event sink, including the default stderr sink.
    pub fn clear_sinks(&self) {
        self.registry.clear_sinks();
    }

    /// Emits a structured event.
    pub fn event(&self, level: Level, target: &'static str, message: impl Into<String>) {
        self.registry.event(level, target, message);
    }

    /// Records a drift-timeline marker at the given stream frame.
    pub(crate) fn record_timeline(&self, stage: TimelineStage, cluster_id: usize, frame: usize) {
        self.registry.record_timeline(stage, cluster_id, frame);
    }

    /// The drift timeline recorded so far, oldest first.
    pub fn timeline(&self) -> Vec<TimelineEvent> {
        self.registry.timeline()
    }

    /// Counts one snapshot/WAL failure, remembers it as the last store
    /// error, and emits an error-level event. Never panics: persistence
    /// failures must not take down the serving path.
    pub(crate) fn record_store_error(
        &self,
        what: impl std::fmt::Display,
        detail: impl std::fmt::Display,
    ) {
        self.store_errors.inc();
        let message = format!("{what}: {detail}");
        *unpoison(self.last_error.lock()) = Some(message.clone());
        self.registry.event(Level::Error, "store", message);
        // Preserve the evidence: dump the flight recorder so the spans
        // and events leading up to the failure survive a crash.
        self.flight_autodump();
    }

    /// The most recent store failure, if any.
    pub fn last_store_error(&self) -> Option<String> {
        unpoison(self.last_error.lock()).clone()
    }

    /// A frozen, ordered copy of all metrics and the timeline.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot()
    }

    /// Restores metric values from a snapshot (all handles stay valid).
    pub(crate) fn load(&self, snap: &TelemetrySnapshot) {
        self.registry.load(snap);
    }

    /// Prometheus text exposition of the current state.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }

    /// JSON dump of the current state (stable key order).
    pub fn render_json(&self) -> String {
        render_json(&self.snapshot())
    }

    /// A copy of the flight recorder's current contents: the most
    /// recent spans and events plus drop counters.
    pub fn flight_record(&self) -> FlightRecord {
        self.registry.flight_record()
    }

    /// Chrome-trace (Perfetto) JSON export of the flight recorder.
    /// With a manual clock this is a pure function of the stream.
    pub fn render_chrome_trace(&self) -> String {
        chrome_trace(&self.flight_record())
    }

    /// Writes the Chrome-trace export to `path`.
    pub fn dump_flight(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.render_chrome_trace())
    }

    /// Sets (or clears) the auto-dump destination. The pipeline points
    /// this at `<store_dir>/flight.json` when a store is attached.
    pub(crate) fn set_flight_dump_path(&self, path: Option<PathBuf>) {
        *unpoison(self.dump_path.lock()) = path;
    }

    /// The current auto-dump destination, if any.
    pub fn flight_dump_path(&self) -> Option<PathBuf> {
        unpoison(self.dump_path.lock()).clone()
    }

    /// The pipeline's event-log path, derived from the store directory
    /// the flight dump points into. `None` until a store is attached.
    pub fn event_log_path(&self) -> Option<PathBuf> {
        self.flight_dump_path().and_then(|p| p.parent().map(|d| d.join(EVENT_LOG_FILE)))
    }

    /// Dumps the flight record to the configured path, if one is set.
    /// A failed dump emits a warn event and nothing else — in
    /// particular it must NOT count as a store error, or a broken store
    /// directory would recurse through [`Telemetry::record_store_error`]
    /// forever.
    pub(crate) fn flight_autodump(&self) {
        let path = self.flight_dump_path();
        if let Some(path) = path {
            if let Err(e) = self.dump_flight(&path) {
                self.registry.event(
                    Level::Warn,
                    "telemetry",
                    format!("flight-record dump to {} failed: {e}", path.display()),
                );
            }
        }
    }

    /// Liveness summary as a small JSON object: `status` is `"ok"`
    /// until the first store error, then `"degraded"`.
    pub fn render_healthz(&self) -> String {
        let status = if self.store_errors.get() == 0 { "ok" } else { "degraded" };
        let last = match self.last_store_error() {
            Some(msg) => format!("\"{}\"", healthz_escape(&msg)),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"status\":\"{}\",\"frames\":{},\"drift_events\":{},",
                "\"clusters\":{},\"models\":{},\"training_queue_depth\":{},",
                "\"train_in_flight\":{},\"event_log_queue_depth\":{},",
                "\"store_errors\":{},\"last_store_error\":{}}}"
            ),
            status,
            self.frames.get(),
            self.drift_events.get(),
            self.clusters.get(),
            self.models.get(),
            self.queue_depth.get(),
            self.in_flight.get(),
            self.event_log_queue_depth.get(),
            self.store_errors.get(),
            last,
        )
    }

    /// Starts the blocking exposition server on `addr` (use port 0 for
    /// an ephemeral port; the bound address is on the returned handle):
    /// `/metrics` (Prometheus text), `/trace` and `/flight`
    /// (Chrome-trace JSON of the flight recorder), `/healthz`
    /// (liveness JSON), and `/events` (cursor-paged long-poll tail of
    /// the event log — 404 until a store is attached). The server
    /// reads live state — each scrape re-renders from the shared
    /// registry.
    pub fn serve<A: std::net::ToSocketAddrs>(&self, addr: A) -> io::Result<MetricsServer> {
        let metrics = self.clone();
        let trace = self.clone();
        let healthz = self.clone();
        let routed = self.clone();
        serve(
            addr,
            HttpHandlers {
                metrics: Arc::new(move || metrics.render_prometheus()),
                trace: Arc::new(move || trace.render_chrome_trace()),
                healthz: Arc::new(move || healthz.render_healthz()),
                route: Some(Arc::new(move |req: &Request| {
                    if req.method != "GET" {
                        return None;
                    }
                    match req.path.as_str() {
                        "/flight" => Some(Response::ok_json(routed.render_chrome_trace())),
                        "/events" => Some(match routed.event_log_path() {
                            Some(path) => crate::server::events_response(&[path], req),
                            None => Response::text(
                                "404 Not Found",
                                "no store attached; /events serves the persistent event log\n",
                            ),
                        }),
                        _ => None,
                    }
                })),
            },
        )
    }
}

/// Minimal JSON string escape for the healthz `last_store_error` field
/// (error messages are ASCII-ish; control chars are dropped to space).
fn healthz_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// RAII guard tying a span to a stage histogram: dropping it closes the
/// span and observes the span's duration into the histogram.
pub(crate) struct StageSpan {
    span: Option<SpanGuard>,
    hist: Histogram,
}

impl StageSpan {
    /// Tags the underlying span with a cluster id.
    #[allow(dead_code)]
    pub(crate) fn set_cluster(&mut self, cluster: usize) {
        if let Some(s) = self.span.as_mut() {
            s.set_cluster(cluster);
        }
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        if let Some(span) = self.span.take() {
            self.hist.observe_ms(span.close());
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_state() {
        let tel = Telemetry::new();
        tel.clear_sinks(); // keep test output quiet
        let other = tel.clone();
        other.frames.add(3);
        assert_eq!(tel.frames.get(), 3);
        other.record_store_error("wal append", "disk full");
        assert_eq!(tel.store_errors.get(), 1);
        assert_eq!(tel.last_store_error().as_deref(), Some("wal append: disk full"));
    }

    #[test]
    fn healthz_flips_to_degraded_on_store_error() {
        let tel = Telemetry::new();
        tel.clear_sinks();
        assert!(tel.render_healthz().contains("\"status\":\"ok\""));
        assert!(tel.render_healthz().contains("\"last_store_error\":null"));
        tel.record_store_error("wal append", "disk \"full\"");
        let h = tel.render_healthz();
        assert!(h.contains("\"status\":\"degraded\""));
        assert!(h.contains("\\\"full\\\""));
    }

    #[test]
    fn stage_span_feeds_histogram_and_flight_recorder() {
        let tel = Telemetry::new();
        tel.clear_sinks();
        let clock = Arc::new(odin_telemetry::ManualClock::new());
        tel.set_clock(clock.clone());
        let root = tel.frame_span(9);
        {
            let _g = tel.stage_span("ingest", &tel.stage_ingest, root.child_ctx());
            clock.advance_ms(1.0);
        }
        drop(root);
        assert_eq!(tel.stage_ingest.snapshot("x").count, 1);
        let rec = tel.flight_record();
        assert_eq!(rec.spans.len(), 2);
        assert_eq!(rec.spans[0].name, "ingest");
        assert_eq!(rec.spans[0].parent, rec.spans[1].id);
        assert_eq!(rec.spans[1].frame, 9);
    }

    #[test]
    fn renders_cover_preregistered_metrics() {
        let tel = Telemetry::new();
        tel.clear_sinks();
        let prom = tel.render_prometheus();
        assert!(prom.contains("odin_frames_total 0"));
        assert!(prom.contains("# TYPE odin_stage_encode_ms histogram"));
        assert!(prom.contains("odin_attic_hits_total 0"));
        assert!(prom.contains("odin_attic_misses_total 0"));
        assert!(prom.contains("odin_attic_archived_total 0"));
        assert!(prom.contains("odin_attic_evicted_total 0"));
        assert!(prom.contains("odin_train_orphaned_total 0"));
        assert!(prom.contains("odin_train_cancelled_total 0"));
        assert!(prom.contains("odin_event_log_appended_total 0"));
        assert!(prom.contains("odin_event_log_dropped_total 0"));
        assert!(prom.contains("odin_event_log_queue_depth 0"));
        assert!(prom.contains("# TYPE odin_event_log_flush_ms histogram"));
        let json = tel.render_json();
        assert!(json.contains("\"odin_store_errors_total\":0"));
        assert!(tel.render_healthz().contains("\"event_log_queue_depth\":0"));
    }
}

//! Windowed stream evaluation — the measurement behind Figure 9 and the
//! end-to-end rows of Tables 6–7 — plus pipeline-stage counters for the
//! decoupled SPECIALIZER.

use odin_data::{Frame, GtBox};
use odin_detect::{mean_average_precision, Detection, MAP_IOU};

/// Snapshot of the pipeline's interaction with SPECIALIZER: how much
/// training work is queued, running, and done, and how often the stream
/// was served by a stand-in while a cluster's own model was still being
/// built. `Odin::stats` returns one of these.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineStats {
    /// Training jobs handed to SPECIALIZER (inline runs count too).
    pub jobs_submitted: u64,
    /// Models trained and installed into the registry.
    pub models_installed: u64,
    /// Background jobs enqueued but not yet picked up by a worker
    /// (always 0 under `TrainingMode::Inline`).
    pub queue_depth: usize,
    /// Background jobs currently training on a worker (always 0 under
    /// `TrainingMode::Inline`).
    pub in_flight: usize,
    /// Total wall-clock spent training models, in milliseconds (worker
    /// time under `TrainingMode::Background`).
    pub train_wall_ms: f64,
    /// Frames served by the heavyweight teacher while their cluster's
    /// model was still collecting data, queued, or training.
    pub teacher_frames_while_pending: u64,
    /// Frames served by other clusters' models (SELECTOR covering the
    /// gap) while their own cluster's model was still collecting data,
    /// queued, or training.
    pub fallback_frames_while_pending: u64,
    /// Snapshots handed to the background writer (manual checkpoints and
    /// policy-triggered ones both count).
    pub snapshots_written: u64,
    /// Records appended to the drift-event WAL.
    pub wal_events_logged: u64,
    /// Snapshot or WAL writes that failed. Failures never abort the
    /// stream (serving wins over persistence), but they must be
    /// machine-visible — a silently failing store is a disabled store.
    pub store_errors: u64,
    /// Description of the most recent store failure, if any.
    pub last_store_error: Option<String>,
}

/// One point on the accuracy-over-time curve of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Stream position at the end of the window.
    pub at: usize,
    /// mAP over the window.
    pub map: f32,
    /// Number of frames the window actually covered. Full windows carry
    /// the evaluator's window size; the final flush may carry fewer.
    pub frames: usize,
}

/// Accumulates per-frame detections and ground truth, emitting mAP every
/// `window` frames.
pub struct StreamEvaluator {
    window: usize,
    dets: Vec<Vec<Detection>>,
    gts: Vec<Vec<GtBox>>,
    seen: usize,
    points: Vec<WindowPoint>,
}

impl StreamEvaluator {
    /// Creates an evaluator that reports every `window` frames.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        StreamEvaluator { window, dets: Vec::new(), gts: Vec::new(), seen: 0, points: Vec::new() }
    }

    /// Records one frame's detections against its ground truth.
    pub fn record(&mut self, frame: &Frame, detections: Vec<Detection>) {
        self.dets.push(detections);
        self.gts.push(frame.boxes.clone());
        self.seen += 1;
        if self.dets.len() >= self.window {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.dets.is_empty() {
            return;
        }
        let refs: Vec<&[GtBox]> = self.gts.iter().map(|g| g.as_slice()).collect();
        let map = mean_average_precision(&self.dets, &refs, MAP_IOU);
        self.points.push(WindowPoint { at: self.seen, map, frames: self.dets.len() });
        self.dets.clear();
        self.gts.clear();
    }

    /// Flushes any partial window and returns the curve.
    pub fn finish(mut self) -> Vec<WindowPoint> {
        self.flush();
        self.points
    }

    /// The curve so far (completed windows only).
    pub fn points(&self) -> &[WindowPoint] {
        &self.points
    }
}

/// Frame-weighted mean of the mAP curve — a scalar summary for ablation
/// tables.
///
/// Each window contributes in proportion to the frames it covered, so a
/// short final window (the tail flush of [`StreamEvaluator::finish`])
/// no longer carries the same weight as a full window — with a 500-frame
/// stream and a 64-frame window, the old equal weighting let the final
/// 52 frames swing the summary as hard as any 64. Points with
/// `frames == 0` (hand-constructed) fall back to an unweighted mean.
pub fn mean_map(points: &[WindowPoint]) -> f32 {
    if points.is_empty() {
        return 0.0;
    }
    let total: usize = points.iter().map(|p| p.frames).sum();
    if total == 0 {
        return points.iter().map(|p| p.map).sum::<f32>() / points.len() as f32;
    }
    points.iter().map(|p| p.map * p.frames as f32).sum::<f32>() / total as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{Condition, ObjectClass, SceneGen, TimeOfDay, Weather};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame() -> Frame {
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(0);
        gen.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day))
    }

    #[test]
    fn perfect_detections_give_full_map_windows() {
        let f = frame();
        let mut ev = StreamEvaluator::new(2);
        for _ in 0..4 {
            let dets: Vec<Detection> =
                f.boxes.iter().map(|b| Detection { bbox: *b, score: 0.9 }).collect();
            ev.record(&f, dets);
        }
        let pts = ev.finish();
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| (p.map - 1.0).abs() < 1e-5));
        assert_eq!(pts[0].at, 2);
        assert_eq!(pts[1].at, 4);
    }

    #[test]
    fn empty_detections_give_zero_map() {
        let f = frame();
        let mut ev = StreamEvaluator::new(1);
        ev.record(&f, Vec::new());
        let pts = ev.finish();
        assert_eq!(pts[0].map, 0.0);
    }

    #[test]
    fn partial_window_is_flushed_on_finish() {
        let f = frame();
        let mut ev = StreamEvaluator::new(10);
        ev.record(&f, Vec::new());
        let pts = ev.finish();
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn mean_map_averages() {
        let pts = vec![
            WindowPoint { at: 1, map: 0.2, frames: 1 },
            WindowPoint { at: 2, map: 0.4, frames: 1 },
        ];
        assert!((mean_map(&pts) - 0.3).abs() < 1e-6);
        assert_eq!(mean_map(&[]), 0.0);
    }

    #[test]
    fn mean_map_weights_windows_by_frame_count() {
        // Regression: a 10-frame window and a 2-frame tail used to
        // average 50/50; the tail must only carry its share.
        let pts = vec![
            WindowPoint { at: 10, map: 0.6, frames: 10 },
            WindowPoint { at: 12, map: 0.0, frames: 2 },
        ];
        let expected = (0.6 * 10.0) / 12.0;
        assert!((mean_map(&pts) - expected).abs() < 1e-6);
    }

    #[test]
    fn mean_map_falls_back_to_unweighted_without_frame_counts() {
        let pts = vec![
            WindowPoint { at: 1, map: 0.2, frames: 0 },
            WindowPoint { at: 2, map: 0.6, frames: 0 },
        ];
        assert!((mean_map(&pts) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn evaluator_reports_partial_window_frame_counts() {
        let f = frame();
        let mut ev = StreamEvaluator::new(2);
        for _ in 0..3 {
            ev.record(&f, Vec::new());
        }
        let pts = ev.finish();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].frames, 2);
        assert_eq!(pts[1].frames, 1);
    }

    #[test]
    fn wrong_class_detections_score_zero() {
        let f = frame();
        let mut ev = StreamEvaluator::new(1);
        // Predict everything as the wrong class.
        let dets: Vec<Detection> = f
            .boxes
            .iter()
            .map(|b| {
                let wrong =
                    if b.class == ObjectClass::Car { ObjectClass::Sign } else { ObjectClass::Car };
                Detection { bbox: GtBox { class: wrong, ..*b }, score: 0.9 }
            })
            .collect();
        ev.record(&f, dets);
        let pts = ev.finish();
        assert_eq!(pts[0].map, 0.0);
    }
}

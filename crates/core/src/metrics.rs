//! Windowed stream evaluation — the measurement behind Figure 9 and the
//! end-to-end rows of Tables 6–7 — plus pipeline-stage counters for the
//! decoupled SPECIALIZER.

use odin_data::{Frame, GtBox};
use odin_detect::{mean_average_precision, Detection, MAP_IOU};

/// Snapshot of the pipeline's interaction with SPECIALIZER: how much
/// training work is queued, running, and done, and how often the stream
/// was served by a stand-in while a cluster's own model was still being
/// built. `Odin::stats` returns one of these.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Training jobs handed to SPECIALIZER (inline runs count too).
    pub jobs_submitted: u64,
    /// Models trained and installed into the registry.
    pub models_installed: u64,
    /// Background jobs enqueued but not yet picked up by a worker
    /// (always 0 under `TrainingMode::Inline`).
    pub queue_depth: usize,
    /// Background jobs currently training on a worker (always 0 under
    /// `TrainingMode::Inline`).
    pub in_flight: usize,
    /// Total wall-clock spent training models, in milliseconds (worker
    /// time under `TrainingMode::Background`).
    pub train_wall_ms: f64,
    /// Frames served by the heavyweight teacher while their cluster's
    /// model was still collecting data, queued, or training.
    pub teacher_frames_while_pending: u64,
    /// Frames served by other clusters' models (SELECTOR covering the
    /// gap) while their own cluster's model was still collecting data,
    /// queued, or training.
    pub fallback_frames_while_pending: u64,
    /// Snapshots handed to the background writer (manual checkpoints and
    /// policy-triggered ones both count).
    pub snapshots_written: u64,
    /// Records appended to the drift-event WAL.
    pub wal_events_logged: u64,
}

/// One point on the accuracy-over-time curve of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Stream position at the end of the window.
    pub at: usize,
    /// mAP over the window.
    pub map: f32,
}

/// Accumulates per-frame detections and ground truth, emitting mAP every
/// `window` frames.
pub struct StreamEvaluator {
    window: usize,
    dets: Vec<Vec<Detection>>,
    gts: Vec<Vec<GtBox>>,
    seen: usize,
    points: Vec<WindowPoint>,
}

impl StreamEvaluator {
    /// Creates an evaluator that reports every `window` frames.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        StreamEvaluator { window, dets: Vec::new(), gts: Vec::new(), seen: 0, points: Vec::new() }
    }

    /// Records one frame's detections against its ground truth.
    pub fn record(&mut self, frame: &Frame, detections: Vec<Detection>) {
        self.dets.push(detections);
        self.gts.push(frame.boxes.clone());
        self.seen += 1;
        if self.dets.len() >= self.window {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.dets.is_empty() {
            return;
        }
        let refs: Vec<&[GtBox]> = self.gts.iter().map(|g| g.as_slice()).collect();
        let map = mean_average_precision(&self.dets, &refs, MAP_IOU);
        self.points.push(WindowPoint { at: self.seen, map });
        self.dets.clear();
        self.gts.clear();
    }

    /// Flushes any partial window and returns the curve.
    pub fn finish(mut self) -> Vec<WindowPoint> {
        self.flush();
        self.points
    }

    /// The curve so far (completed windows only).
    pub fn points(&self) -> &[WindowPoint] {
        &self.points
    }
}

/// Mean of the mAP curve — a scalar summary for ablation tables.
pub fn mean_map(points: &[WindowPoint]) -> f32 {
    if points.is_empty() {
        0.0
    } else {
        points.iter().map(|p| p.map).sum::<f32>() / points.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{Condition, ObjectClass, SceneGen, TimeOfDay, Weather};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame() -> Frame {
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(0);
        gen.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day))
    }

    #[test]
    fn perfect_detections_give_full_map_windows() {
        let f = frame();
        let mut ev = StreamEvaluator::new(2);
        for _ in 0..4 {
            let dets: Vec<Detection> =
                f.boxes.iter().map(|b| Detection { bbox: *b, score: 0.9 }).collect();
            ev.record(&f, dets);
        }
        let pts = ev.finish();
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| (p.map - 1.0).abs() < 1e-5));
        assert_eq!(pts[0].at, 2);
        assert_eq!(pts[1].at, 4);
    }

    #[test]
    fn empty_detections_give_zero_map() {
        let f = frame();
        let mut ev = StreamEvaluator::new(1);
        ev.record(&f, Vec::new());
        let pts = ev.finish();
        assert_eq!(pts[0].map, 0.0);
    }

    #[test]
    fn partial_window_is_flushed_on_finish() {
        let f = frame();
        let mut ev = StreamEvaluator::new(10);
        ev.record(&f, Vec::new());
        let pts = ev.finish();
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn mean_map_averages() {
        let pts = vec![WindowPoint { at: 1, map: 0.2 }, WindowPoint { at: 2, map: 0.4 }];
        assert!((mean_map(&pts) - 0.3).abs() < 1e-6);
        assert_eq!(mean_map(&[]), 0.0);
    }

    #[test]
    fn wrong_class_detections_score_zero() {
        let f = frame();
        let mut ev = StreamEvaluator::new(1);
        // Predict everything as the wrong class.
        let dets: Vec<Detection> = f
            .boxes
            .iter()
            .map(|b| {
                let wrong =
                    if b.class == ObjectClass::Car { ObjectClass::Sign } else { ObjectClass::Car };
                Detection { bbox: GtBox { class: wrong, ..*b }, score: 0.9 }
            })
            .collect();
        ev.record(&f, dets);
        let pts = ev.finish();
        assert_eq!(pts[0].map, 0.0);
    }
}

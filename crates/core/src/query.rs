//! Aggregation queries over video (§6.6).
//!
//! The canonical query is `SELECT COUNT(detections) FROM bdd USING MODEL
//! yolo_specialized WHERE class='car'`: per frame, count the detected
//! objects of a class. Query accuracy compares predicted counts against
//! ground truth.

use odin_data::{Frame, ObjectClass};
use odin_detect::Detection;

/// A COUNT(*) aggregation over one object class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountQuery {
    /// The class being counted (the `WHERE class=` predicate).
    pub class: ObjectClass,
}

impl CountQuery {
    /// Creates a count query for a class.
    pub fn new(class: ObjectClass) -> Self {
        CountQuery { class }
    }

    /// Evaluates the query on one frame's detections.
    pub fn count(&self, detections: &[Detection]) -> usize {
        detections.iter().filter(|d| d.bbox.class == self.class).count()
    }

    /// The ground-truth answer for a frame.
    pub fn ground_truth(&self, frame: &Frame) -> usize {
        frame.boxes.iter().filter(|b| b.class == self.class).count()
    }
}

/// Per-frame relative count accuracy, averaged over the stream:
/// `mean(1 − |pred − true| / max(pred, true, 1))`.
///
/// This symmetric relative-error form is 1.0 for exact counts, degrades
/// gracefully with both over- and under-counting, and never goes below 0.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn count_accuracy(predicted: &[usize], actual: &[usize]) -> f32 {
    assert_eq!(predicted.len(), actual.len(), "count vector length mismatch");
    if predicted.is_empty() {
        return 1.0;
    }
    let total: f32 = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &t)| {
            let denom = p.max(t).max(1) as f32;
            1.0 - (p as f32 - t as f32).abs() / denom
        })
        .sum();
    total / predicted.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::GtBox;

    fn det(class: ObjectClass) -> Detection {
        Detection { bbox: GtBox { class, x: 0.0, y: 0.0, w: 5.0, h: 5.0 }, score: 0.9 }
    }

    #[test]
    fn count_filters_by_class() {
        let q = CountQuery::new(ObjectClass::Car);
        let dets = vec![det(ObjectClass::Car), det(ObjectClass::Truck), det(ObjectClass::Car)];
        assert_eq!(q.count(&dets), 2);
    }

    #[test]
    fn exact_counts_are_perfect() {
        assert_eq!(count_accuracy(&[2, 3, 0], &[2, 3, 0]), 1.0);
    }

    #[test]
    fn overcounting_and_undercounting_penalized_symmetrically() {
        let over = count_accuracy(&[4], &[2]);
        let under = count_accuracy(&[2], &[4]);
        assert!((over - under).abs() < 1e-6);
        assert!(over < 1.0);
    }

    #[test]
    fn zero_vs_zero_is_exact() {
        assert_eq!(count_accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn completely_wrong_is_zero() {
        assert_eq!(count_accuracy(&[5], &[0]), 0.0);
    }

    #[test]
    fn empty_streams_are_vacuously_perfect() {
        assert_eq!(count_accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = count_accuracy(&[1], &[1, 2]);
    }
}

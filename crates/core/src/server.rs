//! Multi-stream sharded serving: N camera streams, one process.
//!
//! [`OdinServer`] fronts N per-stream [`Odin`] shards with one ingest
//! layer. The split follows the shard/shared divide:
//!
//! * **Per-stream shard state** — each stream keeps its own [`Odin`]:
//!   ingest window, drift detectors (cluster manager), telemetry
//!   registry and tracing roots, and checkpoint namespace
//!   (`<store>/streams/<id>/…`). Shards never read each other's state,
//!   so one camera's drift cannot contaminate another's detectors.
//! * **Process-wide shared state** — one [`SharedRegistry`] holds every
//!   stream's specialized models under disjoint id namespaces
//!   ([`NS_STRIDE`]), one [`TrainRouter`] feeds a single training pool
//!   from every shard (a drift burst on one camera borrows the whole
//!   training capacity), and the exposition endpoints merge per-shard
//!   telemetry under `stream="<id>"` labels.
//!
//! Frames enter through [`OdinServer::submit`] (or `POST
//! /ingest/<stream>` once [`OdinServer::serve`] is up), pass admission
//! control (per-stream queue cap → HTTP 429 backpressure), and are
//! routed to serving workers. Each worker owns a static subset of
//! shards (`stream % workers`), so every shard sees its frames in FIFO
//! order and per-shard results are deterministic regardless of how
//! many streams run concurrently; batched frames go through the
//! existing [`Odin::process_batch`], which is pinned identical to
//! per-frame processing.
//!
//! Checkpointing dedups shard-invariant weight sections: the encoder
//! and teacher are written once to `shared.odst`, per-shard snapshots
//! omit them, and [`OdinServer::restore_from_dir`] resolves the
//! sections back so every shard restores bit-identically.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use odin_data::Frame;
use odin_detect::Detector;
use odin_log::{read_after, Cursor, LogRecord, RecordKind, EVENT_LOG_FILE};
use odin_store::checkpoint::write_atomic;
use odin_store::{Checkpoint, Decoder, Encoder, StoreError};
use odin_telemetry::{
    chrome_trace, log_bounds, render_prometheus_grouped, Counter, FlightRecord, Gauge, Histogram,
    HttpHandlers, MetricsServer, Request, Response, TelemetrySnapshot,
};
use parking_lot::Mutex;

use crate::encoder::LatentEncoder;
use crate::pipeline::{FrameResult, Odin, OdinConfig, NS_STRIDE};
use crate::registry::{ModelRegistry, SharedRegistry};
use crate::specializer::Specializer;
use crate::store::{
    persist_frame, restore_frame, CheckpointPolicy, SHARED_SNAPSHOT_FILE, SNAPSHOT_FILE,
    STREAMS_DIR,
};
use crate::telemetry::Telemetry;
use crate::training::{TrainRouter, TrainingMode};

/// Configuration of the serving layer (the per-stream pipelines are
/// configured by the embedded [`OdinConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of concurrent streams (shards). At least 1.
    pub streams: usize,
    /// Serving worker threads. Shards are partitioned statically
    /// (worker `w` owns streams `w, w+W, w+2W, …`), which keeps every
    /// shard's frame order FIFO — the basis of per-shard determinism.
    pub workers: usize,
    /// Admission cap per stream: frames submitted but not yet answered.
    /// Beyond it, [`OdinServer::submit`] rejects with
    /// [`SubmitError::Backpressure`] (HTTP 429 on the ingest route).
    pub queue_cap: usize,
    /// Max frames per [`Odin::process_batch`] call when a worker drains
    /// its queue. Batching amortizes the encoder's im2col without
    /// changing results.
    pub batch_max: usize,
    /// Per-stream pipeline configuration. `training` selects the
    /// *shared* pool: `Background { workers }` builds one
    /// [`TrainRouter`] with that many workers serving every shard;
    /// `Inline` trains on the serving workers (deterministic).
    pub odin: OdinConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            streams: 4,
            workers: 2,
            queue_cap: 64,
            batch_max: 16,
            odin: OdinConfig::default(),
        }
    }
}

/// Why a frame was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The stream index is outside `0..streams`.
    UnknownStream(usize),
    /// The stream's admission queue is full; shed load upstream and
    /// retry (HTTP 429 on the ingest route).
    Backpressure {
        /// The stream that was over its cap.
        stream: usize,
        /// The queue depth observed at rejection.
        depth: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownStream(s) => write!(f, "unknown stream {s}"),
            SubmitError::Backpressure { stream, depth } => {
                write!(f, "stream {stream} queue full (depth {depth})")
            }
            SubmitError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Serializes a frame for `POST /ingest/<stream>` (the little-endian
/// `odin-store` frame codec, no container).
pub fn encode_ingest_frame(frame: &Frame) -> Vec<u8> {
    let mut enc = Encoder::new();
    persist_frame(frame, &mut enc);
    enc.into_bytes()
}

/// Parses a `POST /ingest/<stream>` body back into a frame.
pub fn decode_ingest_frame(bytes: &[u8]) -> Result<Frame, StoreError> {
    let mut dec = Decoder::new(bytes);
    let frame = restore_frame(&mut dec)?;
    dec.finish("ingest frame")?;
    Ok(frame)
}

/// One queued frame: where it goes, when it arrived, who is waiting.
struct Job {
    stream: usize,
    frame: Frame,
    submitted: Instant,
    reply: Sender<FrameResult>,
}

enum Msg {
    Job(Job),
    Stop,
}

/// Per-shard telemetry handles for the serving layer's own metrics.
/// They live in the *shard's* registry so the merged `/metrics`
/// exposition labels them `stream="<id>"`, and they are persisted with
/// the shard's checkpoint like every other metric. Replaced wholesale
/// when a shard is restored in place ([`OdinServer::restore_shard`]).
struct ShardHandles {
    telemetry: Telemetry,
    queue_gauge: Gauge,
    admitted: Counter,
    rejected: Counter,
    frame_ms: Histogram,
}

impl ShardHandles {
    fn for_pipeline(odin: &Odin) -> Self {
        let telemetry = odin.telemetry().clone();
        let reg = telemetry.registry();
        ShardHandles {
            queue_gauge: reg.gauge("odin_server_queue_depth"),
            admitted: reg.counter("odin_server_admitted_total"),
            rejected: reg.counter("odin_server_rejected_total"),
            frame_ms: reg.histogram("odin_server_frame_ms", &log_bounds(0.1, 10_000.0, 24)),
            telemetry,
        }
    }
}

struct ShardState {
    odin: Mutex<Odin>,
    handles: Mutex<ShardHandles>,
    /// Frames submitted but not yet answered (admission control).
    depth: AtomicUsize,
}

struct ServerInner {
    shards: Vec<Arc<ShardState>>,
    worker_txs: Vec<Sender<Msg>>,
    registry: SharedRegistry,
    router: Option<Arc<TrainRouter>>,
    queue_cap: usize,
    stopped: AtomicBool,
    /// Root store directory once [`OdinServer::enable_store`] /
    /// [`OdinServer::restore_from_dir`] has run; the `GET /events`
    /// route tails `<store>/streams/<id>/events.odlg` under it.
    store_dir: Mutex<Option<PathBuf>>,
}

impl ServerInner {
    fn submit(&self, stream: usize, frame: Frame) -> Result<Receiver<FrameResult>, SubmitError> {
        let shard = self.shards.get(stream).ok_or(SubmitError::UnknownStream(stream))?;
        if self.stopped.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        // Check-then-add: concurrent submitters can briefly overshoot
        // the cap by their own count — admission control bounds the
        // queue, it does not meter it exactly.
        let depth = shard.depth.load(Ordering::SeqCst);
        if depth >= self.queue_cap {
            shard.handles.lock().rejected.inc();
            return Err(SubmitError::Backpressure { stream, depth });
        }
        let depth = shard.depth.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let h = shard.handles.lock();
            h.admitted.inc();
            h.queue_gauge.set(depth as i64);
        }
        let (tx, rx) = unbounded();
        let job = Job { stream, frame, submitted: Instant::now(), reply: tx };
        let tx = &self.worker_txs[stream % self.worker_txs.len()];
        if tx.send(Msg::Job(job)).is_err() {
            shard.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(SubmitError::ShuttingDown);
        }
        Ok(rx)
    }

    fn render_metrics(&self) -> String {
        let labeled: Vec<(String, TelemetrySnapshot)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| (i.to_string(), s.handles.lock().telemetry.snapshot()))
            .collect();
        render_prometheus_grouped(&labeled)
    }

    fn render_trace(&self) -> String {
        // Merge the shards' flight recorders in stream order. Trace and
        // span ids are namespaced per stream (`stream << 40`), so the
        // merged export groups per stream and never collides.
        let mut merged = FlightRecord {
            spans: Vec::new(),
            events: Vec::new(),
            dropped_spans: 0,
            dropped_events: 0,
        };
        for shard in &self.shards {
            let rec = shard.handles.lock().telemetry.flight_record();
            merged.spans.extend(rec.spans);
            merged.events.extend(rec.events);
            merged.dropped_spans += rec.dropped_spans;
            merged.dropped_events += rec.dropped_events;
        }
        chrome_trace(&merged)
    }

    fn render_healthz(&self) -> String {
        let depths: Vec<String> =
            self.shards.iter().map(|s| s.depth.load(Ordering::SeqCst).to_string()).collect();
        let log_depths: Vec<String> = self
            .shards
            .iter()
            .map(|s| s.handles.lock().telemetry.event_log_queue_depth.get().to_string())
            .collect();
        format!(
            "{{\"status\":\"ok\",\"streams\":{},\"queue_cap\":{},\"queue_depths\":[{}],\"event_log_queue_depths\":[{}]}}",
            self.shards.len(),
            self.queue_cap,
            depths.join(","),
            log_depths.join(",")
        )
    }

    fn render_events(&self, req: &Request) -> Response {
        let Some(dir) = self.store_dir.lock().clone() else {
            return Response::text(
                "404 Not Found",
                "no store attached; /events serves the persistent event log\n",
            );
        };
        let paths: Vec<PathBuf> = (0..self.shards.len())
            .map(|i| dir.join(STREAMS_DIR).join(i.to_string()).join(EVENT_LOG_FILE))
            .collect();
        events_response(&paths, req)
    }

    fn route(&self, req: &Request) -> Option<Response> {
        if req.method == "GET" {
            return match req.path.as_str() {
                "/events" => Some(self.render_events(req)),
                "/flight" => Some(Response::ok_json(self.render_trace())),
                _ => None,
            };
        }
        if req.method != "POST" {
            return None;
        }
        let rest = req.path.strip_prefix("/ingest/")?;
        let Ok(stream) = rest.parse::<usize>() else {
            return Some(Response::text("404 Not Found", "bad stream id\n"));
        };
        let frame = match decode_ingest_frame(&req.body) {
            Ok(f) => f,
            Err(e) => return Some(Response::text("400 Bad Request", format!("bad frame: {e}\n"))),
        };
        Some(match self.submit(stream, frame) {
            Ok(rx) => match rx.recv() {
                Ok(res) => Response::ok_json(format!(
                    "{{\"stream\":{stream},\"detections\":{},\"served_by\":\"{:?}\",\"drift\":{}}}",
                    res.detections.len(),
                    res.served_by,
                    res.drift.is_some()
                )),
                Err(_) => Response::text("503 Service Unavailable", "server stopping\n"),
            },
            Err(e @ SubmitError::Backpressure { .. }) => {
                Response::text("429 Too Many Requests", format!("{e}\n"))
            }
            Err(e @ SubmitError::UnknownStream(_)) => {
                Response::text("404 Not Found", format!("{e}\n"))
            }
            Err(e @ SubmitError::ShuttingDown) => {
                Response::text("503 Service Unavailable", format!("{e}\n"))
            }
        })
    }
}

/// Longest a `GET /events` request may long-poll. Kept well under the
/// HTTP client/server read timeouts (5 s) so a quiet log returns an
/// empty batch instead of a dropped connection.
pub(crate) const EVENTS_MAX_WAIT_MS: u64 = 2_000;

/// Poll interval while a long-poll waits for new sealed records.
const EVENTS_POLL_MS: u64 = 25;

/// Shared `GET /events` implementation for the sharded server and the
/// single-pipeline [`Telemetry::serve`] route: one event-log path per
/// stream, one [`Cursor`] per path in the comma-joined `cursor` query
/// parameter. Reads only sealed segments ([`read_after`]), merges by
/// `(ts_us, stream, seq)`, and long-polls up to `wait_ms` when the
/// request would otherwise return nothing. A `kind` filter drops
/// non-matching records *after* the cursors advance, so a filtered
/// tail still makes progress through frame traffic.
pub(crate) fn events_response(paths: &[PathBuf], req: &Request) -> Response {
    let n = paths.len();
    let limit = req
        .query_param("limit")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(256)
        .clamp(1, 4096);
    let wait_ms = req
        .query_param("wait_ms")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0)
        .min(EVENTS_MAX_WAIT_MS);
    let kind = match req.query_param("kind") {
        None | Some("") => None,
        Some(s) => match RecordKind::parse(s) {
            Some(k) => Some(k),
            None => {
                return Response::text("400 Bad Request", format!("unknown kind: {s}\n"));
            }
        },
    };
    let mut cursors: Vec<Cursor> = match req.query_param("cursor") {
        None | Some("") => vec![Cursor::default(); n],
        Some(s) => {
            let parsed: Option<Vec<Cursor>> = s.split(',').map(Cursor::parse).collect();
            match parsed {
                Some(v) if v.len() == n => v,
                _ => {
                    return Response::text(
                        "400 Bad Request",
                        format!("bad cursor: expected {n} comma-separated seq:offset entries\n"),
                    );
                }
            }
        }
    };
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    let mut out: Vec<LogRecord> = Vec::new();
    loop {
        for (i, path) in paths.iter().enumerate() {
            match read_after(path, cursors[i], limit) {
                Ok(batch) => {
                    cursors[i] = batch.next;
                    out.extend(
                        batch.records.into_iter().filter(|r| kind.is_none_or(|k| r.kind == k)),
                    );
                }
                Err(e) => {
                    return Response::text(
                        "500 Internal Server Error",
                        format!("event log read failed: {e}\n"),
                    );
                }
            }
        }
        if !out.is_empty() || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(EVENTS_POLL_MS));
    }
    // Each stream's records arrive in seq order; the merge is stable
    // across streams by record time.
    out.sort_by_key(|r| (r.ts_us, r.stream, r.seq));
    let next: String = cursors.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
    let records: Vec<String> = out.iter().map(|r| r.to_json()).collect();
    Response::ok_json(format!(
        "{{\"cursor\":\"{next}\",\"count\":{},\"records\":[{}]}}",
        out.len(),
        records.join(",")
    ))
}

fn worker_loop(rx: Receiver<Msg>, shards: Vec<Arc<ShardState>>, batch_max: usize) {
    loop {
        let first = match rx.recv() {
            Ok(Msg::Job(j)) => j,
            Ok(Msg::Stop) | Err(_) => return,
        };
        let mut stop = false;
        let mut jobs = vec![first];
        while jobs.len() < batch_max.max(1) {
            match rx.try_recv() {
                Ok(Msg::Job(j)) => jobs.push(j),
                Ok(Msg::Stop) => {
                    stop = true;
                    break;
                }
                Err(_) => break,
            }
        }
        // Group by stream; BTreeMap insertion preserves each stream's
        // arrival order, and the channel is this shard's only producer,
        // so per-shard processing stays FIFO.
        let mut by_stream: BTreeMap<usize, Vec<Job>> = BTreeMap::new();
        for job in jobs {
            by_stream.entry(job.stream).or_default().push(job);
        }
        for (stream, jobs) in by_stream {
            let shard = &shards[stream];
            let frames: Vec<Frame> = jobs.iter().map(|j| j.frame.clone()).collect();
            let results = shard.odin.lock().process_batch(&frames);
            let handles = shard.handles.lock();
            for (job, result) in jobs.into_iter().zip(results) {
                handles.frame_ms.observe_ms(job.submitted.elapsed().as_secs_f64() * 1e3);
                let _ = job.reply.send(result);
                let depth = shard.depth.fetch_sub(1, Ordering::SeqCst) - 1;
                handles.queue_gauge.set(depth as i64);
            }
        }
        if stop {
            return;
        }
    }
}

/// The multi-stream ingest front end over N [`Odin`] shards. See the
/// module docs for the shard/shared state split.
pub struct OdinServer {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
    http: Option<MetricsServer>,
    cfg: ServerConfig,
}

impl OdinServer {
    /// Builds a server with `cfg.streams` fresh shards. Each shard gets
    /// its own encoder from `encoder_factory(stream)` (the factory must
    /// build identical encoders — shared-section checkpoint dedup
    /// assumes it), one shared `teacher`, and the seed
    /// `seed + stream` so shards explore deterministically but not in
    /// lock-step.
    pub fn build<F>(cfg: ServerConfig, mut encoder_factory: F, teacher: Detector, seed: u64) -> Self
    where
        F: FnMut(usize) -> Box<dyn LatentEncoder>,
    {
        let teacher = Arc::new(teacher);
        let registry = ModelRegistry::new().into_shared();
        let router = Self::build_router(cfg.odin.training, &teacher, cfg.odin);
        // Shards run Inline internally: background training flows
        // through the shared router attached below, never a private
        // per-shard pool.
        let shard_cfg = OdinConfig { training: TrainingMode::Inline, ..cfg.odin };
        let shards: Vec<Odin> = (0..cfg.streams.max(1))
            .map(|i| {
                Odin::with_teacher(
                    encoder_factory(i),
                    Arc::clone(&teacher),
                    shard_cfg,
                    seed.wrapping_add(i as u64),
                )
            })
            .collect();
        Self::assemble(cfg, shards, registry, router)
    }

    fn build_router(
        mode: TrainingMode,
        teacher: &Arc<Detector>,
        cfg: OdinConfig,
    ) -> Option<Arc<TrainRouter>> {
        match mode {
            TrainingMode::Inline => None,
            TrainingMode::Background { workers } => {
                // The router's worker spans record into a detached
                // telemetry (each job's SpanCtx still carries the
                // submitting shard's trace id, so per-stream traces
                // stay linked).
                let telemetry = Telemetry::new();
                telemetry.clear_sinks();
                Some(TrainRouter::new(
                    workers,
                    Specializer::new(cfg.specializer),
                    Arc::clone(teacher),
                    telemetry,
                ))
            }
        }
    }

    fn assemble(
        cfg: ServerConfig,
        pipelines: Vec<Odin>,
        registry: SharedRegistry,
        router: Option<Arc<TrainRouter>>,
    ) -> Self {
        let shards: Vec<Arc<ShardState>> = pipelines
            .into_iter()
            .enumerate()
            .map(|(i, mut odin)| {
                odin.set_snapshot_self_contained(false);
                odin.attach_shared(i, &registry, router.clone());
                Arc::new(ShardState {
                    handles: Mutex::new(ShardHandles::for_pipeline(&odin)),
                    odin: Mutex::new(odin),
                    depth: AtomicUsize::new(0),
                })
            })
            .collect();
        let n_workers = cfg.workers.max(1);
        let mut worker_txs = Vec::with_capacity(n_workers);
        let mut workers = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let (tx, rx) = unbounded::<Msg>();
            worker_txs.push(tx);
            let shards = shards.clone();
            let batch_max = cfg.batch_max;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("odin-serve-w{w}"))
                    .spawn(move || worker_loop(rx, shards, batch_max))
                    .expect("spawn serving worker"),
            );
        }
        let inner = Arc::new(ServerInner {
            shards,
            worker_txs,
            registry,
            router,
            queue_cap: cfg.queue_cap.max(1),
            stopped: AtomicBool::new(false),
            store_dir: Mutex::new(None),
        });
        OdinServer { inner, workers, http: None, cfg }
    }

    /// Number of streams this server shards.
    pub fn streams(&self) -> usize {
        self.inner.shards.len()
    }

    /// The process-wide shared model registry.
    pub fn registry(&self) -> SharedRegistry {
        Arc::clone(&self.inner.registry)
    }

    /// A stream's current admission-queue depth.
    pub fn queue_depth(&self, stream: usize) -> usize {
        self.inner.shards.get(stream).map(|s| s.depth.load(Ordering::SeqCst)).unwrap_or(0)
    }

    /// Runs `f` with exclusive access to one shard's pipeline (tests,
    /// reporting, store attachment). Blocks frame processing for that
    /// shard while held.
    pub fn with_shard<R>(&self, stream: usize, f: impl FnOnce(&mut Odin) -> R) -> R {
        f(&mut self.inner.shards[stream].odin.lock())
    }

    /// Enqueues a frame for `stream` and returns the receiver its
    /// result will arrive on. Admission control applies.
    pub fn submit(
        &self,
        stream: usize,
        frame: Frame,
    ) -> Result<Receiver<FrameResult>, SubmitError> {
        self.inner.submit(stream, frame)
    }

    /// [`OdinServer::submit`] + blocking wait for the result.
    pub fn process(&self, stream: usize, frame: Frame) -> Result<FrameResult, SubmitError> {
        let rx = self.submit(stream, frame)?;
        rx.recv().map_err(|_| SubmitError::ShuttingDown)
    }

    /// Blocks until every admitted frame has been answered.
    pub fn drain(&self) {
        while self.inner.shards.iter().any(|s| s.depth.load(Ordering::SeqCst) > 0) {
            std::thread::yield_now();
        }
    }

    /// Finishes all shards' outstanding background training (via the
    /// shared router) and installs the models.
    pub fn finish_training(&self) {
        self.drain();
        for shard in &self.inner.shards {
            shard.odin.lock().finish_training();
        }
    }

    /// Starts the HTTP front end on `addr` (port 0 for ephemeral) and
    /// returns the bound address. Endpoints: `POST /ingest/<stream>`
    /// (body: [`encode_ingest_frame`]; 200 with a result summary, 429
    /// under backpressure), `GET /metrics` (all shards merged, every
    /// sample labeled `stream="<id>"`), `GET /trace` and `GET /flight`
    /// (merged Chrome-trace of the live flight recorders), `GET
    /// /healthz` (liveness + queue depths + cap), and `GET
    /// /events?cursor=&kind=&limit=&wait_ms=` (cursor-paged long-poll
    /// tail of the per-stream event logs; requires
    /// [`OdinServer::enable_store`]).
    pub fn serve<A: std::net::ToSocketAddrs>(
        &mut self,
        addr: A,
    ) -> std::io::Result<std::net::SocketAddr> {
        let m = Arc::clone(&self.inner);
        let t = Arc::clone(&self.inner);
        let h = Arc::clone(&self.inner);
        let r = Arc::clone(&self.inner);
        let server = odin_telemetry::http::serve(
            addr,
            HttpHandlers {
                metrics: Arc::new(move || m.render_metrics()),
                trace: Arc::new(move || t.render_trace()),
                healthz: Arc::new(move || h.render_healthz()),
                route: Some(Arc::new(move |req: &Request| r.route(req))),
            },
        )?;
        let bound = server.addr();
        self.http = Some(server);
        Ok(bound)
    }

    /// The merged `/metrics` exposition (also available without the
    /// HTTP front end).
    pub fn render_metrics(&self) -> String {
        self.inner.render_metrics()
    }

    /// The merged `/healthz` body.
    pub fn render_healthz(&self) -> String {
        self.inner.render_healthz()
    }

    // -- Persistence ---------------------------------------------------

    /// Attaches a per-shard persistence runtime under
    /// `<dir>/streams/<id>/` (WAL + snapshot policy per shard) and
    /// writes the deduplicated shared sections to `<dir>/shared.odst`
    /// once.
    pub fn enable_store(&self, dir: &Path, policy: CheckpointPolicy) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        self.write_shared(dir)?;
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let sdir = dir.join(STREAMS_DIR).join(i.to_string());
            shard.odin.lock().enable_store(&sdir, policy)?;
        }
        *self.inner.store_dir.lock() = Some(dir.to_path_buf());
        Ok(())
    }

    fn write_shared(&self, dir: &Path) -> Result<(), StoreError> {
        let bytes = self.inner.shards[0].odin.lock().shared_sections_bytes()?;
        write_atomic(&dir.join(SHARED_SNAPSHOT_FILE), &bytes)
    }

    /// Writes a full checkpoint of every shard: `<dir>/shared.odst`
    /// (encoder + teacher, once) plus
    /// `<dir>/streams/<id>/snapshot.odst` per shard (local cluster ids,
    /// no shared sections). Quiesce first ([`OdinServer::drain`]) for a
    /// frame-boundary-consistent image.
    pub fn checkpoint_all(&self, dir: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        self.write_shared(dir)?;
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let sdir = dir.join(STREAMS_DIR).join(i.to_string());
            std::fs::create_dir_all(&sdir)?;
            shard.odin.lock().checkpoint(&sdir.join(SNAPSHOT_FILE))?;
        }
        Ok(())
    }

    /// Rebuilds a server from [`OdinServer::checkpoint_all`] /
    /// [`OdinServer::enable_store`] output: reads `shared.odst` once,
    /// restores every shard from its namespace directory (snapshot +
    /// WAL replay), and re-attaches the shared registry/router. Each
    /// shard comes back bit-identical to the one that wrote it.
    pub fn restore_from_dir(dir: &Path, cfg: ServerConfig) -> Result<Self, StoreError> {
        let shared = Checkpoint::read(&dir.join(SHARED_SNAPSHOT_FILE))?;
        let mut pipelines = Vec::with_capacity(cfg.streams);
        for i in 0..cfg.streams.max(1) {
            let sdir = dir.join(STREAMS_DIR).join(i.to_string());
            pipelines.push(Odin::restore_from_dir_with(&sdir, Some(&shared))?);
        }
        let registry = ModelRegistry::new().into_shared();
        let teacher = pipelines[0].teacher_handle();
        let router = Self::build_router(cfg.odin.training, &teacher, cfg.odin);
        let server = Self::assemble(cfg, pipelines, registry, router);
        *server.inner.store_dir.lock() = Some(dir.to_path_buf());
        Ok(server)
    }

    /// Restores ONE shard in place from a server checkpoint directory,
    /// leaving every other shard untouched (targeted recovery). The
    /// shard's namespace in the shared registry is cleared first so no
    /// stale post-checkpoint model survives the rollback.
    pub fn restore_shard(&self, stream: usize, dir: &Path) -> Result<(), StoreError> {
        if stream >= self.inner.shards.len() {
            return Err(StoreError::Malformed { context: "restore_shard: unknown stream" });
        }
        let shared = Checkpoint::read(&dir.join(SHARED_SNAPSHOT_FILE))?;
        let sdir = dir.join(STREAMS_DIR).join(stream.to_string());
        let mut odin = Odin::restore_from_dir_with(&sdir, Some(&shared))?;
        odin.set_snapshot_self_contained(false);
        {
            let mut reg = self.inner.registry.write();
            for id in reg.ids_in(stream * NS_STRIDE, (stream + 1) * NS_STRIDE) {
                reg.remove(id);
            }
        }
        odin.attach_shared(stream, &self.inner.registry, self.inner.router.clone());
        let shard = &self.inner.shards[stream];
        let mut slot = shard.odin.lock();
        *shard.handles.lock() = ShardHandles::for_pipeline(&odin);
        *slot = odin;
        Ok(())
    }

    /// Stops the HTTP front end and the serving workers. Queued frames
    /// already admitted are processed first; subsequent submits fail
    /// with [`SubmitError::ShuttingDown`]. Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(mut http) = self.http.take() {
            http.shutdown();
        }
        if !self.inner.stopped.swap(true, Ordering::SeqCst) {
            for tx in &self.inner.worker_txs {
                let _ = tx.send(Msg::Stop);
            }
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> ServerConfig {
        self.cfg
    }
}

impl Drop for OdinServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::HistogramEncoder;
    use crate::specializer::SpecializerConfig;
    use odin_data::{SceneGen, Subset};
    use odin_detect::DetectorArch;
    use odin_drift::ManagerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> ServerConfig {
        ServerConfig {
            streams: 2,
            workers: 2,
            queue_cap: 8,
            batch_max: 4,
            odin: OdinConfig {
                manager: ManagerConfig {
                    min_points: 12,
                    stable_window: 4,
                    kl_eps: 5e-3,
                    hist_hi: 8.0,
                    ..ManagerConfig::default()
                },
                specializer: SpecializerConfig {
                    arch: DetectorArch::Small,
                    frame_size: 48,
                    train_iters: 30,
                    distill_iters: 20,
                    batch_size: 4,
                },
                min_train_frames: 20,
                ..OdinConfig::default()
            },
        }
    }

    fn new_server(cfg: ServerConfig) -> OdinServer {
        let mut rng = StdRng::seed_from_u64(0);
        let teacher = Detector::heavy(48, &mut rng);
        let server = OdinServer::build(cfg, |_| Box::new(HistogramEncoder::new()), teacher, 42);
        for i in 0..server.streams() {
            server.with_shard(i, |o| o.telemetry().clear_sinks());
        }
        server
    }

    #[test]
    fn frames_route_to_their_shard_and_results_return() {
        let server = new_server(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(1);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 6);
        for (i, f) in frames.iter().enumerate() {
            let res = server.process(i % 2, f.clone()).expect("admitted");
            assert!(res.used_teacher || !res.detections.is_empty() || res.detections.is_empty());
        }
        server.drain();
        let s0 = server.with_shard(0, |o| o.telemetry().frames.get());
        let s1 = server.with_shard(1, |o| o.telemetry().frames.get());
        assert_eq!(s0, 3);
        assert_eq!(s1, 3);
    }

    #[test]
    fn unknown_stream_and_backpressure_are_rejected() {
        let server = new_server(ServerConfig { queue_cap: 1, ..quick_cfg() });
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(2);
        let frame = gen.subset_frames(&mut rng, Subset::Day, 1).remove(0);
        assert_eq!(server.submit(9, frame.clone()).err(), Some(SubmitError::UnknownStream(9)));
        // Saturate stream 0's queue far beyond its cap of 1: at least
        // one submit must hit backpressure (the workers race us, so the
        // exact count varies).
        let mut rejected = 0;
        let mut receivers = Vec::new();
        for _ in 0..50 {
            match server.submit(0, frame.clone()) {
                Ok(rx) => receivers.push(rx),
                Err(SubmitError::Backpressure { stream, .. }) => {
                    assert_eq!(stream, 0);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(rejected > 0, "queue cap 1 never produced backpressure");
        for rx in receivers {
            rx.recv().expect("admitted frames still answered");
        }
        let metrics = server.render_metrics();
        assert!(metrics.contains("odin_server_rejected_total{stream=\"0\"}"), "{metrics}");
    }

    #[test]
    fn metrics_are_labeled_per_stream_and_healthz_is_live() {
        let server = new_server(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(3);
        let f = gen.subset_frames(&mut rng, Subset::Day, 1).remove(0);
        server.process(0, f.clone()).expect("admitted");
        server.process(1, f).expect("admitted");
        let metrics = server.render_metrics();
        assert!(metrics.contains("odin_frames_total{stream=\"0\"} 1"), "{metrics}");
        assert!(metrics.contains("odin_frames_total{stream=\"1\"} 1"), "{metrics}");
        assert!(metrics.contains("odin_server_queue_depth{stream=\"0\"}"), "{metrics}");
        assert_eq!(metrics.matches("# TYPE odin_frames_total counter").count(), 1);
        let health = server.render_healthz();
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(health.contains("\"streams\":2"), "{health}");
    }

    #[test]
    fn http_ingest_round_trips_a_frame() {
        let mut server = new_server(quick_cfg());
        let addr = server.serve("127.0.0.1:0").expect("bind");
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(4);
        let frame = gen.subset_frames(&mut rng, Subset::Day, 1).remove(0);
        let body = encode_ingest_frame(&frame);
        let decoded = decode_ingest_frame(&body).expect("codec roundtrip");
        assert_eq!(decoded.image.data(), frame.image.data());
        let (status, body) = odin_telemetry::http::post(addr, "/ingest/1", &body).expect("ingest");
        assert!(status.contains("200"), "{status}: {body}");
        assert!(body.contains("\"stream\":1"), "{body}");
        let (status, _) =
            odin_telemetry::http::post(addr, "/ingest/99", &encode_ingest_frame(&frame))
                .expect("bad stream");
        assert!(status.contains("404"), "{status}");
        let (status, _) = odin_telemetry::http::post(addr, "/ingest/0", b"junk").expect("bad body");
        assert!(status.contains("400"), "{status}");
        let (status, body) = odin_telemetry::http::get(addr, "/healthz").expect("healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn per_stream_trace_ids_are_namespaced() {
        let server = new_server(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(5);
        let frames = gen.subset_frames(&mut rng, Subset::Night, 30);
        for f in &frames {
            server.process(0, f.clone()).expect("admitted");
            server.process(1, f.clone()).expect("admitted");
        }
        server.drain();
        for stream in 0..2u64 {
            let rec = server.with_shard(stream as usize, |o| o.telemetry().flight_record());
            let base = stream << 40;
            assert!(!rec.spans.is_empty());
            for span in &rec.spans {
                assert!(
                    span.id > base && span.id < (stream + 1) << 40,
                    "stream {stream} span id {} outside its namespace",
                    span.id
                );
                assert!(
                    span.trace > base && span.trace < (stream + 1) << 40,
                    "stream {stream} trace id {} outside its namespace",
                    span.trace
                );
            }
        }
    }
}

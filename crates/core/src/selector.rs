//! SELECTOR — model-ensemble selection policies (§5.3).
//!
//! Given a projected input and the current cluster state, SELECTOR picks
//! which specialized models process it and with what weights:
//!
//! * **KNN-U** — the k nearest clusters by centroid distance, equal
//!   weights,
//! * **KNN-W** — same clusters, weights inversely proportional to
//!   distance (Equation 8),
//! * **Δ-BM** — every cluster whose Δ-band contains the point (equal
//!   weights); falls back to KNN-W when no band matches,
//! * **MostRecent** — the ablation policy of Table 7 (−SELECTOR): always
//!   the newest model.

use odin_drift::ClusterManager;
use serde::{Deserialize, Serialize};

/// A model-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// k nearest clusters, unweighted.
    KnnUnweighted(usize),
    /// k nearest clusters, distance-weighted (Equation 8).
    KnnWeighted(usize),
    /// Clusters whose Δ-band contains the point; KNN-W fallback.
    DeltaBand,
    /// Always the most recently created cluster's model (the −SELECTOR
    /// ablation).
    MostRecent,
}

/// A weighted choice of cluster models. Weights sum to 1 when non-empty.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// `(cluster_id, weight)` pairs, highest weight first.
    pub models: Vec<(usize, f32)>,
    /// True when Δ-BM fell back to KNN-W (the point was outside every
    /// band — 8% of images in the paper's BDD run).
    pub used_fallback: bool,
}

impl Selection {
    /// An empty selection (no clusters exist yet).
    pub fn empty() -> Self {
        Selection { models: Vec::new(), used_fallback: false }
    }

    /// True if no model was selected.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// Applies a policy to a projected point.
pub fn select(policy: SelectionPolicy, manager: &ClusterManager, z: &[f32]) -> Selection {
    let mut distances = manager.distances(z);
    if distances.is_empty() {
        return Selection::empty();
    }
    distances.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
    match policy {
        SelectionPolicy::KnnUnweighted(k) => {
            let k = k.max(1).min(distances.len());
            let w = 1.0 / k as f32;
            Selection {
                models: distances[..k].iter().map(|&(id, _)| (id, w)).collect(),
                used_fallback: false,
            }
        }
        SelectionPolicy::KnnWeighted(k) => knn_weighted(&distances, k),
        SelectionPolicy::DeltaBand => {
            let mut hits: Vec<(usize, f32)> = Vec::new();
            for c in manager.clusters() {
                let d = c.distance_to(z);
                if c.band().contains(d) {
                    hits.push((c.id(), 0.0));
                }
            }
            if hits.is_empty() {
                let mut s = knn_weighted(&distances, 3);
                s.used_fallback = true;
                return s;
            }
            // Paper: overlapping bands share the input with equal weights.
            let w = 1.0 / hits.len() as f32;
            for h in &mut hits {
                h.1 = w;
            }
            Selection { models: hits, used_fallback: false }
        }
        SelectionPolicy::MostRecent => {
            let id =
                manager.clusters().iter().map(|c| c.id()).max().expect("non-empty cluster list");
            Selection { models: vec![(id, 1.0)], used_fallback: false }
        }
    }
}

/// Equation 8: weights inversely proportional to distance, normalized by
/// the farthest selected cluster.
fn knn_weighted(sorted_distances: &[(usize, f32)], k: usize) -> Selection {
    let k = k.max(1).min(sorted_distances.len());
    let nearest = &sorted_distances[..k];
    let dmax = nearest.last().expect("k >= 1").1.max(1e-6);
    let inv: Vec<f32> = nearest.iter().map(|&(_, d)| dmax / d.max(1e-6)).collect();
    let total: f32 = inv.iter().sum();
    let mut models: Vec<(usize, f32)> =
        nearest.iter().zip(inv.iter()).map(|(&(id, _), &w)| (id, w / total)).collect();
    models.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
    Selection { models, used_fallback: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_drift::ManagerConfig;

    fn manager_with_two_clusters() -> ClusterManager {
        let cfg = ManagerConfig {
            min_points: 15,
            stable_window: 4,
            kl_eps: 5e-3,
            ..ManagerConfig::default()
        };
        let mut m = ClusterManager::new(cfg);
        let mk = |center: f32, salt: usize, n: usize| -> Vec<Vec<f32>> {
            (0..n)
                .map(|i| (0..6).map(|j| center + ((i * 7 + j * 13 + salt) as f32).sin()).collect())
                .collect()
        };
        m.bootstrap(&mk(0.0, 0, 80));
        m.bootstrap(&mk(8.0, 1, 80));
        assert_eq!(m.clusters().len(), 2, "fixture should build two clusters");
        m
    }

    #[test]
    fn knn_u_weights_are_uniform() {
        let m = manager_with_two_clusters();
        let s = select(SelectionPolicy::KnnUnweighted(2), &m, &[0.0; 6]);
        assert_eq!(s.models.len(), 2);
        assert!((s.models[0].1 - 0.5).abs() < 1e-6);
        assert!((s.models[1].1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn knn_w_prefers_nearer_cluster() {
        let m = manager_with_two_clusters();
        let s = select(SelectionPolicy::KnnWeighted(2), &m, &[0.5; 6]);
        assert_eq!(s.models.len(), 2);
        assert_eq!(s.models[0].0, 0, "cluster 0 is nearer to the probe");
        assert!(s.models[0].1 > s.models[1].1);
        let total: f32 = s.models.iter().map(|m| m.1).sum();
        assert!((total - 1.0).abs() < 1e-5, "weights must normalize");
    }

    #[test]
    fn delta_band_falls_back_outside_all_bands() {
        let m = manager_with_two_clusters();
        // A point far from both clusters: outside every band.
        let s = select(SelectionPolicy::DeltaBand, &m, &[100.0; 6]);
        assert!(s.used_fallback);
        assert!(!s.is_empty());
    }

    #[test]
    fn delta_band_uses_band_membership_when_available() {
        let m = manager_with_two_clusters();
        // A typical member of cluster 1 (on its shell).
        let probe: Vec<f32> = (0..6).map(|j| 8.0 + ((3 * 7 + j * 13 + 1) as f32).sin()).collect();
        let s = select(SelectionPolicy::DeltaBand, &m, &probe);
        if !s.used_fallback {
            assert!(s.models.iter().any(|&(id, _)| id == 1));
            let total: f32 = s.models.iter().map(|m| m.1).sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn most_recent_picks_newest_cluster() {
        let m = manager_with_two_clusters();
        let s = select(SelectionPolicy::MostRecent, &m, &[0.0; 6]);
        assert_eq!(s.models, vec![(1, 1.0)]);
    }

    #[test]
    fn empty_manager_gives_empty_selection() {
        let m = ClusterManager::new(ManagerConfig::default());
        let s = select(SelectionPolicy::KnnWeighted(3), &m, &[0.0; 6]);
        assert!(s.is_empty());
    }

    #[test]
    fn k_larger_than_cluster_count_is_clamped() {
        let m = manager_with_two_clusters();
        let s = select(SelectionPolicy::KnnUnweighted(10), &m, &[0.0; 6]);
        assert_eq!(s.models.len(), 2);
    }
}

//! The latent-projection interface of DETECTOR.
//!
//! ODIN's drift machinery works on low-dimensional latents; the
//! projection from pixels is pluggable. The paper's projection is the
//! DA-GAN encoder ([`DaGanEncoder`]); [`HistogramEncoder`] is a cheap
//! handcrafted-feature alternative used for fast tests and as the
//! "is a learned projection even necessary?" ablation.

use odin_data::Image;
use odin_gan::{DaGan, DaGanConfig};
use odin_tensor::Tensor;

/// A serializable description of an encoder's full state, produced by
/// [`LatentEncoder::snapshot`] for pipeline checkpoints. Custom encoders
/// that keep no state beyond what a constructor rebuilds should return
/// [`EncoderSnapshot::Unsupported`] (the default), which makes
/// `Odin::checkpoint` fail with a clear reason instead of silently
/// writing an unrestorable file.
pub enum EncoderSnapshot {
    /// The stateless [`HistogramEncoder`].
    Histogram,
    /// A [`DaGanEncoder`]: the DA-GAN's configuration plus its flat
    /// parameter buffer ([`DaGan::export_params`]).
    DaGan {
        /// Architecture configuration the model was built with.
        cfg: DaGanConfig,
        /// Flat parameter buffer (all four component networks).
        params: Vec<f32>,
    },
    /// The encoder cannot be snapshotted; carries its name for the
    /// error message.
    Unsupported(&'static str),
}

/// Anything that can project an image to a latent vector.
pub trait LatentEncoder: Send {
    /// Projects one image.
    fn project(&mut self, image: &Image) -> Vec<f32>;

    /// Projects a batch (default: one at a time).
    fn project_batch(&mut self, images: &[&Image]) -> Vec<Vec<f32>> {
        images.iter().map(|im| self.project(im)).collect()
    }

    /// Latent dimensionality.
    fn latent_dim(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Serializable state for pipeline checkpoints. Defaults to
    /// [`EncoderSnapshot::Unsupported`].
    fn snapshot(&self) -> EncoderSnapshot {
        EncoderSnapshot::Unsupported(self.name())
    }
}

/// The paper's projection: a trained DA-GAN encoder.
pub struct DaGanEncoder {
    model: DaGan,
}

impl DaGanEncoder {
    /// Wraps a (typically trained) DA-GAN.
    pub fn new(model: DaGan) -> Self {
        DaGanEncoder { model }
    }

    /// Access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut DaGan {
        &mut self.model
    }
}

impl LatentEncoder for DaGanEncoder {
    fn project(&mut self, image: &Image) -> Vec<f32> {
        let z = self.model.encode_images(&[image]);
        z.row(0).into_vec()
    }

    fn project_batch(&mut self, images: &[&Image]) -> Vec<Vec<f32>> {
        if images.is_empty() {
            return Vec::new();
        }
        let z = self.model.encode_images(images);
        (0..images.len()).map(|i| z.row(i).into_vec()).collect()
    }

    fn latent_dim(&self) -> usize {
        self.model.config().latent
    }

    fn name(&self) -> &'static str {
        "da-gan"
    }

    fn snapshot(&self) -> EncoderSnapshot {
        EncoderSnapshot::DaGan { cfg: *self.model.config(), params: self.model.export_params() }
    }
}

/// A handcrafted global-appearance descriptor: per-channel means and
/// standard deviations plus an 8-bin brightness histogram (14 dims for
/// RGB).
///
/// Captures exactly the signals that distinguish BDD conditions
/// (illumination level, color cast, contrast) without any training; it
/// cannot capture *content*, which is why the learned DA-GAN projection
/// is the paper's answer for general drift.
#[derive(Debug, Default, Clone, Copy)]
pub struct HistogramEncoder;

impl HistogramEncoder {
    /// Creates the encoder (stateless).
    pub fn new() -> Self {
        Self
    }

    /// Feature dimensionality for a 3-channel image.
    pub const DIM: usize = 14;
}

impl LatentEncoder for HistogramEncoder {
    fn project(&mut self, image: &Image) -> Vec<f32> {
        let t: Tensor = image.to_tensor();
        let c = image.channels();
        let plane = image.height() * image.width();
        let mut feats = Vec::with_capacity(Self::DIM);
        // Per-channel mean and std (scaled up so distances are O(1)).
        for ch in 0..3 {
            let ch_eff = ch.min(c - 1);
            let slice = &t.data()[ch_eff * plane..(ch_eff + 1) * plane];
            let mean: f32 = slice.iter().sum::<f32>() / plane as f32;
            let var: f32 =
                slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / plane as f32;
            feats.push(mean * 4.0);
            feats.push(var.sqrt() * 4.0);
        }
        // 8-bin global brightness histogram.
        let mut hist = [0.0f32; 8];
        for &v in t.data() {
            let b = ((v * 8.0) as usize).min(7);
            hist[b] += 1.0;
        }
        let n = t.numel() as f32;
        for h in hist {
            feats.push(h / n * 8.0);
        }
        feats
    }

    fn latent_dim(&self) -> usize {
        Self::DIM
    }

    fn name(&self) -> &'static str {
        "histogram"
    }

    fn snapshot(&self) -> EncoderSnapshot {
        EncoderSnapshot::Histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{Condition, SceneGen, TimeOfDay, Weather};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_encoder_dim_matches() {
        let mut e = HistogramEncoder::new();
        let img = Image::new(3, 16, 16);
        let z = e.project(&img);
        assert_eq!(z.len(), e.latent_dim());
    }

    #[test]
    fn histogram_separates_day_and_night() {
        let mut e = HistogramEncoder::new();
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(0);
        let day = gen.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day));
        let day2 = gen.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day));
        let night = gen.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Night));
        let zd = e.project(&day.image);
        let zd2 = e.project(&day2.image);
        let zn = e.project(&night.image);
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        assert!(
            dist(&zd, &zn) > 2.0 * dist(&zd, &zd2),
            "day/night latent distance should dominate day/day"
        );
    }

    #[test]
    fn dagan_encoder_projects_batches() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = odin_gan::DaGanConfig {
            channels: 3,
            size: 48,
            latent: 16,
            width: 4,
            lr: 1e-3,
            lambda_r: 0.5,
            denoise_std: 0.25,
        };
        let mut e = DaGanEncoder::new(DaGan::new(cfg, &mut rng));
        let imgs = vec![Image::new(3, 48, 48); 3];
        let refs: Vec<&Image> = imgs.iter().collect();
        let zs = e.project_batch(&refs);
        assert_eq!(zs.len(), 3);
        assert_eq!(zs[0].len(), 16);
        assert_eq!(e.latent_dim(), 16);
    }

    #[test]
    fn grayscale_images_are_handled() {
        let mut e = HistogramEncoder::new();
        let img = Image::new(1, 8, 8);
        assert_eq!(e.project(&img).len(), HistogramEncoder::DIM);
    }
}

//! Lightweight DNN filters for approximate aggregation queries (§6.6,
//! Figure 10).
//!
//! A filter is a tiny binary CNN that predicts whether a frame contains
//! any object of a class; frames it rejects skip the heavyweight
//! detector entirely, trading a little query accuracy for throughput
//! (the probabilistic-predicates idea of Lu et al., adapted to drift:
//! ODIN-FILTER deploys one *specialized* filter per cluster, ODIN-PP a
//! single unspecialized one).

use odin_data::{Frame, Image, ObjectClass};
use odin_tensor::layers::{Conv2d, Dense, GlobalMaxPool, LeakyRelu};
use odin_tensor::optim::{Adam, Optimizer};
use odin_tensor::{loss, Layer, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// A binary contains-class filter.
pub struct BinaryFilter {
    net: Sequential,
    opt: Adam,
    class: ObjectClass,
    size: usize,
    /// Decision threshold: frames with probability below it are skipped.
    pub threshold: f32,
}

impl BinaryFilter {
    /// Builds an untrained filter for `size`×`size` frames ("a DNN with 3
    /// convolutional layers is sufficient", §6.6).
    pub fn new(class: ObjectClass, size: usize, rng: &mut StdRng) -> Self {
        let net = Sequential::new()
            .push(Conv2d::k3(3, 6, 2, rng))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(6, 8, 2, rng))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(8, 12, 2, rng))
            .push(LeakyRelu::default())
            .push(GlobalMaxPool::new())
            .push(Dense::new(12, 1, rng));
        BinaryFilter { net, opt: Adam::new(2e-3), class, size, threshold: 0.4 }
    }

    /// The class this filter gates.
    pub fn class(&self) -> ObjectClass {
        self.class
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.net.num_params()
    }

    /// Probability that the frame contains at least one object of the
    /// filter's class.
    pub fn prob(&mut self, image: &Image) -> f32 {
        let img = if image.height() == self.size && image.width() == self.size {
            image.clone()
        } else {
            image.resize_nearest(self.size, self.size)
        };
        let out = self.net.forward(&img.to_batch_tensor(), false);
        odin_tensor::ops::sigmoid(out.data()[0])
    }

    /// The boolean gate: should the heavyweight model process this frame?
    pub fn pass(&mut self, image: &Image) -> bool {
        self.prob(image) >= self.threshold
    }

    /// Trains the filter on frames labeled by ground-truth presence of
    /// the class.
    pub fn train(
        &mut self,
        rng: &mut StdRng,
        frames: &[Frame],
        iters: usize,
        batch_size: usize,
    ) -> Vec<f32> {
        assert!(!frames.is_empty(), "cannot train a filter on zero frames");
        (0..iters)
            .map(|_| {
                let picks: Vec<&Frame> =
                    (0..batch_size).map(|_| &frames[rng.gen_range(0..frames.len())]).collect();
                let images: Vec<Image> = picks.iter().map(|f| f.image.clone()).collect();
                let batch = Image::batch(&images);
                let targets =
                    Tensor::from_vec(
                        picks
                            .iter()
                            .map(|f| {
                                if f.boxes.iter().any(|b| b.class == self.class) {
                                    1.0
                                } else {
                                    0.0
                                }
                            })
                            .collect(),
                        &[batch_size, 1],
                    );
                let logits = self.net.forward(&batch, true);
                let (l, grad) = loss::bce_with_logits(&logits, &targets);
                self.net.backward(&grad);
                self.opt.step(&mut self.net.params_grads());
                self.net.zero_grad();
                l
            })
            .collect()
    }

    /// Filter accuracy (fraction of frames whose gate decision matches
    /// ground truth).
    pub fn accuracy(&mut self, frames: &[Frame]) -> f32 {
        if frames.is_empty() {
            return 1.0;
        }
        let correct = frames
            .iter()
            .filter(|f| {
                let truth = f.boxes.iter().any(|b| b.class == self.class);
                self.pass(&f.image) == truth
            })
            .count();
        correct as f32 / frames.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{SceneGen, Subset};
    use rand::SeedableRng;

    #[test]
    fn filter_is_tiny() {
        let mut rng = StdRng::seed_from_u64(0);
        let f = BinaryFilter::new(ObjectClass::Car, 48, &mut rng);
        assert!(f.num_params() < 3000, "filter has {} params; should be tiny", f.num_params());
    }

    #[test]
    fn training_improves_gate_accuracy() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = SceneGen::new(48);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 120);
        let test = gen.subset_frames(&mut rng, Subset::Day, 40);
        let mut filter = BinaryFilter::new(ObjectClass::Truck, 48, &mut rng);
        let before = filter.accuracy(&test);
        filter.train(&mut rng, &frames, 250, 8);
        let after = filter.accuracy(&test);
        assert!(after >= before, "filter accuracy regressed: {before} -> {after}");
        assert!(after > 0.5, "trained filter accuracy {after} is no better than chance");
    }

    #[test]
    fn prob_is_a_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut f = BinaryFilter::new(ObjectClass::Car, 48, &mut rng);
        let p = f.prob(&Image::new(3, 48, 48));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn foreign_sizes_are_resized() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut f = BinaryFilter::new(ObjectClass::Car, 48, &mut rng);
        let _ = f.prob(&Image::new(3, 64, 64));
    }
}

//! The model attic: an LSH-indexed archive of evicted clusters' models.
//!
//! Most real-world drift is *recurring* — the same night/rain/fog
//! regimes come back. When the cluster cap evicts a cluster, the
//! pipeline archives its [`ClusterSignature`] (centroid + Δ-band + KL
//! histogram) and served model here instead of discarding them. When a
//! later drift event promotes a cluster whose centroid LSH-matches an
//! archived signature within [`AtticConfig::match_threshold`], the
//! cached model is **reinstalled** through the normal install gate —
//! recovery latency drops from SPECIALIZER train time to a registry
//! insert.
//!
//! The attic is capped by [`AtticConfig::byte_budget`] with
//! least-recently-archived eviction, and is fully persisted (checkpoint
//! section + WAL archive events) so a restored pipeline recognizes
//! regimes from before the restart. The LSH index is rebuilt
//! deterministically from the entries on every mutation — signatures
//! are never removed from an `LshIndex` in place, so rebuild-on-change
//! keeps lookups exact and checkpoint encodings canonical.

use odin_detect::Detector;
use odin_drift::{ClusterSignature, LshIndex};
use odin_store::{Decoder, Encoder, Persist, StoreError};

use crate::registry::ModelKind;
use crate::store::{persist_detector, persist_model_kind, restore_detector, restore_model_kind};

/// Fixed seed for the attic's LSH hyperplanes — a constant so every
/// pipeline (and every restore) builds the identical index.
const ATTIC_LSH_SEED: u64 = 0xA77C;
/// Hash tables in the attic LSH index.
const ATTIC_LSH_TABLES: usize = 4;
/// Hyperplanes per table.
const ATTIC_LSH_BITS: usize = 8;

/// Attic knobs carried inside `OdinConfig`. `Copy` so the core config
/// stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtticConfig {
    /// Master switch; when false evicted models are dropped (the
    /// pre-attic behaviour) and drift never probes the archive.
    pub enabled: bool,
    /// Approximate cap on archived bytes (signatures + model weights).
    /// When exceeded, least-recently-archived entries are dropped. At
    /// least one entry is always retained.
    pub byte_budget: usize,
    /// Maximum centroid distance for a signature match. Tighter means
    /// fewer false reinstalls; looser means more retrains avoided.
    pub match_threshold: f32,
}

impl Default for AtticConfig {
    fn default() -> Self {
        AtticConfig { enabled: false, byte_budget: 64 << 20, match_threshold: 2.0 }
    }
}

impl AtticConfig {
    /// Enabled with default sizing.
    pub fn enabled() -> Self {
        AtticConfig { enabled: true, ..Default::default() }
    }
}

/// One archived model: the evicted cluster's signature, its detector
/// (f32 weights — int8 serving is re-derived at reinstall), and enough
/// provenance to re-enter the registry.
pub(crate) struct AtticEntry {
    /// The evicted cluster's id (provenance only; a reinstall targets
    /// the *new* cluster's id).
    pub cluster_id: usize,
    /// Centroid + Δ-band + KL histogram at eviction time.
    pub signature: ClusterSignature,
    /// Lite or Specialized.
    pub kind: ModelKind,
    /// The archived f32 detector.
    pub detector: Detector,
    /// Whether the model was being served int8 when archived.
    pub quantized: bool,
    /// Archive-order stamp used by the byte-budget LRU.
    pub stamp: u64,
}

impl AtticEntry {
    fn approx_bytes(&self) -> usize {
        self.signature.approx_bytes() + self.detector.param_bytes() + 64
    }
}

/// The archive itself: entries plus a deterministic LSH index over
/// their signature centroids.
pub(crate) struct ModelAttic {
    cfg: AtticConfig,
    entries: Vec<AtticEntry>,
    /// Monotonic archive counter (stamps entries for LRU; persisted so
    /// eviction order survives a restore).
    next_stamp: u64,
    /// Rebuilt from `entries` on every mutation; `None` while empty
    /// (the latent dimensionality is unknown until the first archive).
    index: Option<LshIndex>,
}

impl ModelAttic {
    /// An empty attic.
    pub fn new(cfg: AtticConfig) -> Self {
        ModelAttic { cfg, entries: Vec::new(), next_stamp: 0, index: None }
    }

    /// Number of archived models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate archived bytes (signatures + f32 weights).
    pub fn bytes(&self) -> usize {
        self.entries.iter().map(AtticEntry::approx_bytes).sum()
    }

    fn rebuild_index(&mut self) {
        if self.entries.is_empty() {
            self.index = None;
            return;
        }
        let dim = self.entries[0].signature.centroid().len();
        let mut index = LshIndex::new(dim, ATTIC_LSH_TABLES, ATTIC_LSH_BITS, ATTIC_LSH_SEED);
        for e in &self.entries {
            index.insert(e.signature.centroid().to_vec());
        }
        self.index = Some(index);
    }

    /// Archives one evicted model, then enforces the byte budget by
    /// dropping least-recently-archived entries (never the one just
    /// added). Returns how many entries the budget evicted.
    pub fn archive(
        &mut self,
        cluster_id: usize,
        signature: ClusterSignature,
        kind: ModelKind,
        detector: Detector,
        quantized: bool,
    ) -> usize {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.entries.push(AtticEntry { cluster_id, signature, kind, detector, quantized, stamp });
        let mut evicted = 0;
        while self.bytes() > self.cfg.byte_budget && self.entries.len() > 1 {
            let (oldest, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .expect("non-empty attic");
            self.entries.remove(oldest);
            evicted += 1;
        }
        self.rebuild_index();
        evicted
    }

    /// LSH-matches a promoted cluster's centroid against the archived
    /// signatures: the nearest entry within
    /// [`AtticConfig::match_threshold`], as `(entry_index, distance)`.
    pub fn lookup(&self, centroid: &[f32]) -> Option<(usize, f32)> {
        let index = self.index.as_ref()?;
        if centroid.len() != self.entries[0].signature.centroid().len() {
            return None;
        }
        let (id, dist) = index.nearest(centroid)?;
        (dist <= self.cfg.match_threshold).then_some((id, dist))
    }

    /// Removes and returns the matched entry (a reinstall consumes it;
    /// the cluster re-archives on its next eviction).
    pub fn take(&mut self, idx: usize) -> AtticEntry {
        let entry = self.entries.remove(idx);
        self.rebuild_index();
        entry
    }

    /// [`ModelAttic::take`] keyed by the archived (source) cluster id —
    /// the WAL-replay form: `AtticTake` records name the entry by its
    /// provenance id, which is unique because cluster ids are never
    /// reused. Returns `None` when no such entry exists (e.g. it was
    /// LRU-evicted between archive and take; the caller retrains).
    pub fn take_by_source(&mut self, source_id: usize) -> Option<AtticEntry> {
        let idx = self.entries.iter().position(|e| e.cluster_id == source_id)?;
        Some(self.take(idx))
    }

    /// Borrow of all entries (tests and doc tooling).
    #[cfg(test)]
    pub fn entries(&self) -> &[AtticEntry] {
        &self.entries
    }
}

impl Persist for ModelAttic {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_bool(self.cfg.enabled);
        enc.put_usize(self.cfg.byte_budget);
        enc.put_f32(self.cfg.match_threshold);
        enc.put_u64(self.next_stamp);
        enc.put_usize(self.entries.len());
        for e in &self.entries {
            enc.put_usize(e.cluster_id);
            e.signature.persist(enc);
            persist_model_kind(e.kind, enc);
            persist_detector(&e.detector, enc);
            enc.put_bool(e.quantized);
            enc.put_u64(e.stamp);
        }
        // The LSH index is not persisted: it is a pure function of the
        // entries and the fixed seed, so restore rebuilds it.
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let cfg = AtticConfig {
            enabled: dec.take_bool("ModelAttic.enabled")?,
            byte_budget: dec.take_usize("ModelAttic.byte_budget")?,
            match_threshold: dec.take_f32("ModelAttic.match_threshold")?,
        };
        let next_stamp = dec.take_u64("ModelAttic.next_stamp")?;
        let n = dec.take_usize("ModelAttic.entries len")?;
        let mut entries = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            let cluster_id = dec.take_usize("AtticEntry.cluster_id")?;
            let signature = ClusterSignature::restore(dec)?;
            let kind = restore_model_kind(dec)?;
            let detector = restore_detector(dec)?;
            let quantized = dec.take_bool("AtticEntry.quantized")?;
            let stamp = dec.take_u64("AtticEntry.stamp")?;
            entries.push(AtticEntry { cluster_id, signature, kind, detector, quantized, stamp });
        }
        if entries.iter().any(|e| e.stamp >= next_stamp) {
            return Err(StoreError::Malformed { context: "ModelAttic stamp invariant" });
        }
        let dim = entries.first().map(|e| e.signature.centroid().len());
        if let Some(dim) = dim {
            if entries.iter().any(|e| e.signature.centroid().len() != dim) {
                return Err(StoreError::Malformed { context: "ModelAttic centroid dims" });
            }
        }
        let mut attic = ModelAttic { cfg, entries, next_stamp, index: None };
        attic.rebuild_index();
        Ok(attic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_drift::Cluster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shell(center: &[f32], r: f32, n: usize, salt: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                center
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| c + r * ((i * 7 + j * 13 + salt) as f32).sin())
                    .collect()
            })
            .collect()
    }

    fn sig(center: &[f32], salt: usize) -> ClusterSignature {
        let c = Cluster::from_points(salt, shell(center, 0.5, 30, salt), 0.75, 16);
        ClusterSignature::from_cluster(&c)
    }

    fn det(seed: u64) -> Detector {
        let mut rng = StdRng::seed_from_u64(seed);
        Detector::small(48, &mut rng)
    }

    fn cfg() -> AtticConfig {
        AtticConfig { enabled: true, byte_budget: 1 << 30, match_threshold: 2.0 }
    }

    #[test]
    fn archive_then_lookup_hits_within_threshold() {
        let mut attic = ModelAttic::new(cfg());
        attic.archive(3, sig(&[0.0; 8], 0), ModelKind::Specialized, det(1), false);
        attic.archive(5, sig(&[20.0; 8], 1), ModelKind::Lite, det(2), true);
        assert_eq!(attic.len(), 2);

        // A centroid near the first archived regime matches it.
        let near = attic.lookup(attic.entries()[0].signature.centroid()).unwrap();
        assert_eq!(attic.entries()[near.0].cluster_id, 3);
        assert_eq!(near.1, 0.0);

        // A centroid far from everything misses.
        assert!(attic.lookup(&[100.0; 8]).is_none());

        let taken = attic.take(near.0);
        assert_eq!(taken.cluster_id, 3);
        assert_eq!(attic.len(), 1);
        assert_eq!(attic.entries()[0].cluster_id, 5);
    }

    #[test]
    fn byte_budget_evicts_least_recently_archived() {
        let per_entry = {
            let mut probe = ModelAttic::new(cfg());
            probe.archive(0, sig(&[0.0; 8], 0), ModelKind::Lite, det(0), false);
            probe.bytes()
        };
        let mut attic = ModelAttic::new(AtticConfig { byte_budget: per_entry * 2, ..cfg() });
        assert_eq!(attic.archive(0, sig(&[0.0; 8], 0), ModelKind::Lite, det(0), false), 0);
        assert_eq!(attic.archive(1, sig(&[10.0; 8], 1), ModelKind::Lite, det(1), false), 0);
        // Third entry overflows the budget: the oldest (cluster 0) goes.
        assert_eq!(attic.archive(2, sig(&[-10.0; 8], 2), ModelKind::Lite, det(2), false), 1);
        assert_eq!(attic.len(), 2);
        let ids: Vec<usize> = attic.entries().iter().map(|e| e.cluster_id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(attic.bytes() <= per_entry * 2);
    }

    #[test]
    fn tiny_budget_always_keeps_the_newest_entry() {
        let mut attic = ModelAttic::new(AtticConfig { byte_budget: 1, ..cfg() });
        attic.archive(0, sig(&[0.0; 8], 0), ModelKind::Lite, det(0), false);
        assert_eq!(attic.archive(1, sig(&[10.0; 8], 1), ModelKind::Lite, det(1), false), 1);
        assert_eq!(attic.len(), 1);
        assert_eq!(attic.entries()[0].cluster_id, 1);
    }

    #[test]
    fn persist_roundtrip_is_bit_exact_and_lookup_identical() {
        let mut attic = ModelAttic::new(cfg());
        attic.archive(3, sig(&[0.0; 8], 0), ModelKind::Specialized, det(1), true);
        attic.archive(5, sig(&[20.0; 8], 1), ModelKind::Lite, det(2), false);
        let bytes = attic.to_store_bytes();
        let back = ModelAttic::from_store_bytes(&bytes, "attic").unwrap();
        assert_eq!(back.to_store_bytes(), bytes);
        assert_eq!(back.len(), attic.len());
        assert_eq!(back.bytes(), attic.bytes());
        let q = vec![0.1; 8];
        assert_eq!(back.lookup(&q), attic.lookup(&q));
        assert_eq!(back.lookup(&[100.0; 8]), attic.lookup(&[100.0; 8]));
    }

    #[test]
    fn restore_rejects_stamp_violation() {
        let mut attic = ModelAttic::new(cfg());
        attic.archive(0, sig(&[0.0; 8], 0), ModelKind::Lite, det(0), false);
        let mut bytes = attic.to_store_bytes();
        // next_stamp lives right after the 13 config bytes (bool +
        // usize + f32); zero it so the entry's stamp violates the
        // invariant.
        bytes[13..21].copy_from_slice(&0u64.to_le_bytes());
        assert!(ModelAttic::from_store_bytes(&bytes, "attic").is_err());
    }

    #[test]
    fn lookup_on_empty_or_mismatched_dim_is_none() {
        let empty = ModelAttic::new(cfg());
        assert!(empty.lookup(&[0.0; 8]).is_none());
        assert!(empty.is_empty());
        let mut attic = ModelAttic::new(cfg());
        attic.archive(0, sig(&[0.0; 8], 0), ModelKind::Lite, det(0), false);
        assert!(attic.lookup(&[0.0; 4]).is_none(), "dim mismatch must miss, not panic");
    }
}

//! Whole-pipeline persistence: the glue between [`crate::pipeline::Odin`]
//! and the `odin-store` container formats.
//!
//! A checkpoint is a sectioned [`odin_store::Checkpoint`] holding the
//! complete pipeline state — configuration, encoder weights, teacher,
//! cluster manager (centroids, Δ-bands, KL histograms), the model
//! registry (lite/specialized detector weights), frame buffers, and
//! in-flight training jobs — enough to rebuild a bit-identical `Odin`
//! with [`crate::pipeline::Odin::restore`].
//!
//! The drift-event WAL complements snapshots: every promotion, eviction,
//! and model install is appended (with the full promoted-cluster /
//! installed-model state), so a restart can replay events newer than the
//! last snapshot instead of re-learning them. Frame buffers are *not* in
//! the WAL — replay recovers learned state; transient buffers refill
//! from the stream.
//!
//! Everything here is little-endian and hand-coded via
//! [`odin_store::codec`]; the vendored serde has no serializer backend.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use odin_data::{Condition, Frame, GtBox, Image, Location, ObjectClass, TimeOfDay, Weather};
use odin_detect::{Detector, DetectorArch};
use odin_drift::{Cluster, ClusterSignature, DriftEvent, ManagerConfig};
use odin_gan::{DaGan, DaGanConfig};
use odin_log::{EventLogConfig, RetentionConfig};
use odin_store::checkpoint::write_atomic;
use odin_store::{Decoder, Encoder, Persist, StoreError, WalWriter};
use odin_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use odin_telemetry::{
    FlightRecord, HistogramSnapshot, Level, RecordedEvent, SpanCtx, SpanRecord, TelemetrySnapshot,
    TimelineEvent, TimelineStage,
};

use crate::attic::AtticConfig;
use crate::encoder::{DaGanEncoder, EncoderSnapshot, HistogramEncoder, LatentEncoder};
use crate::metrics::PipelineStats;
use crate::pipeline::{OdinConfig, OracleLabels};
use crate::registry::{ModelKind, ServePrecision};
use crate::selector::SelectionPolicy;
use crate::specializer::SpecializerConfig;
use crate::telemetry::Telemetry;
use crate::training::TrainingMode;

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.odst";
/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "events.wal";
/// Flight-record auto-dump file name (Chrome-trace JSON) inside a store
/// directory, written on drift events and store errors.
pub const FLIGHT_FILE: &str = "flight.json";
/// Deduplicated shared-section checkpoint (encoder + teacher weights,
/// identical across every stream) inside a multi-stream server's store
/// directory. Per-shard snapshots under `streams/<id>/` omit these
/// sections and resolve them from this file at restore time.
pub const SHARED_SNAPSHOT_FILE: &str = "shared.odst";
/// Subdirectory of a multi-stream store holding one store directory per
/// stream (`streams/<id>/{snapshot.odst,events.wal,flight.json}`).
pub const STREAMS_DIR: &str = "streams";
/// Columnar event-log file name inside a store directory (written when
/// [`OdinConfig::event_log`] is enabled; see [`odin_log`]).
pub const EVENT_LOG_FILE: &str = odin_log::EVENT_LOG_FILE;

/// Checkpoint section names.
pub(crate) mod section {
    pub const META: &str = "meta";
    pub const CONFIG: &str = "config";
    pub const ENCODER: &str = "encoder";
    pub const TEACHER: &str = "teacher";
    pub const MANAGER: &str = "manager";
    pub const REGISTRY: &str = "registry";
    pub const FRAMES: &str = "frames";
    pub const STATS: &str = "stats";
    pub const ATTIC: &str = "attic";
    pub const TELEMETRY: &str = "telemetry";
}

/// When the pipeline writes snapshots on its own (once
/// [`crate::pipeline::Odin::enable_store`] is active). Manual
/// checkpoints via [`crate::pipeline::Odin::checkpoint`] always work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Never snapshot automatically; the WAL still records every event.
    Manual,
    /// Snapshot after every `N` processed frames.
    EveryNFrames(usize),
    /// Snapshot at the frame boundary after each drift event.
    OnDrift,
}

/// A copy of a training job's inputs, retained from submission until its
/// model installs so a checkpoint can carry queued/running work across a
/// restart (the job seed makes the rebuilt model bit-identical).
pub(crate) struct RetainedJob {
    pub seed: u64,
    pub kind: ModelKind,
    pub frames: Vec<Frame>,
    /// Trace context the job was (or will be re-)submitted under, so a
    /// restored pipeline's training spans stay linked to the original
    /// drift episode.
    pub ctx: SpanCtx,
}

// ---------------------------------------------------------------------
// Codecs for foreign types (orphan rule keeps these as free functions).
// ---------------------------------------------------------------------

fn enum_pos<T: PartialEq + Copy>(all: &[T], v: T, context: &'static str) -> u8 {
    all.iter().position(|x| *x == v).unwrap_or_else(|| panic!("{context}: variant not in ALL"))
        as u8
}

fn enum_at<T: Copy>(all: &[T], i: u8, context: &'static str) -> Result<T, StoreError> {
    all.get(i as usize).copied().ok_or(StoreError::Malformed { context })
}

pub(crate) fn persist_image(img: &Image, enc: &mut Encoder) {
    enc.put_usize(img.channels());
    enc.put_usize(img.height());
    enc.put_usize(img.width());
    enc.put_f32s(img.data());
}

pub(crate) fn restore_image(dec: &mut Decoder<'_>) -> Result<Image, StoreError> {
    let c = dec.take_usize("Image.channels")?;
    let h = dec.take_usize("Image.height")?;
    let w = dec.take_usize("Image.width")?;
    let data = dec.take_f32s("Image.data")?;
    if !(c == 1 || c == 3) || data.len() != c * h * w {
        return Err(StoreError::Malformed { context: "Image shape" });
    }
    // Pixels are clamped to [0,1] at every write, so the clamp inside
    // from_tensor is the identity and the roundtrip is bit-exact.
    Ok(Image::from_tensor(&Tensor::from_vec(data, &[c, h, w])))
}

pub(crate) fn persist_frame(frame: &Frame, enc: &mut Encoder) {
    persist_image(&frame.image, enc);
    enc.put_usize(frame.boxes.len());
    for b in &frame.boxes {
        enc.put_u8(b.class.index() as u8);
        enc.put_f32(b.x);
        enc.put_f32(b.y);
        enc.put_f32(b.w);
        enc.put_f32(b.h);
    }
    enc.put_u8(enum_pos(&Weather::ALL, frame.cond.weather, "Weather"));
    enc.put_u8(enum_pos(&TimeOfDay::ALL, frame.cond.time, "TimeOfDay"));
    enc.put_u8(enum_pos(&Location::ALL, frame.cond.location, "Location"));
}

pub(crate) fn restore_frame(dec: &mut Decoder<'_>) -> Result<Frame, StoreError> {
    let image = restore_image(dec)?;
    let n = dec.take_usize("Frame.boxes len")?;
    let mut boxes = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let ci = dec.take_u8("GtBox.class")?;
        let class = enum_at(&ObjectClass::ALL, ci, "GtBox.class")?;
        boxes.push(GtBox {
            class,
            x: dec.take_f32("GtBox.x")?,
            y: dec.take_f32("GtBox.y")?,
            w: dec.take_f32("GtBox.w")?,
            h: dec.take_f32("GtBox.h")?,
        });
    }
    let weather = enum_at(&Weather::ALL, dec.take_u8("Condition.weather")?, "Condition.weather")?;
    let time = enum_at(&TimeOfDay::ALL, dec.take_u8("Condition.time")?, "Condition.time")?;
    let location =
        enum_at(&Location::ALL, dec.take_u8("Condition.location")?, "Condition.location")?;
    let mut cond = Condition::new(weather, time);
    cond.location = location;
    Ok(Frame { image, boxes, cond })
}

pub(crate) fn persist_frames(frames: &[Frame], enc: &mut Encoder) {
    enc.put_usize(frames.len());
    for f in frames {
        persist_frame(f, enc);
    }
}

pub(crate) fn restore_frames(dec: &mut Decoder<'_>) -> Result<Vec<Frame>, StoreError> {
    let n = dec.take_usize("frames len")?;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        out.push(restore_frame(dec)?);
    }
    Ok(out)
}

pub(crate) fn persist_detector(d: &Detector, enc: &mut Encoder) {
    enc.put_u8(match d.arch() {
        DetectorArch::Heavy => 0,
        DetectorArch::Small => 1,
    });
    enc.put_usize(d.input_size());
    enc.put_f32(d.conf_threshold);
    enc.put_f32s(&d.export_params());
}

pub(crate) fn restore_detector(dec: &mut Decoder<'_>) -> Result<Detector, StoreError> {
    let arch = match dec.take_u8("Detector.arch")? {
        0 => DetectorArch::Heavy,
        1 => DetectorArch::Small,
        _ => return Err(StoreError::Malformed { context: "Detector.arch tag" }),
    };
    let size = dec.take_usize("Detector.input_size")?;
    if size == 0 || !size.is_multiple_of(8) {
        return Err(StoreError::Malformed { context: "Detector.input_size" });
    }
    let conf = dec.take_f32("Detector.conf_threshold")?;
    let params = dec.take_f32s("Detector.params")?;
    // The constructor's random init is immediately overwritten by the
    // imported parameters; the seed is arbitrary.
    let mut rng = StdRng::seed_from_u64(0);
    let mut d = match arch {
        DetectorArch::Heavy => Detector::heavy(size, &mut rng),
        DetectorArch::Small => Detector::small(size, &mut rng),
    };
    if params.len() != d.export_len() {
        return Err(StoreError::Malformed { context: "Detector.params length" });
    }
    d.import_params(&params);
    d.conf_threshold = conf;
    Ok(d)
}

pub(crate) fn persist_model_kind(kind: ModelKind, enc: &mut Encoder) {
    enc.put_u8(match kind {
        ModelKind::Lite => 0,
        ModelKind::Specialized => 1,
    });
}

pub(crate) fn restore_model_kind(dec: &mut Decoder<'_>) -> Result<ModelKind, StoreError> {
    match dec.take_u8("ModelKind")? {
        0 => Ok(ModelKind::Lite),
        1 => Ok(ModelKind::Specialized),
        _ => Err(StoreError::Malformed { context: "ModelKind tag" }),
    }
}

fn persist_dagan_config(cfg: &DaGanConfig, enc: &mut Encoder) {
    enc.put_usize(cfg.channels);
    enc.put_usize(cfg.size);
    enc.put_usize(cfg.latent);
    enc.put_usize(cfg.width);
    enc.put_f32(cfg.lr);
    enc.put_f32(cfg.lambda_r);
    enc.put_f32(cfg.denoise_std);
}

fn restore_dagan_config(dec: &mut Decoder<'_>) -> Result<DaGanConfig, StoreError> {
    let cfg = DaGanConfig {
        channels: dec.take_usize("DaGanConfig.channels")?,
        size: dec.take_usize("DaGanConfig.size")?,
        latent: dec.take_usize("DaGanConfig.latent")?,
        width: dec.take_usize("DaGanConfig.width")?,
        lr: dec.take_f32("DaGanConfig.lr")?,
        lambda_r: dec.take_f32("DaGanConfig.lambda_r")?,
        denoise_std: dec.take_f32("DaGanConfig.denoise_std")?,
    };
    if cfg.size == 0
        || !cfg.size.is_multiple_of(8)
        || cfg.latent == 0
        || cfg.width == 0
        || cfg.channels == 0
    {
        return Err(StoreError::Malformed { context: "DaGanConfig invariants" });
    }
    Ok(cfg)
}

/// Encodes an encoder snapshot. Fails (with the encoder's name in the
/// context) when the encoder does not support snapshotting.
pub(crate) fn persist_encoder(
    snapshot: &EncoderSnapshot,
    enc: &mut Encoder,
) -> Result<(), StoreError> {
    match snapshot {
        EncoderSnapshot::Histogram => enc.put_u8(0),
        EncoderSnapshot::DaGan { cfg, params } => {
            enc.put_u8(1);
            persist_dagan_config(cfg, enc);
            enc.put_f32s(params);
        }
        EncoderSnapshot::Unsupported(_) => {
            return Err(StoreError::Malformed { context: "encoder does not support snapshots" })
        }
    }
    Ok(())
}

/// Rebuilds a boxed encoder from its snapshot encoding.
pub(crate) fn restore_encoder(dec: &mut Decoder<'_>) -> Result<Box<dyn LatentEncoder>, StoreError> {
    match dec.take_u8("EncoderSnapshot tag")? {
        0 => Ok(Box::new(HistogramEncoder::new())),
        1 => {
            let cfg = restore_dagan_config(dec)?;
            let params = dec.take_f32s("EncoderSnapshot.params")?;
            let mut rng = StdRng::seed_from_u64(0);
            let mut model = DaGan::new(cfg, &mut rng);
            if params.len() != model.export_len() {
                return Err(StoreError::Malformed { context: "EncoderSnapshot.params length" });
            }
            model.import_params(&params);
            Ok(Box::new(DaGanEncoder::new(model)))
        }
        _ => Err(StoreError::Malformed { context: "EncoderSnapshot tag" }),
    }
}

impl Persist for SelectionPolicy {
    fn persist(&self, enc: &mut Encoder) {
        match self {
            SelectionPolicy::KnnUnweighted(k) => {
                enc.put_u8(0);
                enc.put_usize(*k);
            }
            SelectionPolicy::KnnWeighted(k) => {
                enc.put_u8(1);
                enc.put_usize(*k);
            }
            SelectionPolicy::DeltaBand => enc.put_u8(2),
            SelectionPolicy::MostRecent => enc.put_u8(3),
        }
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        match dec.take_u8("SelectionPolicy tag")? {
            0 => Ok(SelectionPolicy::KnnUnweighted(dec.take_usize("SelectionPolicy.k")?)),
            1 => Ok(SelectionPolicy::KnnWeighted(dec.take_usize("SelectionPolicy.k")?)),
            2 => Ok(SelectionPolicy::DeltaBand),
            3 => Ok(SelectionPolicy::MostRecent),
            _ => Err(StoreError::Malformed { context: "SelectionPolicy tag" }),
        }
    }
}

impl Persist for OdinConfig {
    fn persist(&self, enc: &mut Encoder) {
        self.manager.persist(enc);
        self.policy.persist(enc);
        enc.put_u8(match self.specializer.arch {
            DetectorArch::Heavy => 0,
            DetectorArch::Small => 1,
        });
        enc.put_usize(self.specializer.frame_size);
        enc.put_usize(self.specializer.train_iters);
        enc.put_usize(self.specializer.distill_iters);
        enc.put_usize(self.specializer.batch_size);
        enc.put_u8(match self.oracle {
            OracleLabels::Immediate => 0,
            OracleLabels::Never => 1,
        });
        match self.training {
            TrainingMode::Inline => enc.put_u8(0),
            TrainingMode::Background { workers } => {
                enc.put_u8(1);
                enc.put_usize(workers);
            }
        }
        enc.put_bool(self.baseline_only);
        enc.put_usize(self.buffer_cap);
        enc.put_usize(self.min_train_frames);
        enc.put_u8(match self.precision {
            ServePrecision::F32 => 0,
            ServePrecision::Int8 => 1,
        });
        enc.put_bool(self.event_log.enabled);
        enc.put_usize(self.event_log.queue_cap);
        enc.put_usize(self.event_log.segment_records);
        enc.put_bool(self.attic.enabled);
        enc.put_usize(self.attic.byte_budget);
        enc.put_f32(self.attic.match_threshold);
        enc.put_u64(self.event_log.retention.max_bytes);
        enc.put_u64(self.event_log.retention.max_age_us);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let manager = ManagerConfig::restore(dec)?;
        let policy = SelectionPolicy::restore(dec)?;
        let arch = match dec.take_u8("SpecializerConfig.arch")? {
            0 => DetectorArch::Heavy,
            1 => DetectorArch::Small,
            _ => return Err(StoreError::Malformed { context: "SpecializerConfig.arch tag" }),
        };
        let specializer = SpecializerConfig {
            arch,
            frame_size: dec.take_usize("SpecializerConfig.frame_size")?,
            train_iters: dec.take_usize("SpecializerConfig.train_iters")?,
            distill_iters: dec.take_usize("SpecializerConfig.distill_iters")?,
            batch_size: dec.take_usize("SpecializerConfig.batch_size")?,
        };
        let oracle = match dec.take_u8("OracleLabels tag")? {
            0 => OracleLabels::Immediate,
            1 => OracleLabels::Never,
            _ => return Err(StoreError::Malformed { context: "OracleLabels tag" }),
        };
        let training = match dec.take_u8("TrainingMode tag")? {
            0 => TrainingMode::Inline,
            1 => TrainingMode::Background { workers: dec.take_usize("TrainingMode.workers")? },
            _ => return Err(StoreError::Malformed { context: "TrainingMode tag" }),
        };
        let baseline_only = dec.take_bool("OdinConfig.baseline_only")?;
        let buffer_cap = dec.take_usize("OdinConfig.buffer_cap")?;
        let min_train_frames = dec.take_usize("OdinConfig.min_train_frames")?;
        let precision = match dec.take_u8("OdinConfig.precision")? {
            0 => ServePrecision::F32,
            1 => ServePrecision::Int8,
            _ => return Err(StoreError::Malformed { context: "ServePrecision tag" }),
        };
        // Added after the precision field; absent in checkpoints
        // written by older builds, which read back as disabled.
        let mut event_log = if dec.remaining() > 0 {
            EventLogConfig {
                enabled: dec.take_bool("OdinConfig.event_log.enabled")?,
                queue_cap: dec.take_usize("OdinConfig.event_log.queue_cap")?,
                segment_records: dec.take_usize("OdinConfig.event_log.segment_records")?,
                ..EventLogConfig::default()
            }
        } else {
            EventLogConfig::default()
        };
        // Added after the event-log fields; absent in checkpoints
        // written by older builds, which read back as disabled.
        let attic = if dec.remaining() > 0 {
            AtticConfig {
                enabled: dec.take_bool("OdinConfig.attic.enabled")?,
                byte_budget: dec.take_usize("OdinConfig.attic.byte_budget")?,
                match_threshold: dec.take_f32("OdinConfig.attic.match_threshold")?,
            }
        } else {
            AtticConfig::default()
        };
        // Added after the attic fields; absent in checkpoints written
        // by older builds, which read back as unlimited retention.
        if dec.remaining() > 0 {
            event_log.retention = RetentionConfig {
                max_bytes: dec.take_u64("OdinConfig.event_log.retention.max_bytes")?,
                max_age_us: dec.take_u64("OdinConfig.event_log.retention.max_age_us")?,
            };
        }
        Ok(OdinConfig {
            manager,
            policy,
            specializer,
            oracle,
            training,
            baseline_only,
            buffer_cap,
            min_train_frames,
            precision,
            event_log,
            attic,
        })
    }
}

impl Persist for PipelineStats {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_u64(self.jobs_submitted);
        enc.put_u64(self.models_installed);
        enc.put_f64(self.train_wall_ms);
        enc.put_u64(self.teacher_frames_while_pending);
        enc.put_u64(self.fallback_frames_while_pending);
        enc.put_u64(self.snapshots_written);
        enc.put_u64(self.wal_events_logged);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(PipelineStats {
            jobs_submitted: dec.take_u64("PipelineStats.jobs_submitted")?,
            models_installed: dec.take_u64("PipelineStats.models_installed")?,
            // queue_depth / in_flight are live pool gauges, not state.
            queue_depth: 0,
            in_flight: 0,
            train_wall_ms: dec.take_f64("PipelineStats.train_wall_ms")?,
            teacher_frames_while_pending: dec.take_u64("PipelineStats.teacher_pending")?,
            fallback_frames_while_pending: dec.take_u64("PipelineStats.fallback_pending")?,
            snapshots_written: dec.take_u64("PipelineStats.snapshots_written")?,
            wal_events_logged: dec.take_u64("PipelineStats.wal_events_logged")?,
            // Derived live from telemetry by `Odin::stats`, not state.
            store_errors: 0,
            last_store_error: None,
        })
    }
}

// ---------------------------------------------------------------------
// Telemetry snapshot codec
// ---------------------------------------------------------------------

/// Encodes the full telemetry state: the metric snapshot (counters,
/// gauges, histograms with their bucket bounds, drift timeline), the
/// flight recorder's contents, and the tracer's id allocators. Bounds
/// are persisted alongside the counts so a restored registry reproduces
/// the exact bucketing, and the recorder + tracer state make the
/// Chrome-trace export byte-identical after a restore.
pub(crate) fn persist_telemetry(
    snap: &TelemetrySnapshot,
    flight: &FlightRecord,
    tracer_state: (u64, u64),
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_usize(snap.counters.len());
    for (name, v) in &snap.counters {
        enc.put_str(name);
        enc.put_u64(*v);
    }
    enc.put_usize(snap.gauges.len());
    for (name, v) in &snap.gauges {
        enc.put_str(name);
        enc.put_u64(*v as u64);
    }
    enc.put_usize(snap.histograms.len());
    for h in &snap.histograms {
        enc.put_str(&h.name);
        enc.put_usize(h.bounds.len());
        for &b in &h.bounds {
            enc.put_f64(b);
        }
        enc.put_usize(h.buckets.len());
        for &b in &h.buckets {
            enc.put_u64(b);
        }
        enc.put_u64(h.count);
        enc.put_u64(h.sum_ns);
    }
    enc.put_usize(snap.timeline.len());
    for t in &snap.timeline {
        enc.put_u8(t.stage.tag());
        enc.put_usize(t.cluster_id);
        enc.put_usize(t.frame);
        enc.put_f64(t.at_ms);
    }
    enc.put_usize(flight.spans.len());
    for s in &flight.spans {
        enc.put_u64(s.trace);
        enc.put_u64(s.id);
        enc.put_u64(s.parent);
        enc.put_str(&s.name);
        enc.put_f64(s.start_ms);
        enc.put_f64(s.end_ms);
        enc.put_u64(s.cluster as u64);
        enc.put_u64(s.frame as u64);
    }
    enc.put_usize(flight.events.len());
    for e in &flight.events {
        enc.put_f64(e.at_ms);
        enc.put_u8(e.level.tag());
        enc.put_str(&e.target);
        enc.put_str(&e.message);
    }
    enc.put_u64(flight.dropped_spans);
    enc.put_u64(flight.dropped_events);
    enc.put_u64(tracer_state.0);
    enc.put_u64(tracer_state.1);
    enc.into_bytes()
}

/// Decodes the telemetry state written by [`persist_telemetry`]:
/// `(snapshot, flight_record, (next_span_id, next_trace_id))`.
pub(crate) fn restore_telemetry(
    bytes: &[u8],
) -> Result<(TelemetrySnapshot, FlightRecord, (u64, u64)), StoreError> {
    let mut dec = Decoder::new(bytes);
    let n = dec.take_usize("telemetry counters len")?;
    let mut counters = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        let name = dec.take_str("telemetry counter name")?;
        counters.push((name, dec.take_u64("telemetry counter value")?));
    }
    let n = dec.take_usize("telemetry gauges len")?;
    let mut gauges = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        let name = dec.take_str("telemetry gauge name")?;
        gauges.push((name, dec.take_u64("telemetry gauge value")? as i64));
    }
    let n = dec.take_usize("telemetry histograms len")?;
    let mut histograms = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        let name = dec.take_str("telemetry histogram name")?;
        let nb = dec.take_usize("telemetry bounds len")?;
        let mut bounds = Vec::with_capacity(nb.min(1 << 10));
        for _ in 0..nb {
            bounds.push(dec.take_f64("telemetry bound")?);
        }
        let nk = dec.take_usize("telemetry buckets len")?;
        if nk != nb + 1 {
            return Err(StoreError::Malformed { context: "telemetry bucket count" });
        }
        let mut buckets = Vec::with_capacity(nk);
        for _ in 0..nk {
            buckets.push(dec.take_u64("telemetry bucket")?);
        }
        let count = dec.take_u64("telemetry count")?;
        let sum_ns = dec.take_u64("telemetry sum_ns")?;
        histograms.push(HistogramSnapshot { name, bounds, buckets, count, sum_ns });
    }
    let n = dec.take_usize("telemetry timeline len")?;
    let mut timeline = Vec::with_capacity(n.min(1 << 14));
    for _ in 0..n {
        let tag = dec.take_u8("timeline stage")?;
        let stage = TimelineStage::from_tag(tag)
            .ok_or(StoreError::Malformed { context: "timeline stage tag" })?;
        timeline.push(TimelineEvent {
            stage,
            cluster_id: dec.take_usize("timeline cluster")?,
            frame: dec.take_usize("timeline frame")?,
            at_ms: dec.take_f64("timeline at_ms")?,
        });
    }
    let n = dec.take_usize("flight spans len")?;
    let mut spans = Vec::with_capacity(n.min(1 << 14));
    for _ in 0..n {
        spans.push(SpanRecord {
            trace: dec.take_u64("span trace")?,
            id: dec.take_u64("span id")?,
            parent: dec.take_u64("span parent")?,
            name: dec.take_str("span name")?.into(),
            start_ms: dec.take_f64("span start_ms")?,
            end_ms: dec.take_f64("span end_ms")?,
            cluster: dec.take_u64("span cluster")? as i64,
            frame: dec.take_u64("span frame")? as i64,
        });
    }
    let n = dec.take_usize("flight events len")?;
    let mut events = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let at_ms = dec.take_f64("flight event at_ms")?;
        let tag = dec.take_u8("flight event level")?;
        let level =
            Level::from_tag(tag).ok_or(StoreError::Malformed { context: "flight event level" })?;
        events.push(RecordedEvent {
            at_ms,
            level,
            target: dec.take_str("flight event target")?.into(),
            message: dec.take_str("flight event message")?,
        });
    }
    let dropped_spans = dec.take_u64("flight dropped spans")?;
    let dropped_events = dec.take_u64("flight dropped events")?;
    let next_span = dec.take_u64("tracer next span")?;
    let next_trace = dec.take_u64("tracer next trace")?;
    dec.finish("telemetry trailing bytes")?;
    Ok((
        TelemetrySnapshot { counters, gauges, histograms, timeline },
        FlightRecord { spans, events, dropped_spans, dropped_events },
        (next_span, next_trace),
    ))
}

// ---------------------------------------------------------------------
// WAL events
// ---------------------------------------------------------------------

/// One replayable record in the drift-event WAL. `Drift` carries the
/// full promoted-cluster state and `Install` the full model weights, so
/// replay needs no context beyond the snapshot it starts from.
pub(crate) enum WalEvent {
    Drift {
        event: DriftEvent,
        cluster: Cluster,
    },
    Evict {
        cluster_id: usize,
    },
    Install {
        cluster_id: usize,
        kind: ModelKind,
        detector: Detector,
        quantized: bool,
    },
    /// An evicted cluster's signature + model entered the attic. Logged
    /// *before* the matching `Evict` so a crash between the two replays
    /// into a state where the model is archived, never lost.
    Archive {
        cluster_id: usize,
        signature: ClusterSignature,
        kind: ModelKind,
        detector: Detector,
        quantized: bool,
    },
    /// A drift hit consumed the attic entry archived from cluster
    /// `source_id` (a reinstall). Logged before the matching `Install`
    /// so replay removes exactly the entry the live probe took.
    AtticTake {
        source_id: usize,
    },
}

pub(crate) fn encode_drift(event: DriftEvent, cluster: &Cluster) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(1);
    event.persist(&mut enc);
    cluster.persist(&mut enc);
    enc.into_bytes()
}

pub(crate) fn encode_evict(cluster_id: usize) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(2);
    enc.put_usize(cluster_id);
    enc.into_bytes()
}

pub(crate) fn encode_install(
    cluster_id: usize,
    kind: ModelKind,
    detector: &Detector,
    quantized: bool,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(3);
    enc.put_usize(cluster_id);
    persist_model_kind(kind, &mut enc);
    persist_detector(detector, &mut enc);
    // The f32 weights plus this flag fully determine the served model:
    // quantization is deterministic, so replay re-quantizes instead of
    // logging int8 bytes.
    enc.put_bool(quantized);
    enc.into_bytes()
}

pub(crate) fn encode_archive(
    cluster_id: usize,
    signature: &ClusterSignature,
    kind: ModelKind,
    detector: &Detector,
    quantized: bool,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(4);
    enc.put_usize(cluster_id);
    signature.persist(&mut enc);
    persist_model_kind(kind, &mut enc);
    persist_detector(detector, &mut enc);
    enc.put_bool(quantized);
    enc.into_bytes()
}

pub(crate) fn encode_attic_take(source_id: usize) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(5);
    enc.put_usize(source_id);
    enc.into_bytes()
}

pub(crate) fn decode_wal_event(payload: &[u8]) -> Result<WalEvent, StoreError> {
    let mut dec = Decoder::new(payload);
    let event = match dec.take_u8("WalEvent tag")? {
        1 => WalEvent::Drift {
            event: DriftEvent::restore(&mut dec)?,
            cluster: Cluster::restore(&mut dec)?,
        },
        2 => WalEvent::Evict { cluster_id: dec.take_usize("WalEvent.cluster_id")? },
        3 => WalEvent::Install {
            cluster_id: dec.take_usize("WalEvent.cluster_id")?,
            kind: restore_model_kind(&mut dec)?,
            detector: restore_detector(&mut dec)?,
            quantized: dec.take_bool("WalEvent.quantized")?,
        },
        4 => WalEvent::Archive {
            cluster_id: dec.take_usize("WalEvent.cluster_id")?,
            signature: ClusterSignature::restore(&mut dec)?,
            kind: restore_model_kind(&mut dec)?,
            detector: restore_detector(&mut dec)?,
            quantized: dec.take_bool("WalEvent.quantized")?,
        },
        5 => WalEvent::AtticTake { source_id: dec.take_usize("WalEvent.source_id")? },
        _ => return Err(StoreError::Malformed { context: "WalEvent tag" }),
    };
    dec.finish("WalEvent trailing bytes")?;
    Ok(event)
}

// ---------------------------------------------------------------------
// Registry / frame-buffer section codecs (operate on parts, the
// pipeline assembles them under its own locks)
// ---------------------------------------------------------------------

pub(crate) fn persist_registry_models(
    models: &[(usize, ModelKind, &Detector, bool)],
    enc: &mut Encoder,
) {
    enc.put_usize(models.len());
    for (id, kind, det, quantized) in models {
        enc.put_usize(*id);
        persist_model_kind(*kind, enc);
        persist_detector(det, enc);
        // Whether the model is served int8; restore re-quantizes the
        // f32 weights deterministically instead of storing int8 bytes.
        enc.put_bool(*quantized);
    }
}

pub(crate) fn restore_registry_models(
    dec: &mut Decoder<'_>,
) -> Result<Vec<(usize, ModelKind, Detector, bool)>, StoreError> {
    let n = dec.take_usize("registry len")?;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let id = dec.take_usize("registry id")?;
        let kind = restore_model_kind(dec)?;
        let det = restore_detector(dec)?;
        let quantized = dec.take_bool("registry quantized")?;
        out.push((id, kind, det, quantized));
    }
    Ok(out)
}

pub(crate) fn persist_retained_jobs(jobs: &BTreeMap<usize, RetainedJob>, enc: &mut Encoder) {
    enc.put_usize(jobs.len());
    for (id, job) in jobs {
        enc.put_usize(*id);
        enc.put_u64(job.seed);
        persist_model_kind(job.kind, enc);
        persist_frames(&job.frames, enc);
        enc.put_u64(job.ctx.trace);
        enc.put_u64(job.ctx.parent);
    }
}

pub(crate) fn restore_retained_jobs(
    dec: &mut Decoder<'_>,
) -> Result<BTreeMap<usize, RetainedJob>, StoreError> {
    let n = dec.take_usize("inflight len")?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let id = dec.take_usize("inflight id")?;
        let seed = dec.take_u64("inflight seed")?;
        let kind = restore_model_kind(dec)?;
        let frames = restore_frames(dec)?;
        let trace = dec.take_u64("inflight ctx trace")?;
        let parent = dec.take_u64("inflight ctx parent")?;
        out.insert(id, RetainedJob { seed, kind, frames, ctx: SpanCtx { trace, parent } });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Background snapshot writer
// ---------------------------------------------------------------------

enum WriteReq {
    Write { path: PathBuf, bytes: Vec<u8> },
    Barrier(Sender<()>),
}

/// Owns a thread that writes snapshot bytes atomically off the serving
/// path. Snapshot *bytes* are built synchronously at the frame boundary
/// (that part must be consistent); only the file I/O is deferred.
pub(crate) struct SnapshotWriter {
    tx: Option<Sender<WriteReq>>,
    handle: Option<JoinHandle<()>>,
    failures: Arc<AtomicU64>,
}

impl SnapshotWriter {
    pub fn new(telemetry: Telemetry) -> Self {
        let (tx, rx) = unbounded::<WriteReq>();
        let failures = Arc::new(AtomicU64::new(0));
        let fail = Arc::clone(&failures);
        let handle = std::thread::Builder::new()
            .name("odin-snapshot-writer".to_string())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    match req {
                        WriteReq::Write { path, bytes } => {
                            let t0 = telemetry.registry().now_ms();
                            let res = write_atomic(&path, &bytes);
                            telemetry
                                .stage_snapshot_write
                                .observe_ms(telemetry.registry().now_ms() - t0);
                            if let Err(e) = res {
                                fail.fetch_add(1, Ordering::Relaxed);
                                telemetry.record_store_error(
                                    format!("snapshot write to {} failed", path.display()),
                                    e,
                                );
                            }
                        }
                        WriteReq::Barrier(done) => {
                            let _ = done.send(());
                        }
                    }
                }
            })
            .expect("spawn snapshot writer thread");
        SnapshotWriter { tx: Some(tx), handle: Some(handle), failures }
    }

    /// Queues one atomic snapshot write.
    pub fn submit(&self, path: PathBuf, bytes: Vec<u8>) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(WriteReq::Write { path, bytes });
        }
    }

    /// Blocks until every previously queued write has hit the disk.
    pub fn flush(&self) {
        if let Some(tx) = &self.tx {
            let (done_tx, done_rx) = unbounded();
            if tx.send(WriteReq::Barrier(done_tx)).is_ok() {
                let _ = done_rx.recv();
            }
        }
    }

    /// Number of writes that failed since startup.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The live persistence runtime attached to an `Odin` by
/// [`crate::pipeline::Odin::enable_store`]: the WAL appender, the
/// background snapshot writer, and the snapshot policy.
pub(crate) struct PipelineStore {
    pub dir: PathBuf,
    pub policy: CheckpointPolicy,
    pub wal: WalWriter,
    pub writer: SnapshotWriter,
    pub frames_since_snapshot: usize,
}

impl PipelineStore {
    pub fn open(dir: &Path, policy: CheckpointPolicy, tel: Telemetry) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let wal = WalWriter::open(&dir.join(WAL_FILE))?;
        Ok(PipelineStore {
            dir: dir.to_path_buf(),
            policy,
            wal,
            writer: SnapshotWriter::new(tel),
            frames_since_snapshot: 0,
        })
    }

    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::{SceneGen, Subset};

    fn sample_frame() -> Frame {
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(3);
        gen.subset_frames(&mut rng, Subset::Night, 1).pop().expect("one frame")
    }

    #[test]
    fn frame_roundtrip_is_bit_exact() {
        let frame = sample_frame();
        let mut enc = Encoder::new();
        persist_frame(&frame, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = restore_frame(&mut dec).unwrap();
        dec.finish("frame").unwrap();
        assert_eq!(back.image.data(), frame.image.data());
        assert_eq!(back.boxes, frame.boxes);
        assert_eq!(back.cond, frame.cond);
        let mut enc2 = Encoder::new();
        persist_frame(&back, &mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);
    }

    #[test]
    fn detector_roundtrip_preserves_weights_and_outputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Detector::small(48, &mut rng);
        d.conf_threshold = 0.123;
        let mut enc = Encoder::new();
        persist_detector(&d, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = restore_detector(&mut dec).unwrap();
        dec.finish("detector").unwrap();
        assert_eq!(back.arch(), d.arch());
        assert_eq!(back.input_size(), d.input_size());
        assert_eq!(back.conf_threshold, d.conf_threshold);
        assert_eq!(back.export_params(), d.export_params());
        let frame = sample_frame();
        let a = d.detect(&frame.image);
        let b = back.detect(&frame.image);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.bbox.class, y.bbox.class);
        }
    }

    #[test]
    fn detector_restore_rejects_wrong_param_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Detector::small(48, &mut rng);
        let mut enc = Encoder::new();
        persist_detector(&d, &mut enc);
        let mut bytes = enc.into_bytes();
        // Drop the last parameter: length prefix no longer matches.
        bytes.truncate(bytes.len() - 4);
        let mut dec = Decoder::new(&bytes);
        assert!(restore_detector(&mut dec).is_err());
    }

    #[test]
    fn odin_config_roundtrip() {
        let cfg = OdinConfig {
            policy: SelectionPolicy::KnnWeighted(3),
            oracle: OracleLabels::Never,
            training: TrainingMode::Background { workers: 2 },
            buffer_cap: 99,
            min_train_frames: 17,
            ..OdinConfig::default()
        };
        let bytes = cfg.to_store_bytes();
        let back = OdinConfig::from_store_bytes(&bytes, "config").unwrap();
        assert_eq!(back.to_store_bytes(), bytes);
        assert_eq!(back.policy, cfg.policy);
        assert_eq!(back.training, cfg.training);
        assert_eq!(back.buffer_cap, 99);
    }

    #[test]
    fn wal_event_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let cluster = Cluster::from_points(4, vec![vec![0.5, 1.5], vec![0.6, 1.4]], 0.75, 8);
        let event = DriftEvent { cluster_id: 4, at: 123 };
        match decode_wal_event(&encode_drift(event, &cluster)).unwrap() {
            WalEvent::Drift { event: e, cluster: c } => {
                assert_eq!(e, event);
                assert_eq!(c.id(), 4);
                assert_eq!(c.centroid(), cluster.centroid());
            }
            _ => panic!("expected drift event"),
        }
        match decode_wal_event(&encode_evict(9)).unwrap() {
            WalEvent::Evict { cluster_id } => assert_eq!(cluster_id, 9),
            _ => panic!("expected evict event"),
        }
        let det = Detector::small(48, &mut rng);
        let params = det.export_params();
        match decode_wal_event(&encode_install(2, ModelKind::Specialized, &det, true)).unwrap() {
            WalEvent::Install { cluster_id, kind, detector, quantized } => {
                assert_eq!(cluster_id, 2);
                assert_eq!(kind, ModelKind::Specialized);
                assert_eq!(detector.export_params(), params);
                assert!(quantized);
            }
            _ => panic!("expected install event"),
        }
        let sig = ClusterSignature::from_cluster(&cluster);
        let payload = encode_archive(6, &sig, ModelKind::Lite, &det, false);
        match decode_wal_event(&payload).unwrap() {
            WalEvent::Archive { cluster_id, signature, kind, detector, quantized } => {
                assert_eq!(cluster_id, 6);
                assert_eq!(signature.centroid(), sig.centroid());
                assert_eq!(signature.to_store_bytes(), sig.to_store_bytes());
                assert_eq!(kind, ModelKind::Lite);
                assert_eq!(detector.export_params(), params);
                assert!(!quantized);
            }
            _ => panic!("expected archive event"),
        }
        assert!(decode_wal_event(&[42]).is_err(), "unknown tag must be malformed");
    }

    #[test]
    fn encoder_snapshot_roundtrip_histogram_and_unsupported() {
        let mut enc = Encoder::new();
        persist_encoder(&EncoderSnapshot::Histogram, &mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let e = restore_encoder(&mut dec).unwrap();
        assert_eq!(e.name(), "histogram");

        let mut enc2 = Encoder::new();
        let err = persist_encoder(&EncoderSnapshot::Unsupported("custom"), &mut enc2);
        assert!(err.is_err(), "unsupported encoders must fail checkpointing");
    }

    #[test]
    fn snapshot_writer_flush_waits_for_writes() {
        let dir = std::env::temp_dir().join(format!("odin-writer-{}", std::process::id()));
        let path = dir.join("snap.odst");
        let writer = SnapshotWriter::new(Telemetry::new());
        let mut b = odin_store::CheckpointBuilder::new();
        b.section("x", vec![1, 2, 3]);
        writer.submit(path.clone(), b.to_bytes());
        writer.flush();
        assert!(path.exists(), "flush must guarantee the write landed");
        assert_eq!(writer.failures(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! # odin-core
//!
//! The ODIN system (Figure 3 of the paper): automated drift detection
//! and recovery for video analytics.
//!
//! * [`encoder`] — the pluggable pixel→latent projection (DA-GAN per the
//!   paper, or a handcrafted-feature ablation),
//! * [`pipeline::Odin`] — the end-to-end system: DETECTOR assigns each
//!   frame to a latent cluster; on drift, SPECIALIZER trains a model for
//!   the new cluster; SELECTOR picks the model ensemble per frame,
//! * [`specializer`] — YoloSpecialized (oracle-trained) and YoloLite
//!   (teacher-distilled) model generation (§5.1–§5.2),
//! * [`selector`] — the KNN-U / KNN-W / Δ-BM selection policies (§5.3),
//! * [`training`] — SPECIALIZER scheduling: inline (deterministic
//!   default) or on background worker threads so the serving path never
//!   blocks on a training run,
//! * [`query`] / [`filter`] — aggregation queries and the lightweight
//!   per-cluster filters of §6.6 (ODIN-PP / ODIN-FILTER),
//! * [`metrics`] — windowed stream evaluation (Figure 9) and
//!   pipeline-stage counters,
//! * [`telemetry`] — the observability facade: deterministic counters,
//!   gauges, per-stage latency histograms, the drift timeline, and the
//!   structured event log ([`pipeline::Odin::telemetry`]),
//! * [`attic`] — the recurring-drift model attic: evicted clusters'
//!   signatures + models, LSH-matched on later drift so a returning
//!   regime reinstalls its cached model instead of retraining,
//! * [`store`] — crash-safe persistence glue: full-pipeline checkpoints
//!   ([`pipeline::Odin::checkpoint`] / [`pipeline::Odin::restore`]) and
//!   the drift-event WAL ([`pipeline::Odin::enable_store`]),
//! * [`server`] — multi-stream sharded serving: per-stream [`Odin`]
//!   shards (isolated drift state) behind one ingest front end with a
//!   shared model registry, shared training pool, admission control,
//!   and per-stream-labeled exposition ([`server::OdinServer`]).
//!
//! ## Quick example
//!
//! ```no_run
//! use odin_core::encoder::HistogramEncoder;
//! use odin_core::pipeline::{Odin, OdinConfig};
//! use odin_data::{DriftSchedule, SceneGen};
//! use odin_detect::Detector;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let teacher = Detector::heavy(48, &mut rng);
//! let mut odin = Odin::new(
//!     Box::new(HistogramEncoder::new()),
//!     teacher,
//!     OdinConfig::default(),
//!     0,
//! );
//! let gen = SceneGen::new(48);
//! let stream = DriftSchedule::paper_end_to_end(1000).generate(&gen, &mut rng);
//! for frame in &stream {
//!     let result = odin.process(frame);
//!     if let Some(event) = result.drift {
//!         println!("drift detected at frame {}", event.at);
//!     }
//! }
//! ```

#![warn(missing_docs)]

pub mod attic;
pub mod encoder;
pub mod filter;
pub mod metrics;
pub mod pipeline;
pub mod query;
pub mod registry;
pub mod selector;
pub mod server;
pub mod specializer;
pub mod store;
pub mod telemetry;
pub mod training;

pub use attic::AtticConfig;
pub use encoder::{DaGanEncoder, EncoderSnapshot, HistogramEncoder, LatentEncoder};
pub use filter::BinaryFilter;
pub use metrics::{mean_map, PipelineStats, StreamEvaluator, WindowPoint};
pub use odin_log::{EventLogConfig, RetentionConfig};
pub use pipeline::{
    FrameResult, IngestOutcome, Odin, OdinConfig, OracleLabels, ServedBy, NS_STRIDE,
    QUANT_GATE_FRAMES, QUANT_MAP_DELTA,
};
pub use query::{count_accuracy, CountQuery};
pub use registry::{ClusterModel, ModelKind, ModelRegistry, ServePrecision, SharedRegistry};
pub use selector::{select, Selection, SelectionPolicy};
pub use server::{decode_ingest_frame, encode_ingest_frame, OdinServer, ServerConfig, SubmitError};
pub use specializer::{Specializer, SpecializerConfig};
pub use store::{
    CheckpointPolicy, EVENT_LOG_FILE, FLIGHT_FILE, SHARED_SNAPSHOT_FILE, SNAPSHOT_FILE,
    STREAMS_DIR, WAL_FILE,
};
pub use telemetry::Telemetry;
pub use training::{TrainHandle, TrainJob, TrainRouter, TrainedModel, TrainingMode, TrainingPool};

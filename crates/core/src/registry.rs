//! The model registry inside MODELMANAGER: one detector per cluster.

use std::collections::BTreeMap;
use std::sync::Arc;

use odin_data::Image;
use odin_detect::{Detection, Detector, QDetector};
use parking_lot::RwLock;

/// A registry shared between the serving path (readers) and the
/// frame-boundary install step that lands background-trained models
/// (writer). Inference holds a read lock for the duration of one
/// frame's ensemble pass; writes are rare (one per trained model).
pub type SharedRegistry = Arc<RwLock<ModelRegistry>>;

/// What kind of model currently serves a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Distilled from the teacher's outputs (no oracle labels).
    Lite,
    /// Trained from scratch on oracle labels.
    Specialized,
}

/// Numeric precision a cluster model is served at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServePrecision {
    /// Full-precision f32 weights (the trained representation).
    #[default]
    F32,
    /// Per-channel symmetric int8 weights, quantized once at install
    /// time and gated on an mAP-delta check (see
    /// [`crate::pipeline::QUANT_MAP_DELTA`]).
    Int8,
}

/// A cluster's model plus its provenance.
pub struct ClusterModel {
    /// The detector serving this cluster (always kept: the trained
    /// representation, and the fallback when quantization is rejected).
    pub detector: Detector,
    /// Lite or Specialized.
    pub kind: ModelKind,
    /// The int8 serving engine, present when this model is served
    /// quantized. `None` means f32 serving (precision F32, the heavy
    /// architecture, or an install whose quantization failed the gate).
    pub quant: Option<QDetector>,
}

impl ClusterModel {
    /// An f32-served model.
    pub fn new(detector: Detector, kind: ModelKind) -> Self {
        ClusterModel { detector, kind, quant: None }
    }

    /// Attaches the int8 serving engine (quantizing the detector), if
    /// the architecture supports it. Returns the precision actually in
    /// effect afterwards. Quantization is deterministic, so calling this
    /// after a checkpoint restore reproduces the serving model exactly.
    pub fn quantize(&mut self) -> ServePrecision {
        self.quant = QDetector::quantize(&self.detector);
        self.precision()
    }

    /// The precision this model currently serves at.
    pub fn precision(&self) -> ServePrecision {
        if self.quant.is_some() {
            ServePrecision::Int8
        } else {
            ServePrecision::F32
        }
    }

    /// Runs detection at the serving precision.
    pub fn detect(&self, image: &Image) -> Vec<Detection> {
        match &self.quant {
            Some(q) => q.detect(image),
            None => self.detector.detect(image),
        }
    }

    /// Bytes of the representation actually served — int8 weights +
    /// scales when quantized, f32 weights otherwise. This is what the
    /// deployment-footprint comparisons (Figure 1 / Tables 4 and 7)
    /// report.
    pub fn serve_bytes(&self) -> usize {
        match &self.quant {
            Some(q) => q.param_bytes(),
            None => self.detector.param_bytes(),
        }
    }
}

/// Maps cluster ids to their models. Deterministic iteration order
/// (BTreeMap) keeps experiment output stable.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<usize, ClusterModel>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps the registry in a [`SharedRegistry`] handle for sharing
    /// between the serving path and model installation.
    pub fn into_shared(self) -> SharedRegistry {
        Arc::new(RwLock::new(self))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Registers (or replaces) the model for a cluster. Replacement is
    /// how a YoloLite model is upgraded to YoloSpecialized once oracle
    /// labels arrive (§5.2).
    pub fn insert(&mut self, cluster_id: usize, model: ClusterModel) {
        self.models.insert(cluster_id, model);
    }

    /// Removes a cluster's model (e.g. after eviction).
    pub fn remove(&mut self, cluster_id: usize) -> Option<ClusterModel> {
        self.models.remove(&cluster_id)
    }

    /// The model for a cluster.
    pub fn get(&self, cluster_id: usize) -> Option<&ClusterModel> {
        self.models.get(&cluster_id)
    }

    /// Mutable access to a cluster's model.
    pub fn get_mut(&mut self, cluster_id: usize) -> Option<&mut ClusterModel> {
        self.models.get_mut(&cluster_id)
    }

    /// The kind of model serving a cluster.
    pub fn kind(&self, cluster_id: usize) -> Option<ModelKind> {
        self.models.get(&cluster_id).map(|m| m.kind)
    }

    /// Registered cluster ids, ascending.
    pub fn ids(&self) -> Vec<usize> {
        self.models.keys().copied().collect()
    }

    /// Registered ids inside the half-open id range `[lo, hi)`,
    /// ascending. A multi-stream server namespaces each stream's
    /// clusters into a disjoint id range of one shared registry; this
    /// is how a shard enumerates only its own models.
    pub fn ids_in(&self, lo: usize, hi: usize) -> Vec<usize> {
        self.models.range(lo..hi).map(|(id, _)| *id).collect()
    }

    /// Number of registered models inside `[lo, hi)`.
    pub fn count_in(&self, lo: usize, hi: usize) -> usize {
        self.models.range(lo..hi).count()
    }

    /// Combined memory footprint of all registered models in bytes —
    /// ODIN's "memory footprint" in Figure 1 / Table 7. Counts the
    /// *served* representation: int8 bytes for quantized models.
    pub fn total_bytes(&self) -> usize {
        self.models.values().map(ClusterModel::serve_bytes).sum()
    }

    /// Combined memory footprint of the models inside `[lo, hi)`, in
    /// bytes — one stream's deployment footprint within a shared
    /// registry.
    pub fn total_bytes_in(&self, lo: usize, hi: usize) -> usize {
        self.models.range(lo..hi).map(|(_, m)| m.serve_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small(rng: &mut StdRng) -> Detector {
        Detector::small(48, rng)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut r = ModelRegistry::new();
        assert!(r.is_empty());
        r.insert(3, ClusterModel::new(small(&mut rng), ModelKind::Lite));
        assert_eq!(r.len(), 1);
        assert_eq!(r.kind(3), Some(ModelKind::Lite));
        assert!(r.get_mut(3).is_some());
        assert!(r.remove(3).is_some());
        assert!(r.is_empty());
    }

    #[test]
    fn replacement_upgrades_lite_to_specialized() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = ModelRegistry::new();
        r.insert(0, ClusterModel::new(small(&mut rng), ModelKind::Lite));
        r.insert(0, ClusterModel::new(small(&mut rng), ModelKind::Specialized));
        assert_eq!(r.len(), 1);
        assert_eq!(r.kind(0), Some(ModelKind::Specialized));
    }

    #[test]
    fn total_bytes_sums_models() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = ModelRegistry::new();
        let d = small(&mut rng);
        let per = d.param_bytes();
        r.insert(0, ClusterModel::new(d, ModelKind::Lite));
        r.insert(1, ClusterModel::new(small(&mut rng), ModelKind::Lite));
        assert_eq!(r.total_bytes(), 2 * per);
    }

    #[test]
    fn ids_are_sorted() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = ModelRegistry::new();
        for id in [5, 1, 3] {
            r.insert(id, ClusterModel::new(small(&mut rng), ModelKind::Lite));
        }
        assert_eq!(r.ids(), vec![1, 3, 5]);
    }

    #[test]
    fn range_helpers_scope_to_one_namespace() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = ModelRegistry::new();
        let base = 1usize << 32;
        let d = small(&mut rng);
        let per = d.param_bytes();
        r.insert(1, ClusterModel::new(d, ModelKind::Lite));
        r.insert(base, ClusterModel::new(small(&mut rng), ModelKind::Lite));
        r.insert(base + 2, ClusterModel::new(small(&mut rng), ModelKind::Lite));
        assert_eq!(r.ids_in(0, base), vec![1]);
        assert_eq!(r.ids_in(base, 2 * base), vec![base, base + 2]);
        assert_eq!(r.count_in(base, 2 * base), 2);
        assert_eq!(r.total_bytes_in(0, base), per);
        assert_eq!(r.total_bytes(), 3 * per);
    }

    #[test]
    fn quantize_switches_precision_and_shrinks_serve_bytes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = ClusterModel::new(small(&mut rng), ModelKind::Specialized);
        assert_eq!(m.precision(), ServePrecision::F32);
        let f32_bytes = m.serve_bytes();
        assert_eq!(m.quantize(), ServePrecision::Int8);
        assert_eq!(m.precision(), ServePrecision::Int8);
        assert!(
            m.serve_bytes() * 3 < f32_bytes,
            "int8 serve_bytes {} not well below f32 {}",
            m.serve_bytes(),
            f32_bytes
        );
    }

    #[test]
    fn heavy_model_stays_f32_after_quantize() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = ClusterModel::new(Detector::heavy(48, &mut rng), ModelKind::Specialized);
        assert_eq!(m.quantize(), ServePrecision::F32);
        assert!(m.quant.is_none());
    }

    #[test]
    fn total_bytes_reports_served_representation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut r = ModelRegistry::new();
        let d = small(&mut rng);
        let f32_bytes = d.param_bytes();
        let mut m = ClusterModel::new(d, ModelKind::Lite);
        m.quantize();
        let q_bytes = m.serve_bytes();
        r.insert(0, m);
        assert_eq!(r.total_bytes(), q_bytes);
        assert!(r.total_bytes() * 3 < f32_bytes);
    }
}

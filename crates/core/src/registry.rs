//! The model registry inside MODELMANAGER: one detector per cluster.

use std::collections::BTreeMap;
use std::sync::Arc;

use odin_detect::Detector;
use parking_lot::RwLock;

/// A registry shared between the serving path (readers) and the
/// frame-boundary install step that lands background-trained models
/// (writer). Inference holds a read lock for the duration of one
/// frame's ensemble pass; writes are rare (one per trained model).
pub type SharedRegistry = Arc<RwLock<ModelRegistry>>;

/// What kind of model currently serves a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Distilled from the teacher's outputs (no oracle labels).
    Lite,
    /// Trained from scratch on oracle labels.
    Specialized,
}

/// A cluster's model plus its provenance.
pub struct ClusterModel {
    /// The detector serving this cluster.
    pub detector: Detector,
    /// Lite or Specialized.
    pub kind: ModelKind,
}

/// Maps cluster ids to their models. Deterministic iteration order
/// (BTreeMap) keeps experiment output stable.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<usize, ClusterModel>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps the registry in a [`SharedRegistry`] handle for sharing
    /// between the serving path and model installation.
    pub fn into_shared(self) -> SharedRegistry {
        Arc::new(RwLock::new(self))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Registers (or replaces) the model for a cluster. Replacement is
    /// how a YoloLite model is upgraded to YoloSpecialized once oracle
    /// labels arrive (§5.2).
    pub fn insert(&mut self, cluster_id: usize, model: ClusterModel) {
        self.models.insert(cluster_id, model);
    }

    /// Removes a cluster's model (e.g. after eviction).
    pub fn remove(&mut self, cluster_id: usize) -> Option<ClusterModel> {
        self.models.remove(&cluster_id)
    }

    /// The model for a cluster.
    pub fn get(&self, cluster_id: usize) -> Option<&ClusterModel> {
        self.models.get(&cluster_id)
    }

    /// Mutable access to a cluster's model.
    pub fn get_mut(&mut self, cluster_id: usize) -> Option<&mut ClusterModel> {
        self.models.get_mut(&cluster_id)
    }

    /// The kind of model serving a cluster.
    pub fn kind(&self, cluster_id: usize) -> Option<ModelKind> {
        self.models.get(&cluster_id).map(|m| m.kind)
    }

    /// Registered cluster ids, ascending.
    pub fn ids(&self) -> Vec<usize> {
        self.models.keys().copied().collect()
    }

    /// Registered ids inside the half-open id range `[lo, hi)`,
    /// ascending. A multi-stream server namespaces each stream's
    /// clusters into a disjoint id range of one shared registry; this
    /// is how a shard enumerates only its own models.
    pub fn ids_in(&self, lo: usize, hi: usize) -> Vec<usize> {
        self.models.range(lo..hi).map(|(id, _)| *id).collect()
    }

    /// Number of registered models inside `[lo, hi)`.
    pub fn count_in(&self, lo: usize, hi: usize) -> usize {
        self.models.range(lo..hi).count()
    }

    /// Combined memory footprint of all registered models in bytes —
    /// ODIN's "memory footprint" in Figure 1 / Table 7.
    pub fn total_bytes(&self) -> usize {
        self.models.values().map(|m| m.detector.param_bytes()).sum()
    }

    /// Combined memory footprint of the models inside `[lo, hi)`, in
    /// bytes — one stream's deployment footprint within a shared
    /// registry.
    pub fn total_bytes_in(&self, lo: usize, hi: usize) -> usize {
        self.models.range(lo..hi).map(|(_, m)| m.detector.param_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small(rng: &mut StdRng) -> Detector {
        Detector::small(48, rng)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut r = ModelRegistry::new();
        assert!(r.is_empty());
        r.insert(3, ClusterModel { detector: small(&mut rng), kind: ModelKind::Lite });
        assert_eq!(r.len(), 1);
        assert_eq!(r.kind(3), Some(ModelKind::Lite));
        assert!(r.get_mut(3).is_some());
        assert!(r.remove(3).is_some());
        assert!(r.is_empty());
    }

    #[test]
    fn replacement_upgrades_lite_to_specialized() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = ModelRegistry::new();
        r.insert(0, ClusterModel { detector: small(&mut rng), kind: ModelKind::Lite });
        r.insert(0, ClusterModel { detector: small(&mut rng), kind: ModelKind::Specialized });
        assert_eq!(r.len(), 1);
        assert_eq!(r.kind(0), Some(ModelKind::Specialized));
    }

    #[test]
    fn total_bytes_sums_models() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = ModelRegistry::new();
        let d = small(&mut rng);
        let per = d.param_bytes();
        r.insert(0, ClusterModel { detector: d, kind: ModelKind::Lite });
        r.insert(1, ClusterModel { detector: small(&mut rng), kind: ModelKind::Lite });
        assert_eq!(r.total_bytes(), 2 * per);
    }

    #[test]
    fn ids_are_sorted() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = ModelRegistry::new();
        for id in [5, 1, 3] {
            r.insert(id, ClusterModel { detector: small(&mut rng), kind: ModelKind::Lite });
        }
        assert_eq!(r.ids(), vec![1, 3, 5]);
    }

    #[test]
    fn range_helpers_scope_to_one_namespace() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = ModelRegistry::new();
        let base = 1usize << 32;
        let d = small(&mut rng);
        let per = d.param_bytes();
        r.insert(1, ClusterModel { detector: d, kind: ModelKind::Lite });
        r.insert(base, ClusterModel { detector: small(&mut rng), kind: ModelKind::Lite });
        r.insert(base + 2, ClusterModel { detector: small(&mut rng), kind: ModelKind::Lite });
        assert_eq!(r.ids_in(0, base), vec![1]);
        assert_eq!(r.ids_in(base, 2 * base), vec![base, base + 2]);
        assert_eq!(r.count_in(base, 2 * base), 2);
        assert_eq!(r.total_bytes_in(0, base), per);
        assert_eq!(r.total_bytes(), 3 * per);
    }
}

//! The end-to-end ODIN pipeline (Figure 3).
//!
//! A frame flows through: ❶ DETECTOR projects it to the latent manifold
//! and assigns it to a cluster (or the temporary cluster); ❷ on a drift
//! event SPECIALIZER trains a model for the new cluster (a YoloLite
//! immediately; a YoloSpecialized when oracle labels are available);
//! ❸ SELECTOR picks the ensemble of specialized models that runs
//! inference on the frame. Before any cluster exists, the heavyweight
//! teacher model serves inference (the static-baseline behaviour).

use odin_data::{Frame, GtBox};
use odin_detect::{nms, Detection, Detector, DEFAULT_NMS_IOU};
use odin_drift::{Assignment, ClusterManager, DriftEvent, ManagerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::encoder::LatentEncoder;
use crate::registry::{ClusterModel, ModelKind, ModelRegistry};
use crate::selector::{select, Selection, SelectionPolicy};
use crate::specializer::{Specializer, SpecializerConfig};

/// How oracle labels become available to SPECIALIZER (§7 discusses this
/// constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleLabels {
    /// Ground truth is available as soon as a cluster is promoted: a
    /// YoloSpecialized model is trained immediately.
    Immediate,
    /// Labels never arrive: clusters are served by YoloLite models only.
    Never,
}

/// Configuration of the whole pipeline.
#[derive(Debug, Clone, Copy)]
pub struct OdinConfig {
    /// DETECTOR clustering configuration.
    pub manager: ManagerConfig,
    /// SELECTOR policy.
    pub policy: SelectionPolicy,
    /// SPECIALIZER training configuration.
    pub specializer: SpecializerConfig,
    /// Oracle-label availability.
    pub oracle: OracleLabels,
    /// When true, drift detection and recovery are disabled and every
    /// frame is served by the heavyweight teacher — the static baseline
    /// of Figure 1 / Table 7.
    pub baseline_only: bool,
    /// Cap on frames buffered for the next specialization run.
    pub buffer_cap: usize,
    /// Minimum frames a cluster must accumulate before SPECIALIZER
    /// trains its model. Promotion usually happens on a few dozen
    /// outliers; the paper's SPECIALIZER keeps "collect[ing] sufficient
    /// novel data points" before the model is generated, with SELECTOR
    /// covering the gap from nearby clusters.
    pub min_train_frames: usize,
}

impl Default for OdinConfig {
    fn default() -> Self {
        OdinConfig {
            manager: ManagerConfig::default(),
            policy: SelectionPolicy::DeltaBand,
            specializer: SpecializerConfig::default(),
            oracle: OracleLabels::Immediate,
            baseline_only: false,
            buffer_cap: 512,
            min_train_frames: 120,
        }
    }
}

/// What happened while processing one frame.
pub struct FrameResult {
    /// Final (post-NMS) detections for the frame.
    pub detections: Vec<Detection>,
    /// DETECTOR's cluster assignment.
    pub assignment: Assignment,
    /// A drift event, if this frame triggered a promotion.
    pub drift: Option<DriftEvent>,
    /// True if the heavyweight teacher served this frame (no specialized
    /// model was applicable yet).
    pub used_teacher: bool,
    /// The selection SELECTOR produced (empty when the teacher served).
    pub selection: Selection,
}

/// The ODIN system.
pub struct Odin {
    encoder: Box<dyn LatentEncoder>,
    manager: ClusterManager,
    registry: ModelRegistry,
    specializer: Specializer,
    teacher: Detector,
    temp_frames: Vec<Frame>,
    /// Frames accumulated per promoted-but-not-yet-modeled cluster.
    pending: std::collections::BTreeMap<usize, Vec<Frame>>,
    cfg: OdinConfig,
    seed: u64,
    model_seq: u64,
}

impl Odin {
    /// Builds an ODIN instance from a latent encoder (usually a trained
    /// DA-GAN) and a heavyweight teacher detector.
    pub fn new(encoder: Box<dyn LatentEncoder>, teacher: Detector, cfg: OdinConfig, seed: u64) -> Self {
        Odin {
            encoder,
            manager: ClusterManager::new(cfg.manager),
            registry: ModelRegistry::new(),
            specializer: Specializer::new(cfg.specializer),
            teacher,
            temp_frames: Vec::new(),
            pending: std::collections::BTreeMap::new(),
            cfg,
            seed,
            model_seq: 0,
        }
    }

    /// The drift detector's cluster manager (read access for reporting).
    pub fn manager(&self) -> &ClusterManager {
        &self.manager
    }

    /// The model registry (read/write access for reporting and warm
    /// starts).
    pub fn registry_mut(&mut self) -> &mut ModelRegistry {
        &mut self.registry
    }

    /// Total model memory currently deployed, in bytes. The baseline
    /// configuration counts the teacher; ODIN counts its specialized
    /// models (the teacher is retired from serving once models exist).
    pub fn memory_bytes(&self) -> usize {
        if self.cfg.baseline_only || self.registry.is_empty() {
            self.teacher.param_bytes()
        } else {
            self.registry.total_bytes()
        }
    }

    /// Processes one frame end-to-end.
    pub fn process(&mut self, frame: &Frame) -> FrameResult {
        if self.cfg.baseline_only {
            return FrameResult {
                detections: self.teacher.detect(&frame.image),
                assignment: Assignment::Temporary,
                drift: None,
                used_teacher: true,
                selection: Selection::empty(),
            };
        }

        // ❶ DETECTOR: project and cluster.
        let z = self.encoder.project(&frame.image);
        let obs = self.manager.observe(&z);
        match obs.assignment {
            Assignment::Temporary => {
                if self.temp_frames.len() < self.cfg.buffer_cap {
                    self.temp_frames.push(frame.clone());
                }
            }
            Assignment::Cluster(id) => {
                // A cluster still waiting for its model keeps collecting
                // training data.
                if let Some(buf) = self.pending.get_mut(&id) {
                    if buf.len() < self.cfg.buffer_cap {
                        buf.push(frame.clone());
                    }
                    self.try_train(id);
                }
            }
        }

        // ❷ SPECIALIZER: drift recovery.
        let mut drift = None;
        if let Some(new_id) = obs.promoted {
            drift = Some(*self.manager.events().last().expect("promotion recorded"));
            let seed_frames = std::mem::take(&mut self.temp_frames);
            self.pending.insert(new_id, seed_frames);
            self.try_train(new_id);
            if let Some(evicted) = obs.evicted {
                self.registry.remove(evicted);
                self.pending.remove(&evicted);
            }
        }

        // ❸ SELECTOR: pick models and run inference.
        let (detections, used_teacher, selection) = self.infer(&z, frame);
        FrameResult { detections, assignment: obs.assignment, drift, used_teacher, selection }
    }

    /// Trains and registers a cluster's model once it has accumulated
    /// enough frames (Algorithm 2's `GenerateNewModel`, gated on data
    /// sufficiency).
    fn try_train(&mut self, cluster_id: usize) {
        let ready = self
            .pending
            .get(&cluster_id)
            .is_some_and(|buf| !buf.is_empty() && buf.len() >= self.cfg.min_train_frames);
        if !ready {
            return;
        }
        let frames = self.pending.remove(&cluster_id).expect("checked above");
        self.model_seq += 1;
        let seed = self.seed.wrapping_add(self.model_seq * 7919);
        let model = match self.cfg.oracle {
            OracleLabels::Immediate => ClusterModel {
                detector: self.specializer.build_specialized(seed, &frames),
                kind: ModelKind::Specialized,
            },
            OracleLabels::Never => ClusterModel {
                detector: self.specializer.build_lite(seed, &mut self.teacher, &frames),
                kind: ModelKind::Lite,
            },
        };
        self.registry.insert(cluster_id, model);
    }

    /// Ensemble inference over the selected models; falls back to the
    /// teacher when no model is applicable.
    fn infer(&mut self, z: &[f32], frame: &Frame) -> (Vec<Detection>, bool, Selection) {
        let selection = select_existing(self.cfg.policy, &self.manager, &self.registry, z);
        if selection.is_empty() {
            return (self.teacher.detect(&frame.image), true, selection);
        }
        let k = selection.models.len() as f32;
        let mut pool: Vec<Detection> = Vec::new();
        for &(id, w) in &selection.models {
            let model = self.registry.get_mut(id).expect("selection filtered to existing models");
            for mut d in model.detector.detect(&frame.image) {
                // Rescale so a single selected model keeps its raw scores
                // and ensemble members compete by weight.
                d.score = (d.score * w * k).min(1.0);
                pool.push(d);
            }
        }
        (nms(pool, DEFAULT_NMS_IOU), false, selection)
    }

    /// Switches the SELECTOR policy (used by the Table-5 experiment to
    /// compare policies over the same clusters and models).
    pub fn set_policy(&mut self, policy: SelectionPolicy) {
        self.cfg.policy = policy;
    }

    /// Inference without observation: runs SELECTOR + models on a frame
    /// but does not update DETECTOR's cluster state. Used to evaluate a
    /// frozen system on held-out data.
    pub fn infer_only(&mut self, frame: &Frame) -> Vec<Detection> {
        if self.cfg.baseline_only {
            return self.teacher.detect(&frame.image);
        }
        let z = self.encoder.project(&frame.image);
        self.infer(&z, frame).0
    }

    /// Processes a whole stream, returning per-frame results.
    pub fn process_stream(&mut self, frames: &[Frame]) -> Vec<FrameResult> {
        frames.iter().map(|f| self.process(f)).collect()
    }

    /// Convenience: builds a deterministic RNG namespaced to this
    /// instance (used by warm-start helpers in experiments).
    pub fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt)
    }

    /// Pre-registers a model for a cluster id (warm start — used by
    /// experiments that train specialized models offline, as §6.2's
    /// cluster bootstrap does).
    pub fn register_model(&mut self, cluster_id: usize, detector: Detector, kind: ModelKind) {
        self.registry.insert(cluster_id, ClusterModel { detector, kind });
    }

    /// Bootstraps DETECTOR's clusters from a training stream without
    /// running inference (the held-out-subset training of §6.2).
    pub fn bootstrap_clusters(&mut self, frames: &[Frame]) -> Vec<usize> {
        let mut promoted = Vec::new();
        for f in frames {
            let z = self.encoder.project(&f.image);
            let obs = self.manager.observe(&z);
            match obs.assignment {
                Assignment::Temporary => {
                    if self.temp_frames.len() < self.cfg.buffer_cap {
                        self.temp_frames.push(f.clone());
                    }
                }
                Assignment::Cluster(id) => {
                    if let Some(buf) = self.pending.get_mut(&id) {
                        if buf.len() < self.cfg.buffer_cap {
                            buf.push(f.clone());
                        }
                        self.try_train(id);
                    }
                }
            }
            if let Some(id) = obs.promoted {
                let seed_frames = std::mem::take(&mut self.temp_frames);
                self.pending.insert(id, seed_frames);
                self.try_train(id);
                if let Some(evicted) = obs.evicted {
                    self.registry.remove(evicted);
                    self.pending.remove(&evicted);
                }
                promoted.push(id);
            }
        }
        promoted
    }

    /// Projects an image with the pipeline's encoder (for external
    /// analyses such as Table 2's cluster crosstab).
    pub fn project(&mut self, frame: &Frame) -> Vec<f32> {
        self.encoder.project(&frame.image)
    }
}

/// Applies the policy, then filters to clusters that actually have a
/// registered model (a cluster can briefly exist without one when its
/// buffer was empty).
fn select_existing(
    policy: SelectionPolicy,
    manager: &ClusterManager,
    registry: &ModelRegistry,
    z: &[f32],
) -> Selection {
    let mut s = select(policy, manager, z);
    s.models.retain(|(id, _)| registry.kind(*id).is_some());
    if s.models.is_empty() {
        return Selection { models: Vec::new(), used_fallback: s.used_fallback };
    }
    let total: f32 = s.models.iter().map(|m| m.1).sum();
    if total > 0.0 {
        for m in &mut s.models {
            m.1 /= total;
        }
    }
    s
}

/// Ground-truth boxes of a frame slice, shaped for mAP evaluation.
pub fn gt_refs(frames: &[Frame]) -> Vec<&[GtBox]> {
    frames.iter().map(|f| f.boxes.as_slice()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::HistogramEncoder;
    use odin_data::{SceneGen, Subset};
    use odin_detect::DetectorArch;

    fn quick_cfg() -> OdinConfig {
        OdinConfig {
            manager: ManagerConfig {
                min_points: 12,
                stable_window: 4,
                kl_eps: 5e-3,
                hist_hi: 8.0,
                ..ManagerConfig::default()
            },
            specializer: SpecializerConfig {
                arch: DetectorArch::Small,
                frame_size: 48,
                train_iters: 30,
                distill_iters: 20,
                batch_size: 4,
            },
            min_train_frames: 20,
            ..OdinConfig::default()
        }
    }

    fn new_odin(cfg: OdinConfig) -> Odin {
        let mut rng = StdRng::seed_from_u64(0);
        let teacher = Detector::heavy(48, &mut rng);
        Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 42)
    }

    #[test]
    fn baseline_mode_always_uses_teacher() {
        let cfg = OdinConfig { baseline_only: true, ..quick_cfg() };
        let mut odin = new_odin(cfg);
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(1);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 3);
        for f in &frames {
            let r = odin.process(f);
            assert!(r.used_teacher);
            assert!(r.drift.is_none());
        }
        assert_eq!(odin.manager().clusters().len(), 0);
    }

    #[test]
    fn drift_is_detected_and_model_trained() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(2);
        let night = gen.subset_frames(&mut rng, Subset::Night, 60);
        let results = odin.process_stream(&night);
        let drifts: Vec<_> = results.iter().filter_map(|r| r.drift).collect();
        assert!(!drifts.is_empty(), "no drift detected on the first concept");
        assert!(!odin.registry_mut().is_empty(), "no model trained after promotion");
        // Later frames should be served by the specialized model.
        let last = results.last().expect("non-empty stream");
        assert!(!last.used_teacher, "teacher still serving after recovery");
    }

    #[test]
    fn second_concept_adds_second_model() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(3);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        let n1 = odin.registry_mut().len();
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Day, 60));
        let n2 = odin.registry_mut().len();
        assert!(n2 > n1, "day concept did not produce a new model ({n1} -> {n2})");
    }

    #[test]
    fn lite_models_when_labels_never_arrive() {
        let cfg = OdinConfig { oracle: OracleLabels::Never, ..quick_cfg() };
        let mut odin = new_odin(cfg);
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(4);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        let ids = odin.registry_mut().ids();
        assert!(!ids.is_empty());
        for id in ids {
            assert_eq!(odin.registry_mut().kind(id), Some(ModelKind::Lite));
        }
    }

    #[test]
    fn memory_shrinks_after_recovery() {
        let mut odin = new_odin(quick_cfg());
        let baseline_mem = odin.memory_bytes();
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(5);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        assert!(
            odin.memory_bytes() < baseline_mem,
            "specialized models should be smaller than the teacher"
        );
    }

    #[test]
    fn infer_only_does_not_mutate_clusters() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(7);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        let clusters = odin.manager().clusters().len();
        let seen = odin.manager().seen();
        let frames = gen.subset_frames(&mut rng, Subset::Day, 10);
        for f in &frames {
            let _ = odin.infer_only(f);
        }
        assert_eq!(odin.manager().clusters().len(), clusters);
        assert_eq!(odin.manager().seen(), seen, "infer_only must not observe");
    }

    #[test]
    fn set_policy_changes_selection_behaviour() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(8);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Day, 60));
        if odin.registry_mut().len() < 2 {
            return; // fixture didn't split; covered by other tests
        }
        let frame = &gen.subset_frames(&mut rng, Subset::Night, 1)[0];
        odin.set_policy(crate::selector::SelectionPolicy::MostRecent);
        let r1 = odin.process(frame);
        assert!(r1.selection.models.len() <= 1);
        odin.set_policy(crate::selector::SelectionPolicy::KnnUnweighted(4));
        let r2 = odin.process(frame);
        assert!(r2.selection.models.len() >= r1.selection.models.len());
    }

    #[test]
    fn bootstrap_reports_promotions() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(6);
        let promoted = odin.bootstrap_clusters(&gen.subset_frames(&mut rng, Subset::Night, 60));
        assert!(!promoted.is_empty());
        assert_eq!(promoted.len(), odin.manager().events().len());
    }
}

//! The end-to-end ODIN pipeline (Figure 3).
//!
//! A frame flows through: ❶ DETECTOR projects it to the latent manifold
//! and assigns it to a cluster (or the temporary cluster); ❷ on a drift
//! event SPECIALIZER trains a model for the new cluster (a YoloLite
//! immediately; a YoloSpecialized when oracle labels are available);
//! ❸ SELECTOR picks the ensemble of specialized models that runs
//! inference on the frame. Before any cluster exists, the heavyweight
//! teacher model serves inference (the static-baseline behaviour).
//!
//! Stages ❶+❷ share one ingest path ([`Odin::process`] and
//! [`Odin::bootstrap_clusters`] both run it), and SPECIALIZER can train
//! either inline or on background workers — see [`crate::training`].

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;

use odin_data::{Frame, GtBox};
use odin_detect::{nms, Detection, Detector, DEFAULT_NMS_IOU};
use odin_drift::{Assignment, ClusterManager, ClusterSignature, DriftEvent, ManagerConfig};
use odin_log::{EventLogConfig, LogMetrics, LogRecord, LogWriter, RecordKind, ServedLabel};
use odin_store::checkpoint::write_atomic;
use odin_store::{read_wal, Checkpoint, CheckpointBuilder, Decoder, Encoder, Persist, StoreError};
use odin_telemetry::{Level, SpanCtx, SpanGuard, TimelineStage, NO_PARENT};

use crate::attic::{AtticConfig, ModelAttic};
use crate::encoder::LatentEncoder;
use crate::metrics::PipelineStats;
use crate::registry::{ClusterModel, ModelKind, ModelRegistry, ServePrecision, SharedRegistry};
use crate::selector::{select, Selection, SelectionPolicy};
use crate::specializer::{Specializer, SpecializerConfig};
use crate::store::{
    decode_wal_event, encode_archive, encode_attic_take, encode_drift, encode_evict,
    encode_install, persist_detector, persist_encoder, persist_frames, persist_registry_models,
    persist_retained_jobs, persist_telemetry, restore_detector, restore_encoder, restore_frames,
    restore_registry_models, restore_retained_jobs, restore_telemetry, section, CheckpointPolicy,
    PipelineStore, RetainedJob, WalEvent, EVENT_LOG_FILE, FLIGHT_FILE, SNAPSHOT_FILE, WAL_FILE,
};
use crate::telemetry::Telemetry;
use crate::training::{TrainHandle, TrainJob, TrainRouter, TrainedModel, TrainingMode};

/// Frames encoded per [`LatentEncoder::project_batch`] call by the
/// stream/bootstrap paths. Bounds im2col scratch while amortizing
/// per-call overhead over many frames.
const ENCODE_CHUNK: usize = 64;

/// Width of one stream's cluster-id namespace inside a shared
/// [`ModelRegistry`]: shard `s` owns global ids
/// `[s * NS_STRIDE, (s + 1) * NS_STRIDE)`. Local (per-shard) cluster
/// ids stay small — DETECTOR promotes a handful of clusters per camera
/// — so a 2^32 stride can never collide between streams. Standalone
/// pipelines keep namespace base 0, which makes local and global ids
/// coincide (and keeps the on-disk checkpoint format unchanged:
/// snapshots always persist local ids).
pub const NS_STRIDE: usize = 1 << 32;

/// Largest mAP drop an int8-quantized model may show against its f32
/// original on the install-time gate set before the install falls back
/// to f32 serving (counted in `odin_quant_fallback_total`).
pub const QUANT_MAP_DELTA: f32 = 0.05;

/// How many of the cluster's training frames the int8 install gate
/// evaluates. Bounds the (teacher-free) mAP check's cost; the gate set
/// is the head of the very frames the model just trained on, so it is
/// available in both inline and background installs.
pub const QUANT_GATE_FRAMES: usize = 32;

/// How oracle labels become available to SPECIALIZER (§7 discusses this
/// constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleLabels {
    /// Ground truth is available as soon as a cluster is promoted: a
    /// YoloSpecialized model is trained immediately.
    Immediate,
    /// Labels never arrive: clusters are served by YoloLite models only.
    Never,
}

/// Configuration of the whole pipeline.
#[derive(Debug, Clone, Copy)]
pub struct OdinConfig {
    /// DETECTOR clustering configuration.
    pub manager: ManagerConfig,
    /// SELECTOR policy.
    pub policy: SelectionPolicy,
    /// SPECIALIZER training configuration.
    pub specializer: SpecializerConfig,
    /// Oracle-label availability.
    pub oracle: OracleLabels,
    /// SPECIALIZER scheduling: inline (deterministic default) or on
    /// background worker threads.
    pub training: TrainingMode,
    /// When true, drift detection and recovery are disabled and every
    /// frame is served by the heavyweight teacher — the static baseline
    /// of Figure 1 / Table 7.
    pub baseline_only: bool,
    /// Cap on frames buffered for the next specialization run.
    pub buffer_cap: usize,
    /// Minimum frames a cluster must accumulate before SPECIALIZER
    /// trains its model. Promotion usually happens on a few dozen
    /// outliers; the paper's SPECIALIZER keeps "collect[ing] sufficient
    /// novel data points" before the model is generated, with SELECTOR
    /// covering the gap from nearby clusters.
    pub min_train_frames: usize,
    /// Numeric precision cluster models are served at. Under `Int8`,
    /// installs quantize once and gate the swap on an mAP-delta check
    /// ([`QUANT_MAP_DELTA`]); a failed gate serves f32 instead.
    pub precision: ServePrecision,
    /// Durable event log ([`odin_log`]): when enabled and a store is
    /// attached, per-frame detection records and drift/recovery events
    /// stream to `<store>/events.odlg` through a bounded channel with
    /// counted-drop backpressure (the hot path never blocks on it).
    pub event_log: EventLogConfig,
    /// Model attic ([`crate::attic`]): when enabled, cap-evicted
    /// clusters' signatures + models are archived, and a later drift
    /// whose cluster matches an archived signature reinstalls the
    /// cached model instead of retraining.
    pub attic: AtticConfig,
}

impl Default for OdinConfig {
    fn default() -> Self {
        OdinConfig {
            manager: ManagerConfig::default(),
            policy: SelectionPolicy::DeltaBand,
            specializer: SpecializerConfig::default(),
            oracle: OracleLabels::Immediate,
            training: TrainingMode::Inline,
            baseline_only: false,
            buffer_cap: 512,
            min_train_frames: 120,
            precision: ServePrecision::F32,
            event_log: EventLogConfig::default(),
            attic: AtticConfig::default(),
        }
    }
}

/// Which execution path produced a frame's detections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The heavyweight teacher (no specialized model was applicable).
    Teacher,
    /// An ensemble chosen by the policy's primary criterion.
    Ensemble,
    /// An ensemble chosen by the policy's fallback path (e.g. Δ-BM
    /// finding no band match and deferring to KNN).
    FallbackEnsemble,
}

/// What happened while processing one frame.
pub struct FrameResult {
    /// Final (post-NMS) detections for the frame.
    pub detections: Vec<Detection>,
    /// DETECTOR's cluster assignment.
    pub assignment: Assignment,
    /// A drift event, if this frame triggered a promotion.
    pub drift: Option<DriftEvent>,
    /// True if the heavyweight teacher served this frame (no specialized
    /// model was applicable yet). Equivalent to
    /// `served_by == ServedBy::Teacher`; kept for callers that only
    /// care about the teacher/specialized split.
    pub used_teacher: bool,
    /// Exactly which path served the frame.
    pub served_by: ServedBy,
    /// The selection SELECTOR produced (empty when the teacher served).
    pub selection: Selection,
}

/// Typed outcome of the observe→buffer→promote→evict ingest stage.
pub struct IngestOutcome {
    /// The frame's latent projection (reused by SELECTOR).
    pub latent: Vec<f32>,
    /// DETECTOR's cluster assignment.
    pub assignment: Assignment,
    /// The drift event, if this frame promoted the temporary cluster.
    pub drift: Option<DriftEvent>,
    /// The cluster evicted by the cap, if promotion forced one out.
    pub evicted: Option<usize>,
}

/// The ODIN system.
pub struct Odin {
    encoder: Box<dyn LatentEncoder>,
    manager: ClusterManager,
    registry: SharedRegistry,
    specializer: Specializer,
    teacher: Arc<Detector>,
    temp_frames: Vec<Frame>,
    /// Frames accumulated per promoted-but-not-yet-modeled cluster.
    pending: BTreeMap<usize, Vec<Frame>>,
    /// Clusters whose training job is queued or running in the
    /// background pool.
    training_pending: BTreeSet<usize>,
    /// Inputs of queued/running background jobs, retained until install
    /// so a checkpoint can carry them across a restart (the job seed
    /// makes the re-trained model bit-identical).
    inflight: BTreeMap<usize, RetainedJob>,
    /// Open recovery arcs: per promoted cluster, the trace context of
    /// its `drift_detected` marker. Training spans parent onto it, so
    /// one trace links detection → training → install; persisted in
    /// checkpoints so restored pipelines keep the linkage.
    recovery: BTreeMap<usize, SpanCtx>,
    pool: Option<TrainHandle>,
    /// Archived models of cap-evicted clusters ([`crate::attic`]),
    /// probed on drift for a recurring-regime reinstall.
    attic: ModelAttic,
    /// Live persistence runtime ([`Odin::enable_store`]): WAL appender,
    /// background snapshot writer, and the snapshot policy.
    store: Option<PipelineStore>,
    stats: PipelineStats,
    telemetry: Telemetry,
    cfg: OdinConfig,
    seed: u64,
    model_seq: u64,
    /// Base of this pipeline's cluster-id namespace inside the (possibly
    /// shared) registry: global id = `ns_base + local id`. `0` for a
    /// standalone pipeline; `stream * NS_STRIDE` for a server shard
    /// (see [`Odin::attach_shared`]). All public APIs speak local ids.
    ns_base: usize,
    /// When false, snapshots omit the ENCODER and TEACHER sections
    /// (identical across a server's shards) — the server persists them
    /// once in `shared.odst` and restore resolves them from there.
    snapshot_self_contained: bool,
    /// Durable event-log writer, opened by [`Odin::enable_store`] when
    /// [`OdinConfig::event_log`] is enabled.
    event_log: Option<LogWriter>,
    /// Last event-log sequence number assigned. Owned by the emitter
    /// (this pipeline thread), not the writer, so record contents are
    /// a pure function of the stream; persisted in checkpoint META and
    /// reconciled with the log file's intact tail on `enable_store`.
    log_seq: u64,
}

impl Odin {
    /// Builds an ODIN instance from a latent encoder (usually a trained
    /// DA-GAN) and a heavyweight teacher detector.
    pub fn new(
        encoder: Box<dyn LatentEncoder>,
        teacher: Detector,
        cfg: OdinConfig,
        seed: u64,
    ) -> Self {
        Self::with_teacher(encoder, Arc::new(teacher), cfg, seed)
    }

    /// [`Odin::new`] with an already-shared teacher handle. A
    /// multi-stream server builds every shard from one teacher `Arc`,
    /// so N shards hold one copy of the heavyweight weights.
    pub fn with_teacher(
        encoder: Box<dyn LatentEncoder>,
        teacher: Arc<Detector>,
        cfg: OdinConfig,
        seed: u64,
    ) -> Self {
        let specializer = Specializer::new(cfg.specializer);
        let telemetry = Telemetry::new();
        let pool = match cfg.training {
            TrainingMode::Inline => None,
            TrainingMode::Background { workers } => {
                let router =
                    TrainRouter::new(workers, specializer, Arc::clone(&teacher), telemetry.clone());
                Some(TrainHandle::new(router, 0))
            }
        };
        Odin {
            encoder,
            manager: ClusterManager::new(cfg.manager),
            registry: ModelRegistry::new().into_shared(),
            specializer,
            teacher,
            temp_frames: Vec::new(),
            pending: BTreeMap::new(),
            training_pending: BTreeSet::new(),
            inflight: BTreeMap::new(),
            recovery: BTreeMap::new(),
            pool,
            attic: ModelAttic::new(cfg.attic),
            store: None,
            stats: PipelineStats::default(),
            telemetry,
            cfg,
            seed,
            model_seq: 0,
            ns_base: 0,
            snapshot_self_contained: true,
            event_log: None,
            log_seq: 0,
        }
    }

    /// Global registry id of one of this pipeline's local cluster ids.
    fn gid(&self, local: usize) -> usize {
        self.ns_base + local
    }

    /// This pipeline's half-open global-id range inside the registry.
    fn ns_range(&self) -> (usize, usize) {
        (self.ns_base, self.ns_base + NS_STRIDE)
    }

    /// Base of this pipeline's cluster-id namespace in the registry
    /// (`0` standalone, `stream * NS_STRIDE` as a server shard).
    pub fn ns_base(&self) -> usize {
        self.ns_base
    }

    /// The drift detector's cluster manager (read access for reporting).
    pub fn manager(&self) -> &ClusterManager {
        &self.manager
    }

    /// Shared handle to the model registry. Take `.read()` for
    /// reporting; the pipeline itself takes `.write()` only to install
    /// or evict models at frame boundaries.
    pub fn registry(&self) -> SharedRegistry {
        Arc::clone(&self.registry)
    }

    /// Number of models this pipeline registered (its own namespace
    /// only when the registry is shared).
    pub fn model_count(&self) -> usize {
        let (lo, hi) = self.ns_range();
        self.registry.read().count_in(lo, hi)
    }

    /// This pipeline's registered cluster ids (local), ascending.
    pub fn model_ids(&self) -> Vec<usize> {
        let (lo, hi) = self.ns_range();
        self.registry.read().ids_in(lo, hi).into_iter().map(|id| id - self.ns_base).collect()
    }

    /// The kind of model serving a (local) cluster, if one is
    /// registered.
    pub fn model_kind(&self, cluster_id: usize) -> Option<ModelKind> {
        self.registry.read().kind(self.gid(cluster_id))
    }

    /// Model-deployment footprint in bytes — the quantity Figure 1 /
    /// Table 7 compare. While the teacher serves every frame (baseline
    /// mode, or no specialized model yet) this is the teacher's
    /// parameter bytes; once specialized models exist it is the
    /// registry's total. The teacher stays *resident* either way (it
    /// backs fallback serving and distillation); its bytes are
    /// intentionally excluded from the ODIN side of the comparison,
    /// which measures what must be deployed per camera.
    pub fn memory_bytes(&self) -> usize {
        let (lo, hi) = self.ns_range();
        let registry = self.registry.read();
        if self.cfg.baseline_only || registry.count_in(lo, hi) == 0 {
            self.teacher.param_bytes()
        } else {
            registry.total_bytes_in(lo, hi)
        }
    }

    /// Pipeline-stage counters: training queue depth, in-flight jobs,
    /// training wall-time, and how often frames were served by the
    /// teacher or a fallback ensemble while their cluster's model was
    /// still pending.
    pub fn stats(&self) -> PipelineStats {
        let mut s = self.stats.clone();
        if let Some(pool) = &self.pool {
            s.queue_depth = pool.queue_depth();
            s.in_flight = pool.in_flight();
        }
        s.store_errors = self.telemetry.store_errors.get();
        s.last_store_error = self.telemetry.last_store_error();
        s
    }

    /// The pipeline's telemetry facade: per-stage latency histograms,
    /// counters, the drift timeline, and the structured event log.
    /// Render with [`Telemetry::render_prometheus`] /
    /// [`Telemetry::render_json`], or take a typed
    /// [`Telemetry::snapshot`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attic occupancy: `(archived models, approximate bytes)`. Stays
    /// `(0, 0)` while [`AtticConfig::enabled`] is false.
    pub fn attic_stats(&self) -> (usize, usize) {
        (self.attic.len(), self.attic.bytes())
    }

    /// Appends one row to the durable event log, if one is open. The
    /// sequence number, timestamp (from the installed clock), and
    /// stream id are stamped here, on the pipeline thread, so record
    /// contents are a pure function of the stream — the background
    /// writer only decides *when* bytes reach the disk. A full queue
    /// drops the record and counts it; it never blocks serving.
    fn log_event(&mut self, mut rec: LogRecord) {
        let Some(log) = &self.event_log else { return };
        self.log_seq += 1;
        rec.seq = self.log_seq;
        rec.ts_us = (self.telemetry.registry().now_ms() * 1000.0).round() as u64;
        rec.stream = (self.ns_base / NS_STRIDE) as u32;
        log.append(rec);
    }

    /// Stage ❶+❷ ingest: observe the frame (whose latent projection was
    /// already computed — singly or by the batched encode path), buffer
    /// it for SPECIALIZER, and react to promotions and evictions. Shared
    /// by [`Odin::process`] and [`Odin::bootstrap_clusters`] so the two
    /// can never diverge; the encoder is stateless with respect to the
    /// stream, so projecting ahead of ingest is exact.
    fn ingest_with_latent(
        &mut self,
        frame: &Frame,
        latent: Vec<f32>,
        ctx: SpanCtx,
    ) -> IngestOutcome {
        // Land any background-trained models before observing, so this
        // frame already sees them.
        self.install_completed();
        let obs = {
            let _g = self.telemetry.stage_span("ingest", &self.telemetry.stage_ingest, ctx);
            self.manager.observe(&latent)
        };
        match obs.assignment {
            Assignment::Temporary => {
                if self.temp_frames.len() < self.cfg.buffer_cap {
                    self.temp_frames.push(frame.clone());
                }
            }
            Assignment::Cluster(id) => {
                // A cluster still waiting for its model keeps collecting
                // training data.
                if let Some(buf) = self.pending.get_mut(&id) {
                    if buf.len() < self.cfg.buffer_cap {
                        buf.push(frame.clone());
                    }
                    self.try_train(id);
                }
            }
        }
        if let Some(event) = obs.promoted {
            self.telemetry.drift_events.inc();
            self.telemetry.record_timeline(
                TimelineStage::DriftDetected,
                event.cluster_id,
                event.at,
            );
            // Each drift episode opens its own trace: later spans —
            // train_job_queued, the (possibly worker-side) train span,
            // and the install marker — all parent back onto this
            // drift_detected marker, even across threads or a
            // checkpoint restore.
            let trace = self.telemetry.new_trace();
            let marker = self.telemetry.instant(
                "drift_detected",
                SpanCtx { trace, parent: NO_PARENT },
                event.cluster_id as i64,
                event.at as i64,
            );
            let rctx = SpanCtx { trace, parent: marker };
            self.recovery.insert(event.cluster_id, rctx);
            // Log the promotion (with the full new-cluster state) before
            // any consequence of it, mirroring the live apply order.
            if self.store.is_some() {
                let payload =
                    self.manager.cluster(event.cluster_id).map(|c| encode_drift(event, c));
                if let Some(p) = payload {
                    self.wal_append(&p, rctx);
                }
            }
            // The drift record opens the episode in the event log under
            // the recovery trace, before any of its consequences
            // (train_queued, install, eviction) are logged.
            self.log_event(LogRecord {
                kind: RecordKind::DriftDetected,
                frame: event.at as u64,
                cluster: event.cluster_id as i64,
                trace: rctx.trace,
                ..LogRecord::empty()
            });
            let seed_frames = std::mem::take(&mut self.temp_frames);
            self.pending.insert(event.cluster_id, seed_frames);
            // Handle the cap eviction this promotion forced *before*
            // scheduling recovery for the new cluster: the evicted
            // model lands in the attic first, so a regime displaced by
            // its own return is still reinstallable (and the WAL's
            // Archive → Install order matches the live probe order).
            if let Some(evicted) = obs.evicted {
                self.telemetry.evictions.inc();
                self.telemetry.record_timeline(
                    TimelineStage::ClusterEvicted,
                    evicted,
                    self.manager.seen(),
                );
                let model = self.registry.write().remove(self.gid(evicted));
                let dropped = self.manager.take_evicted();
                if self.cfg.attic.enabled {
                    if let (Some(model), Some(cluster)) = (model, dropped.as_ref()) {
                        // Archive before the eviction becomes durable:
                        // a crash between the two WAL appends replays
                        // into "archived, not yet evicted" — the model
                        // is never lost.
                        let signature = ClusterSignature::from_cluster(cluster);
                        let quantized = model.precision() == ServePrecision::Int8;
                        if self.store.is_some() {
                            let p = encode_archive(
                                evicted,
                                &signature,
                                model.kind,
                                &model.detector,
                                quantized,
                            );
                            self.wal_append(&p, ctx);
                        }
                        let lru = self.attic.archive(
                            evicted,
                            signature,
                            model.kind,
                            model.detector,
                            quantized,
                        );
                        self.telemetry.attic_archived.inc();
                        self.telemetry.attic_evicted.add(lru as u64);
                    }
                }
                if self.store.is_some() {
                    let p = encode_evict(evicted);
                    self.wal_append(&p, ctx);
                }
                // A queued-but-not-started background job for the
                // evicted cluster would only burn a worker on a model
                // nobody can serve; tombstone it so the pool discards
                // it at dequeue (counted in
                // `odin_train_cancelled_total`). A job already running
                // finishes and is dropped by the orphan path instead.
                if self.training_pending.contains(&evicted) {
                    if let Some(pool) = &self.pool {
                        pool.cancel(evicted);
                    }
                }
                self.pending.remove(&evicted);
                self.training_pending.remove(&evicted);
                self.inflight.remove(&evicted);
                self.recovery.remove(&evicted);
                self.log_event(LogRecord {
                    kind: RecordKind::ClusterEvicted,
                    frame: self.manager.seen() as u64,
                    cluster: evicted as i64,
                    trace: ctx.trace,
                    ..LogRecord::empty()
                });
            }
            if !self.try_reinstall_from_attic(event.cluster_id, rctx) {
                self.try_train(event.cluster_id);
            }
            // Preserve the spans and events leading up to the drift:
            // when a store is attached, dump the flight recorder next
            // to the WAL.
            self.telemetry.flight_autodump();
        }
        IngestOutcome {
            latent,
            assignment: obs.assignment,
            drift: obs.promoted,
            evicted: obs.evicted,
        }
    }

    /// Processes one frame end-to-end.
    pub fn process(&mut self, frame: &Frame) -> FrameResult {
        if self.cfg.baseline_only {
            let root = self.telemetry.frame_span(self.telemetry.frames.get());
            self.telemetry.frames.inc();
            self.telemetry.served_teacher.inc();
            let detections = {
                let _g = self.telemetry.stage_span(
                    "detect",
                    &self.telemetry.stage_detect,
                    root.child_ctx(),
                );
                self.teacher.detect(&frame.image)
            };
            return FrameResult {
                detections,
                assignment: Assignment::Temporary,
                drift: None,
                used_teacher: true,
                served_by: ServedBy::Teacher,
                selection: Selection::empty(),
            };
        }
        let root = self.telemetry.frame_span(self.telemetry.frames.get());
        let latent = {
            let _g =
                self.telemetry.stage_span("encode", &self.telemetry.stage_encode, root.child_ctx());
            self.encoder.project(&frame.image)
        };
        self.process_traced(frame, latent, root)
    }

    /// [`Odin::process`] for a pre-computed latent (the batched path).
    fn process_with_latent(&mut self, frame: &Frame, latent: Vec<f32>) -> FrameResult {
        let root = self.telemetry.frame_span(self.telemetry.frames.get());
        self.process_traced(frame, latent, root)
    }

    /// The serving stages under an already-open per-frame root span.
    fn process_traced(&mut self, frame: &Frame, latent: Vec<f32>, root: SpanGuard) -> FrameResult {
        self.telemetry.frames.inc();
        let ctx = root.child_ctx();
        // ❶+❷ DETECTOR ingest and SPECIALIZER scheduling.
        let outcome = self.ingest_with_latent(frame, latent, ctx);
        // ❸ SELECTOR: pick models and run inference.
        let (detections, served_by, selection) = self.infer(&outcome.latent, frame, ctx);
        self.update_gauges();

        // While a cluster's model is still being collected for, queued,
        // or trained, its frames are covered by the teacher or by
        // nearby clusters' models — count both gap-serving modes.
        if let Assignment::Cluster(id) = outcome.assignment {
            if self.training_pending.contains(&id) || self.pending.contains_key(&id) {
                match served_by {
                    ServedBy::Teacher => self.stats.teacher_frames_while_pending += 1,
                    _ => self.stats.fallback_frames_while_pending += 1,
                }
            }
        }

        // Close the frame's root span *before* a snapshot can run, so a
        // checkpoint written at this boundary already contains the
        // frame's complete trace — the basis of byte-identical
        // Chrome-trace exports across checkpoint/restore.
        let frame_wall_ms = root.close();
        if self.event_log.is_some() {
            let (conf_mean, conf_max) = conf_summary(&detections);
            self.log_event(LogRecord {
                kind: RecordKind::Frame,
                frame: self.manager.seen().saturating_sub(1) as u64,
                cluster: match outcome.assignment {
                    Assignment::Cluster(id) => id as i64,
                    Assignment::Temporary => -1,
                },
                served: served_label(served_by),
                dets: detections.len() as u32,
                conf_mean,
                conf_max,
                latency_us: (frame_wall_ms * 1000.0).round() as u64,
                trace: ctx.trace,
                ..LogRecord::empty()
            });
        }
        self.maybe_snapshot(outcome.drift.is_some());

        FrameResult {
            detections,
            assignment: outcome.assignment,
            drift: outcome.drift,
            used_teacher: served_by == ServedBy::Teacher,
            served_by,
            selection,
        }
    }

    /// Schedules (or inline-runs) a cluster's training once it has
    /// accumulated enough frames (Algorithm 2's `GenerateNewModel`,
    /// gated on data sufficiency).
    fn try_train(&mut self, cluster_id: usize) {
        let ready = self
            .pending
            .get(&cluster_id)
            .is_some_and(|buf| !buf.is_empty() && buf.len() >= self.cfg.min_train_frames);
        if !ready {
            return;
        }
        let frames = self.pending.remove(&cluster_id).expect("checked above");
        self.model_seq += 1;
        let seed = self.seed.wrapping_add(self.model_seq * 7919);
        let kind = match self.cfg.oracle {
            OracleLabels::Immediate => ModelKind::Specialized,
            OracleLabels::Never => ModelKind::Lite,
        };
        self.stats.jobs_submitted += 1;
        self.telemetry.jobs_submitted.inc();
        self.telemetry.record_timeline(
            TimelineStage::TrainJobQueued,
            cluster_id,
            self.manager.seen(),
        );
        // Continue the cluster's drift episode (or open a fresh trace
        // if no episode marker exists, e.g. after restoring a
        // pre-tracing checkpoint).
        let rctx = match self.recovery.get(&cluster_id) {
            Some(c) => *c,
            None => SpanCtx { trace: self.telemetry.new_trace(), parent: NO_PARENT },
        };
        let queued = self.telemetry.instant(
            "train_job_queued",
            rctx,
            cluster_id as i64,
            self.manager.seen() as i64,
        );
        let job_ctx = SpanCtx { trace: rctx.trace, parent: queued };
        self.log_event(LogRecord {
            kind: RecordKind::TrainQueued,
            frame: self.manager.seen() as u64,
            cluster: cluster_id as i64,
            trace: rctx.trace,
            ..LogRecord::empty()
        });
        match &self.pool {
            None => {
                let mut span = self.telemetry.span("train", job_ctx);
                span.set_cluster(cluster_id);
                let detector = match kind {
                    ModelKind::Specialized => self.specializer.build_specialized(seed, &frames),
                    ModelKind::Lite => self.specializer.build_lite(seed, &self.teacher, &frames),
                };
                let ctx = span.child_ctx();
                let wall_ms = span.close();
                self.install_with_gate(
                    TrainedModel { stream: 0, cluster_id, detector, kind, wall_ms, ctx },
                    Some(&frames),
                );
            }
            Some(pool) => {
                pool.submit(TrainJob {
                    stream: 0, // the handle stamps its own stream index
                    cluster_id,
                    seed,
                    kind,
                    frames: frames.clone(),
                    ctx: job_ctx,
                });
                self.training_pending.insert(cluster_id);
                self.inflight.insert(cluster_id, RetainedJob { seed, kind, frames, ctx: job_ctx });
            }
        }
    }

    /// On drift, probes the attic for an archived model whose signature
    /// matches the promoted cluster's centroid. On a hit the cached
    /// model is reinstalled through the normal install gate (re-deriving
    /// int8 serving under [`ServePrecision::Int8`]) instead of queueing
    /// a train job — recovery latency collapses from a SPECIALIZER run
    /// to a registry insert. Returns true when it reinstalled.
    fn try_reinstall_from_attic(&mut self, cluster_id: usize, rctx: SpanCtx) -> bool {
        if !self.cfg.attic.enabled || self.attic.is_empty() {
            return false;
        }
        let hit = self.manager.cluster(cluster_id).and_then(|c| self.attic.lookup(c.centroid()));
        let Some((idx, dist)) = hit else {
            self.telemetry.attic_misses.inc();
            return false;
        };
        let entry = self.attic.take(idx);
        self.telemetry.attic_hits.inc();
        if self.store.is_some() {
            // The take precedes the Install record in the WAL so replay
            // consumes the same entry the live probe did.
            let p = encode_attic_take(entry.cluster_id);
            self.wal_append(&p, rctx);
        }
        // The attic-hit marker stands where train_job_queued + train
        // would: same trace, so the arc reads
        // drift_detected → attic_hit → install.
        let marker = self.telemetry.instant(
            "attic_hit",
            rctx,
            cluster_id as i64,
            self.manager.seen() as i64,
        );
        self.log_event(LogRecord {
            kind: RecordKind::AtticHit,
            frame: self.manager.seen() as u64,
            cluster: cluster_id as i64,
            trace: rctx.trace,
            ..LogRecord::empty()
        });
        self.telemetry.event(
            Level::Info,
            "attic",
            format!(
                "cluster {cluster_id}: reinstalling archived model of evicted cluster {} \
                 (centroid distance {dist:.3})",
                entry.cluster_id
            ),
        );
        let gate = self.pending.remove(&cluster_id).unwrap_or_default();
        self.install_with_gate(
            TrainedModel {
                stream: 0,
                cluster_id,
                detector: entry.detector,
                kind: entry.kind,
                wall_ms: 0.0,
                ctx: SpanCtx { trace: rctx.trace, parent: marker },
            },
            if gate.is_empty() { None } else { Some(&gate) },
        );
        true
    }

    /// Installs one background-trained model: the retained job's frames
    /// (kept for checkpointing) double as the int8 gate set.
    fn install(&mut self, model: TrainedModel) {
        let retained = self.inflight.remove(&model.cluster_id);
        self.install_with_gate(model, retained.as_ref().map(|j| j.frames.as_slice()));
    }

    /// Installs one trained model, unless its cluster was evicted while
    /// the model was training. Under [`ServePrecision::Int8`] the model
    /// is quantized here — once, at install time — and the swap is
    /// gated on an mAP-delta check over `gate` (the frames it trained
    /// on); a failed gate falls back to f32 serving.
    fn install_with_gate(&mut self, model: TrainedModel, gate: Option<&[Frame]>) {
        self.training_pending.remove(&model.cluster_id);
        self.inflight.remove(&model.cluster_id);
        self.recovery.remove(&model.cluster_id);
        self.stats.train_wall_ms += model.wall_ms;
        self.telemetry.stage_train.observe_ms(model.wall_ms);
        if self.manager.cluster(model.cluster_id).is_none() {
            // Evicted mid-training: there is no cluster left to serve.
            // Close the recovery arc with a terminal marker on the same
            // trace instead of vanishing silently, and count the wasted
            // training run.
            self.telemetry.train_orphaned.inc();
            self.telemetry.instant(
                "train_orphaned",
                model.ctx,
                model.cluster_id as i64,
                self.manager.seen() as i64,
            );
            self.log_event(LogRecord {
                kind: RecordKind::TrainOrphaned,
                frame: self.manager.seen() as u64,
                cluster: model.cluster_id as i64,
                latency_us: (model.wall_ms * 1000.0).round() as u64,
                trace: model.ctx.trace,
                ..LogRecord::empty()
            });
            return;
        }
        let mut cm = ClusterModel::new(model.detector, model.kind);
        if self.cfg.precision == ServePrecision::Int8 {
            self.quantize_gated(&mut cm, model.cluster_id, gate);
        }
        if self.store.is_some() {
            let quantized = cm.precision() == ServePrecision::Int8;
            let p = encode_install(model.cluster_id, model.kind, &cm.detector, quantized);
            self.wal_append(&p, model.ctx);
        }
        let (counter, stage) = match model.kind {
            ModelKind::Lite => (&self.telemetry.models_lite, TimelineStage::LiteInstalled),
            ModelKind::Specialized => {
                (&self.telemetry.models_specialized, TimelineStage::SpecializedInstalled)
            }
        };
        counter.inc();
        self.telemetry.record_timeline(stage, model.cluster_id, self.manager.seen());
        // Close the recovery arc: the install marker parents onto the
        // train span (possibly recorded on a worker thread), completing
        // drift_detected → train_job_queued → train → install in one
        // trace.
        self.telemetry.instant(
            "install",
            model.ctx,
            model.cluster_id as i64,
            self.manager.seen() as i64,
        );
        // Close the episode in the event log too: same trace as the
        // drift/queued records, train wall time as the latency field.
        self.log_event(LogRecord {
            kind: RecordKind::ModelInstalled,
            frame: self.manager.seen() as u64,
            cluster: model.cluster_id as i64,
            latency_us: (model.wall_ms * 1000.0).round() as u64,
            trace: model.ctx.trace,
            ..LogRecord::empty()
        });
        self.registry.write().insert(self.gid(model.cluster_id), cm);
        self.stats.models_installed += 1;
    }

    /// Attempts int8 quantization of a freshly trained model, gated on
    /// an mAP-delta check over up to [`QUANT_GATE_FRAMES`] of `gate`.
    /// On a failed gate the model reverts to f32 and the fallback is
    /// counted in `odin_quant_fallback_total`. With no gate frames the
    /// quantization is accepted ungated (quantization is deterministic
    /// and the delta bound holds in expectation; warm-start paths use
    /// this).
    fn quantize_gated(&mut self, cm: &mut ClusterModel, cluster_id: usize, gate: Option<&[Frame]>) {
        if cm.quantize() != ServePrecision::Int8 {
            return; // architecture not quantizable; keep serving f32
        }
        let frames = match gate {
            Some(f) if !f.is_empty() => f,
            _ => return,
        };
        let eval = &frames[..frames.len().min(QUANT_GATE_FRAMES)];
        let q_map = cm.quant.as_ref().expect("quantized above").evaluate_map(eval);
        let f_map = cm.detector.evaluate_map(eval);
        if q_map + QUANT_MAP_DELTA < f_map {
            cm.quant = None;
            self.telemetry.quant_fallback.inc();
            self.telemetry.event(
                Level::Warn,
                "quant",
                format!(
                    "cluster {cluster_id}: int8 mAP {q_map:.3} more than \
                     {QUANT_MAP_DELTA} below f32 mAP {f_map:.3}; serving f32"
                ),
            );
        }
    }

    /// Lands every background-trained model that has finished, without
    /// blocking. Called at frame boundaries. On a shared pool this
    /// drains only this shard's models.
    fn install_completed(&mut self) {
        let done = match &self.pool {
            Some(pool) => pool.drain(),
            None => return,
        };
        for m in done {
            self.install(m);
        }
    }

    /// Blocks until every queued and in-flight background training job
    /// this pipeline submitted has finished, then installs the results.
    /// No-op under [`TrainingMode::Inline`]. After this returns, the
    /// registry state matches what inline training would have produced.
    pub fn finish_training(&mut self) {
        let done = match &self.pool {
            Some(pool) => pool.drain_barrier(),
            None => return,
        };
        for m in done {
            self.install(m);
        }
    }

    /// Ensemble inference over the selected models; falls back to the
    /// teacher when no model is applicable.
    fn infer(
        &self,
        z: &[f32],
        frame: &Frame,
        ctx: SpanCtx,
    ) -> (Vec<Detection>, ServedBy, Selection) {
        let registry = self.registry.read();
        let selection = {
            let _g = self.telemetry.stage_span("select", &self.telemetry.stage_select, ctx);
            select_existing(self.cfg.policy, &self.manager, &registry, self.ns_base, z)
        };
        let det_span = self.telemetry.stage_span("detect", &self.telemetry.stage_detect, ctx);
        if selection.is_empty() {
            let dets = self.teacher.detect(&frame.image);
            drop(det_span);
            self.telemetry.served_teacher.inc();
            return (dets, ServedBy::Teacher, selection);
        }
        let k = selection.models.len() as f32;
        let mut pool: Vec<Detection> = Vec::new();
        for &(id, w) in &selection.models {
            let model = registry.get(self.gid(id)).expect("selection filtered to existing models");
            for mut d in model.detect(&frame.image) {
                // Rescale so a single selected model keeps its raw scores
                // and ensemble members compete by weight.
                d.score = (d.score * w * k).min(1.0);
                pool.push(d);
            }
        }
        let served =
            if selection.used_fallback { ServedBy::FallbackEnsemble } else { ServedBy::Ensemble };
        match served {
            ServedBy::FallbackEnsemble => self.telemetry.served_fallback.inc(),
            _ => self.telemetry.served_ensemble.inc(),
        }
        let dets = nms(pool, DEFAULT_NMS_IOU);
        drop(det_span);
        (dets, served, selection)
    }

    /// Refreshes the instantaneous gauges (cluster count, model count,
    /// training queue). Called once per processed frame.
    fn update_gauges(&self) {
        let (lo, hi) = self.ns_range();
        self.telemetry.clusters.set(self.manager.clusters().len() as i64);
        self.telemetry.models.set(self.registry.read().count_in(lo, hi) as i64);
        self.telemetry.serve_precision.set(match self.cfg.precision {
            ServePrecision::F32 => 0,
            ServePrecision::Int8 => 1,
        });
        if let Some(pool) = &self.pool {
            self.telemetry.queue_depth.set(pool.queue_depth() as i64);
            self.telemetry.in_flight.set(pool.in_flight() as i64);
        }
    }

    /// Switches the SELECTOR policy (used by the Table-5 experiment to
    /// compare policies over the same clusters and models).
    pub fn set_policy(&mut self, policy: SelectionPolicy) {
        self.cfg.policy = policy;
    }

    /// Inference without observation: runs SELECTOR + models on a frame
    /// but does not update DETECTOR's cluster state. Used to evaluate a
    /// frozen system on held-out data.
    pub fn infer_only(&mut self, frame: &Frame) -> Vec<Detection> {
        if self.cfg.baseline_only {
            return self.teacher.detect(&frame.image);
        }
        let z = self.encoder.project(&frame.image);
        let root = self.telemetry.root_span("infer_only");
        self.infer(&z, frame, root.child_ctx()).0
    }

    /// Processes a batch of frames, encoding them in one
    /// [`LatentEncoder::project_batch`] call (one im2col per batch
    /// instead of per frame) and then running the per-frame
    /// observe→select→infer stages in stream order. Per-frame conv and
    /// dense rows are computed independently, so results are identical
    /// to calling [`Odin::process`] frame by frame.
    pub fn process_batch(&mut self, frames: &[Frame]) -> Vec<FrameResult> {
        if self.cfg.baseline_only {
            let images: Vec<_> = frames.iter().map(|f| &f.image).collect();
            self.telemetry.frames.add(frames.len() as u64);
            self.telemetry.served_teacher.add(frames.len() as u64);
            let batched = {
                let _g = self.telemetry.stage_root_span("detect", &self.telemetry.stage_detect);
                self.teacher.detect_batch(&images)
            };
            return batched
                .into_iter()
                .map(|detections| FrameResult {
                    detections,
                    assignment: Assignment::Temporary,
                    drift: None,
                    used_teacher: true,
                    served_by: ServedBy::Teacher,
                    selection: Selection::empty(),
                })
                .collect();
        }
        let images: Vec<_> = frames.iter().map(|f| &f.image).collect();
        let latents = {
            let _g = self.telemetry.stage_root_span("encode", &self.telemetry.stage_encode);
            self.encoder.project_batch(&images)
        };
        frames.iter().zip(latents).map(|(f, z)| self.process_with_latent(f, z)).collect()
    }

    /// Processes a whole stream, returning per-frame results. Encoding
    /// runs in fixed-size batches through [`Odin::process_batch`].
    pub fn process_stream(&mut self, frames: &[Frame]) -> Vec<FrameResult> {
        let mut out = Vec::with_capacity(frames.len());
        for chunk in frames.chunks(ENCODE_CHUNK.max(1)) {
            out.extend(self.process_batch(chunk));
        }
        out
    }

    /// Pre-registers a model for a cluster id (warm start — used by
    /// experiments that train specialized models offline, as §6.2's
    /// cluster bootstrap does).
    pub fn register_model(&mut self, cluster_id: usize, detector: Detector, kind: ModelKind) {
        let mut cm = ClusterModel::new(detector, kind);
        if self.cfg.precision == ServePrecision::Int8 {
            cm.quantize(); // warm start: no labelled gate set, accept ungated
        }
        self.registry.write().insert(self.gid(cluster_id), cm);
    }

    /// Bootstraps DETECTOR's clusters from a training stream without
    /// running inference (the held-out-subset training of §6.2). Waits
    /// for background training to finish so the returned clusters'
    /// models are servable immediately.
    pub fn bootstrap_clusters(&mut self, frames: &[Frame]) -> Vec<usize> {
        let mut promoted = Vec::new();
        for chunk in frames.chunks(ENCODE_CHUNK.max(1)) {
            let images: Vec<_> = chunk.iter().map(|f| &f.image).collect();
            let latents = {
                let _g = self.telemetry.stage_root_span("encode", &self.telemetry.stage_encode);
                self.encoder.project_batch(&images)
            };
            for (f, z) in chunk.iter().zip(latents) {
                let mut root = self.telemetry.root_span("bootstrap_frame");
                root.set_frame(self.manager.seen());
                let ctx = root.child_ctx();
                let outcome = self.ingest_with_latent(f, z, ctx);
                let drifted = outcome.drift.is_some();
                if let Some(event) = outcome.drift {
                    promoted.push(event.cluster_id);
                }
                root.close();
                self.maybe_snapshot(drifted);
            }
        }
        self.finish_training();
        promoted
    }

    /// Projects an image with the pipeline's encoder (for external
    /// analyses such as Table 2's cluster crosstab).
    pub fn project(&mut self, frame: &Frame) -> Vec<f32> {
        self.encoder.project(&frame.image)
    }

    // -- Persistence ---------------------------------------------------

    /// Serializes the full pipeline state into the sectioned,
    /// checksummed `odin-store` checkpoint container. `last_wal_seq`
    /// records which WAL records the snapshot already covers.
    fn snapshot_bytes(&self, last_wal_seq: u64) -> Result<Vec<u8>, StoreError> {
        let span = self.telemetry.root_span("snapshot_build");
        let mut builder = CheckpointBuilder::new();

        let mut enc = Encoder::new();
        enc.put_u64(self.seed);
        enc.put_u64(self.model_seq);
        enc.put_u64(last_wal_seq);
        enc.put_u64(self.log_seq);
        builder.section(section::META, enc.into_bytes());

        builder.section(section::CONFIG, self.cfg.to_store_bytes());

        // ENCODER and TEACHER are identical across a server's shards;
        // when this pipeline snapshots as a shard, they are persisted
        // once in the server's `shared.odst` instead (see
        // `shared_sections_bytes`) and resolved from there at restore.
        if self.snapshot_self_contained {
            let mut enc = Encoder::new();
            persist_encoder(&self.encoder.snapshot(), &mut enc)?;
            builder.section(section::ENCODER, enc.into_bytes());

            let mut enc = Encoder::new();
            persist_detector(&self.teacher, &mut enc);
            builder.section(section::TEACHER, enc.into_bytes());
        }

        builder.section(section::MANAGER, self.manager.to_store_bytes());

        let mut enc = Encoder::new();
        {
            // Persist LOCAL ids: a shard's checkpoint is byte-compatible
            // with a standalone pipeline's, and restore re-applies
            // whatever namespace the restoring process attaches.
            let (lo, hi) = self.ns_range();
            let registry = self.registry.read();
            let ids = registry.ids_in(lo, hi);
            let mut models = Vec::with_capacity(ids.len());
            for id in ids {
                let m = registry.get(id).expect("id came from ids_in()");
                let quantized = m.precision() == ServePrecision::Int8;
                models.push((id - self.ns_base, m.kind, &m.detector, quantized));
            }
            persist_registry_models(&models, &mut enc);
        }
        builder.section(section::REGISTRY, enc.into_bytes());

        let mut enc = Encoder::new();
        persist_frames(&self.temp_frames, &mut enc);
        enc.put_usize(self.pending.len());
        for (id, frames) in &self.pending {
            enc.put_usize(*id);
            persist_frames(frames, &mut enc);
        }
        persist_retained_jobs(&self.inflight, &mut enc);
        enc.put_usize(self.recovery.len());
        for (id, rctx) in &self.recovery {
            enc.put_usize(*id);
            enc.put_u64(rctx.trace);
            enc.put_u64(rctx.parent);
        }
        builder.section(section::FRAMES, enc.into_bytes());

        builder.section(section::STATS, self.stats.to_store_bytes());

        builder.section(section::ATTIC, self.attic.to_store_bytes());

        // Close the build span (and observe it) before serializing the
        // telemetry section, so the persisted state — histograms,
        // flight recorder, and tracer id allocators — includes this
        // very build. That makes a restored pipeline's telemetry
        // bit-identical to the writer's. (The timing excludes only the
        // telemetry serialization itself, which is negligible next to
        // model/frame serialization.)
        self.telemetry.stage_snapshot_build.observe_ms(span.close());
        builder.section(
            section::TELEMETRY,
            persist_telemetry(
                &self.telemetry.snapshot(),
                &self.telemetry.flight_record(),
                self.telemetry.registry().tracer().state(),
            ),
        );

        Ok(builder.to_bytes())
    }

    /// Writes a full checkpoint to `path`, atomically (tmp + fsync +
    /// rename): a crash mid-write never destroys a previous checkpoint
    /// at the same path.
    ///
    /// Fails when the configured encoder does not support snapshots
    /// (see [`crate::encoder::EncoderSnapshot`]).
    pub fn checkpoint(&mut self, path: &Path) -> Result<(), StoreError> {
        let last = self.store.as_ref().map(|s| s.wal.last_seq()).unwrap_or(0);
        // Count the snapshot before building it so the persisted
        // counters cover it — a restored pipeline then agrees with the
        // writer. (Manual checkpoint writes are synchronous and not
        // timed into the write-stage histogram, which covers the
        // background writer; their failure surfaces as the returned
        // error *and* in store_errors_total.)
        self.stats.snapshots_written += 1;
        self.telemetry.snapshots.inc();
        let bytes = self.snapshot_bytes(last).inspect_err(|e| {
            self.telemetry.record_store_error("snapshot build failed", e);
        })?;
        write_atomic(path, &bytes).inspect_err(|e| {
            self.telemetry
                .record_store_error(format!("snapshot write to {} failed", path.display()), e);
        })?;
        Ok(())
    }

    /// Rebuilds a pipeline from a checkpoint file. The restored instance
    /// is bit-identical to the one that wrote it: same cluster state,
    /// same model weights (same `ServedBy` decisions on the same
    /// stream), same `memory_bytes`. Background training jobs that were
    /// queued or running at checkpoint time are re-submitted from their
    /// retained inputs with their original seeds (or trained inline when
    /// restored into [`TrainingMode::Inline`]).
    ///
    /// Corruption, truncation, version mismatch, and malformed payloads
    /// all surface as [`StoreError`] — never a panic — so callers can
    /// fall back to a cold bootstrap ([`Odin::restore_or_else`]).
    pub fn restore(path: &Path) -> Result<Self, StoreError> {
        let cp = Checkpoint::read(path)?;
        let (odin, _) = Self::from_checkpoint(&cp)?;
        Ok(odin)
    }

    /// [`Odin::restore`], falling back to `cold_bootstrap()` when the
    /// checkpoint is missing, corrupt, or from an unsupported format
    /// version. The failure reason is emitted as a warn-level event on
    /// the fresh instance's telemetry (whose default stderr sink keeps
    /// it visible on the console).
    pub fn restore_or_else(path: &Path, cold_bootstrap: impl FnOnce() -> Self) -> Self {
        match Self::restore(path) {
            Ok(odin) => odin,
            Err(e) => {
                let odin = cold_bootstrap();
                odin.telemetry.event(
                    Level::Warn,
                    "store",
                    format!("cold bootstrap: cannot restore {}: {e}", path.display()),
                );
                odin
            }
        }
    }

    /// Restores from a store *directory* (as populated by
    /// [`Odin::enable_store`]): loads `snapshot.odst`, then replays
    /// every WAL record newer than the snapshot — promotions (with full
    /// cluster state), evictions, and model installs (with full
    /// weights). The WAL recovers *learned* state; transient frame
    /// buffers refill from the stream.
    ///
    /// The returned instance has no store attached; call
    /// [`Odin::enable_store`] on it to resume logging.
    pub fn restore_from_dir(dir: &Path) -> Result<Self, StoreError> {
        Self::restore_from_dir_with(dir, None)
    }

    /// [`Odin::restore_from_dir`] for a shard snapshot that omitted its
    /// ENCODER/TEACHER sections: absent sections resolve from `shared`
    /// (the server's `shared.odst`). With `shared = None` this is
    /// exactly `restore_from_dir`.
    pub fn restore_from_dir_with(
        dir: &Path,
        shared: Option<&Checkpoint>,
    ) -> Result<Self, StoreError> {
        let cp = Checkpoint::read(&dir.join(SNAPSHOT_FILE))?;
        let (mut odin, last_seq) = Self::from_checkpoint_with(&cp, shared)?;
        let wal = read_wal(&dir.join(WAL_FILE))?;
        let mut replayed = 0usize;
        for rec in wal.records.iter().filter(|r| r.seq > last_seq) {
            let event = decode_wal_event(&rec.payload)?;
            odin.apply_wal_event(event);
            replayed += 1;
        }
        // Mark the warm restart on the timeline and refresh the gauges,
        // so a scrape right after restore already reflects the replayed
        // state. (Plain `Odin::restore` stays marker-free: it must stay
        // byte-identical to the writer, which never restored.)
        odin.telemetry.record_timeline(TimelineStage::RestoreCompleted, 0, odin.manager.seen());
        odin.telemetry.event(
            Level::Info,
            "store",
            format!("warm restart complete: replayed {replayed} WAL records"),
        );
        odin.update_gauges();
        Ok(odin)
    }

    fn from_checkpoint(cp: &Checkpoint) -> Result<(Self, u64), StoreError> {
        Self::from_checkpoint_with(cp, None)
    }

    /// A checkpoint section, falling back to the shared-section
    /// checkpoint when the shard snapshot omitted it (shared-section
    /// dedup). Without a fallback, absence is the usual hard error.
    fn section_or_shared<'a>(
        cp: &'a Checkpoint,
        shared: Option<&'a Checkpoint>,
        name: &'static str,
    ) -> Result<&'a [u8], StoreError> {
        match (cp.section(name), shared) {
            (Some(bytes), _) => Ok(bytes),
            (None, Some(s)) => s.require(name),
            (None, None) => cp.require(name),
        }
    }

    fn from_checkpoint_with(
        cp: &Checkpoint,
        shared: Option<&Checkpoint>,
    ) -> Result<(Self, u64), StoreError> {
        let mut dec = Decoder::new(cp.require(section::META)?);
        let seed = dec.take_u64("meta.seed")?;
        let model_seq = dec.take_u64("meta.model_seq")?;
        let last_wal_seq = dec.take_u64("meta.last_wal_seq")?;
        // Event-log position; absent in pre-event-log checkpoints.
        let log_seq = if dec.remaining() > 0 { dec.take_u64("meta.log_seq")? } else { 0 };
        dec.finish("meta")?;

        let cfg = OdinConfig::from_store_bytes(cp.require(section::CONFIG)?, "config")?;

        let mut dec = Decoder::new(Self::section_or_shared(cp, shared, section::ENCODER)?);
        let encoder = restore_encoder(&mut dec)?;
        dec.finish("encoder")?;

        let mut dec = Decoder::new(Self::section_or_shared(cp, shared, section::TEACHER)?);
        let teacher = restore_detector(&mut dec)?;
        dec.finish("teacher")?;

        let manager = ClusterManager::from_store_bytes(cp.require(section::MANAGER)?, "manager")?;

        let mut dec = Decoder::new(cp.require(section::REGISTRY)?);
        let models = restore_registry_models(&mut dec)?;
        dec.finish("registry")?;

        let mut dec = Decoder::new(cp.require(section::FRAMES)?);
        let temp_frames = restore_frames(&mut dec)?;
        let n_pending = dec.take_usize("pending len")?;
        let mut pending = BTreeMap::new();
        for _ in 0..n_pending {
            let id = dec.take_usize("pending id")?;
            pending.insert(id, restore_frames(&mut dec)?);
        }
        let inflight = restore_retained_jobs(&mut dec)?;
        let n_recovery = dec.take_usize("recovery len")?;
        let mut recovery = BTreeMap::new();
        for _ in 0..n_recovery {
            let id = dec.take_usize("recovery id")?;
            let trace = dec.take_u64("recovery trace")?;
            let parent = dec.take_u64("recovery parent")?;
            recovery.insert(id, SpanCtx { trace, parent });
        }
        dec.finish("frames")?;

        let stats = PipelineStats::from_store_bytes(cp.require(section::STATS)?, "stats")?;

        // The attic section is optional for forward compatibility with
        // pre-attic checkpoints: absent section → empty attic.
        let attic = match cp.section(section::ATTIC) {
            Some(bytes) => Some(ModelAttic::from_store_bytes(bytes, "attic")?),
            None => None,
        };

        let mut odin = Odin::new(encoder, teacher, cfg, seed);
        odin.manager = manager;
        odin.model_seq = model_seq;
        odin.log_seq = log_seq;
        odin.stats = stats;
        odin.temp_frames = temp_frames;
        odin.pending = pending;
        odin.recovery = recovery;
        if let Some(attic) = attic {
            odin.attic = attic;
        }
        {
            let mut registry = odin.registry.write();
            for (id, kind, detector, quantized) in models {
                let mut cm = ClusterModel::new(detector, kind);
                if quantized {
                    // Quantization is deterministic: re-quantizing the
                    // restored f32 weights reproduces the serving model
                    // the writer had, bit for bit.
                    cm.quantize();
                }
                registry.insert(id, cm);
            }
        }
        // Telemetry is optional for forward compatibility with
        // pre-telemetry checkpoints: absent section → fresh metrics.
        if let Some(bytes) = cp.section(section::TELEMETRY) {
            let (snap, flight, (next_span, next_trace)) = restore_telemetry(bytes)?;
            odin.telemetry.load(&snap);
            odin.telemetry.registry().recorder().load(&flight);
            odin.telemetry.registry().tracer().load_state(next_span, next_trace);
        }
        odin.resubmit_inflight(inflight);
        Ok((odin, last_wal_seq))
    }

    /// Re-schedules training jobs that were in flight at checkpoint
    /// time. Their original seeds are reused, so the resulting weights
    /// are bit-identical to what the checkpointed process would have
    /// produced; `jobs_submitted` is *not* re-incremented (the original
    /// submission already counted).
    fn resubmit_inflight(&mut self, inflight: BTreeMap<usize, RetainedJob>) {
        for (cluster_id, job) in inflight {
            match &self.pool {
                Some(pool) => {
                    pool.submit(TrainJob {
                        stream: 0, // the handle stamps its own stream index
                        cluster_id,
                        seed: job.seed,
                        kind: job.kind,
                        frames: job.frames.clone(),
                        ctx: job.ctx,
                    });
                    self.training_pending.insert(cluster_id);
                    self.inflight.insert(cluster_id, job);
                }
                None => {
                    let mut span = self.telemetry.span("train", job.ctx);
                    span.set_cluster(cluster_id);
                    let detector = match job.kind {
                        ModelKind::Specialized => {
                            self.specializer.build_specialized(job.seed, &job.frames)
                        }
                        ModelKind::Lite => {
                            self.specializer.build_lite(job.seed, &self.teacher, &job.frames)
                        }
                    };
                    let ctx = span.child_ctx();
                    let wall_ms = span.close();
                    self.install(TrainedModel {
                        stream: 0,
                        cluster_id,
                        detector,
                        kind: job.kind,
                        wall_ms,
                        ctx,
                    });
                }
            }
        }
    }

    /// Applies one replayed WAL record. Replay converges the *learned*
    /// state (clusters and models) to what the crashed process had;
    /// seq-ordering in the WAL reproduces the live apply order.
    fn apply_wal_event(&mut self, event: WalEvent) {
        match event {
            WalEvent::Drift { event, cluster } => {
                self.manager.apply_promotion(cluster, event.at);
            }
            WalEvent::Evict { cluster_id } => {
                self.manager.apply_eviction(cluster_id);
                self.registry.write().remove(self.gid(cluster_id));
                self.pending.remove(&cluster_id);
                self.training_pending.remove(&cluster_id);
                self.inflight.remove(&cluster_id);
                self.recovery.remove(&cluster_id);
            }
            WalEvent::Install { cluster_id, kind, detector, quantized } => {
                if self.manager.cluster(cluster_id).is_some() {
                    let mut cm = ClusterModel::new(detector, kind);
                    if quantized {
                        cm.quantize();
                    }
                    self.registry.write().insert(self.gid(cluster_id), cm);
                    self.pending.remove(&cluster_id);
                    self.training_pending.remove(&cluster_id);
                    self.inflight.remove(&cluster_id);
                    self.recovery.remove(&cluster_id);
                }
            }
            WalEvent::Archive { cluster_id, signature, kind, detector, quantized } => {
                // Replay convention: converge state, never re-count
                // telemetry (the live counters are in the snapshot).
                self.attic.archive(cluster_id, signature, kind, detector, quantized);
            }
            WalEvent::AtticTake { source_id } => {
                self.attic.take_by_source(source_id);
            }
        }
    }

    /// Attaches a persistence runtime: every drift event, eviction, and
    /// model install is appended (and fsynced) to `dir/events.wal`, and
    /// `policy` controls automatic snapshots to `dir/snapshot.odst`
    /// (built synchronously at the frame boundary, written atomically by
    /// a background thread — the serving path never blocks on disk).
    /// Recover later with [`Odin::restore_from_dir`].
    pub fn enable_store(&mut self, dir: &Path, policy: CheckpointPolicy) -> Result<(), StoreError> {
        self.store = Some(PipelineStore::open(dir, policy, self.telemetry.clone())?);
        // With a store attached, the flight recorder auto-dumps next to
        // the WAL on drift events and store errors.
        self.telemetry.set_flight_dump_path(Some(dir.join(FLIGHT_FILE)));
        if self.cfg.event_log.enabled {
            let metrics = LogMetrics {
                appended: self.telemetry.event_log_appended.clone(),
                dropped: self.telemetry.event_log_dropped.clone(),
                queue_depth: self.telemetry.event_log_queue_depth.clone(),
                flush_ms: self.telemetry.event_log_flush.clone(),
            };
            let writer = LogWriter::open(&dir.join(EVENT_LOG_FILE), self.cfg.event_log, metrics)?;
            // Never reuse a sequence number: resume past both the
            // checkpointed position and the log file's intact tail
            // (after a crash the two can disagree in either direction).
            self.log_seq = self.log_seq.max(writer.recovered_last_seq());
            self.event_log = Some(writer);
        }
        Ok(())
    }

    // -- Sharded serving ----------------------------------------------

    /// Turns this standalone pipeline into shard `stream` of a
    /// multi-stream server: its models move into `registry` (the
    /// process-wide [`SharedRegistry`]) under the namespace
    /// `stream * NS_STRIDE`, its training jobs flow through `router`
    /// (the process-wide pool) when one is given, and its trace/span id
    /// allocators jump to a per-stream base so Perfetto exports group
    /// per stream and stay deterministic per shard.
    ///
    /// Any models still training on the pipeline's private pool are
    /// finished and installed first, so the handoff loses nothing. The
    /// trace-id base is applied with `max` semantics: a fresh shard
    /// jumps to its base, while a restored shard whose persisted
    /// allocators are already past it (they were namespaced before the
    /// checkpoint) continues exactly where it left off.
    pub fn attach_shared(
        &mut self,
        stream: usize,
        registry: &SharedRegistry,
        router: Option<Arc<TrainRouter>>,
    ) {
        self.finish_training();
        let ns_base = stream * NS_STRIDE;
        if !Arc::ptr_eq(&self.registry, registry) {
            let mut private = self.registry.write();
            let mut shared = registry.write();
            for id in private.ids() {
                let m = private.remove(id).expect("id came from ids()");
                shared.insert(ns_base + (id - self.ns_base), m);
            }
            drop(private);
            drop(shared);
            self.registry = Arc::clone(registry);
        }
        self.ns_base = ns_base;
        self.pool = router.map(|r| TrainHandle::new(r, stream));
        let tracer = self.telemetry.registry().tracer();
        let (next_span, next_trace) = tracer.state();
        let base = (stream as u64) << 40;
        tracer.load_state(next_span.max(base + 1), next_trace.max(base + 1));
        self.update_gauges();
    }

    /// Marks whether snapshots embed the ENCODER/TEACHER sections
    /// (default) or omit them for shared-section dedup (server shards;
    /// restore then needs [`Odin::restore_from_dir_with`]).
    pub fn set_snapshot_self_contained(&mut self, self_contained: bool) {
        self.snapshot_self_contained = self_contained;
    }

    /// The shared-section checkpoint body (ENCODER + TEACHER only) a
    /// multi-stream server writes once as `shared.odst`. Every shard's
    /// sections are identical by construction (one teacher `Arc`, one
    /// encoder factory), so any shard can produce it.
    pub fn shared_sections_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let mut builder = CheckpointBuilder::new();
        let mut enc = Encoder::new();
        persist_encoder(&self.encoder.snapshot(), &mut enc)?;
        builder.section(section::ENCODER, enc.into_bytes());
        let mut enc = Encoder::new();
        persist_detector(&self.teacher, &mut enc);
        builder.section(section::TEACHER, enc.into_bytes());
        Ok(builder.to_bytes())
    }

    /// Shared handle to the teacher (a server builds its training
    /// router around the same weights every shard serves from).
    pub(crate) fn teacher_handle(&self) -> Arc<Detector> {
        Arc::clone(&self.teacher)
    }

    /// Writes the flight recorder's current contents — the most recent
    /// spans and events — as Chrome-trace JSON to `path`. Open the file
    /// in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    pub fn dump_flight_record(&self, path: &Path) -> std::io::Result<()> {
        self.telemetry.dump_flight(path)
    }

    /// Blocks until every queued background snapshot write has landed
    /// and the WAL is durable. Call before process exit (or before
    /// inspecting the store directory in tests).
    pub fn flush_store(&mut self) {
        if let Some(store) = self.store.as_mut() {
            if let Err(e) = store.wal.sync() {
                self.telemetry.record_store_error("WAL sync failed", e);
            }
            store.writer.flush();
        }
        if let Some(log) = &self.event_log {
            if let Err(e) = log.flush() {
                self.telemetry.record_store_error("event-log flush failed", e);
            }
        }
    }

    /// Number of background snapshot writes that failed (0 when healthy
    /// or when no store is attached).
    pub fn store_write_failures(&self) -> u64 {
        self.store.as_ref().map(|s| s.writer.failures()).unwrap_or(0)
    }

    fn wal_append(&mut self, payload: &[u8], ctx: SpanCtx) {
        let Some(store) = self.store.as_mut() else { return };
        let res = {
            let _g = self.telemetry.stage_span("wal_append", &self.telemetry.stage_wal_append, ctx);
            store.wal.append(payload).and_then(|_| store.wal.sync())
        };
        match res {
            Ok(()) => {
                self.stats.wal_events_logged += 1;
                self.telemetry.wal_appends.inc();
            }
            Err(e) => self.telemetry.record_store_error("WAL append failed", e),
        }
    }

    /// Runs the snapshot policy at a frame boundary; when due, builds
    /// the snapshot synchronously (consistency) and hands the bytes to
    /// the background writer (latency).
    fn maybe_snapshot(&mut self, drifted: bool) {
        let Some(store) = self.store.as_mut() else { return };
        store.frames_since_snapshot += 1;
        let due = match store.policy {
            CheckpointPolicy::Manual => false,
            CheckpointPolicy::EveryNFrames(n) => store.frames_since_snapshot >= n.max(1),
            CheckpointPolicy::OnDrift => drifted,
        };
        if !due {
            return;
        }
        let last = store.wal.last_seq();
        let path = store.snapshot_path();
        // Counted before the build so the persisted counters cover this
        // snapshot (see `checkpoint`); a failed build is visible as
        // store_errors_total alongside.
        self.stats.snapshots_written += 1;
        self.telemetry.snapshots.inc();
        let bytes = match self.snapshot_bytes(last) {
            Ok(b) => b,
            Err(e) => {
                self.telemetry.record_store_error("snapshot build skipped", e);
                return;
            }
        };
        let store = self.store.as_mut().expect("store checked above");
        store.frames_since_snapshot = 0;
        store.writer.submit(path, bytes);
    }
}

/// Applies the policy, then filters to clusters that actually have a
/// registered model (a cluster can briefly exist without one while its
/// model is pending).
fn select_existing(
    policy: SelectionPolicy,
    manager: &ClusterManager,
    registry: &ModelRegistry,
    ns_base: usize,
    z: &[f32],
) -> Selection {
    let mut s = select(policy, manager, z);
    s.models.retain(|(id, _)| registry.kind(ns_base + *id).is_some());
    if s.models.is_empty() {
        // Nothing the policy picked is servable: the teacher takes the
        // frame, so no fallback ensemble actually ran — don't report
        // the policy's internal fallback flag for a selection that
        // served nothing.
        return Selection::empty();
    }
    let total: f32 = s.models.iter().map(|m| m.1).sum();
    if total > 0.0 {
        for m in &mut s.models {
            m.1 /= total;
        }
    }
    s
}

/// Serving outcome as recorded in the event log.
fn served_label(s: ServedBy) -> ServedLabel {
    match s {
        ServedBy::Teacher => ServedLabel::Teacher,
        ServedBy::Ensemble => ServedLabel::Ensemble,
        ServedBy::FallbackEnsemble => ServedLabel::Fallback,
    }
}

/// Mean and max detection confidence of a frame ((0, 0) when empty).
fn conf_summary(dets: &[Detection]) -> (f32, f32) {
    if dets.is_empty() {
        return (0.0, 0.0);
    }
    let mut sum = 0.0f32;
    let mut max = 0.0f32;
    for d in dets {
        sum += d.score;
        max = max.max(d.score);
    }
    (sum / dets.len() as f32, max)
}

/// Ground-truth boxes of a frame slice, shaped for mAP evaluation.
pub fn gt_refs(frames: &[Frame]) -> Vec<&[GtBox]> {
    frames.iter().map(|f| f.boxes.as_slice()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::HistogramEncoder;
    use odin_data::{SceneGen, Subset};
    use odin_detect::DetectorArch;
    use odin_drift::ManagerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> OdinConfig {
        OdinConfig {
            manager: ManagerConfig {
                min_points: 12,
                stable_window: 4,
                kl_eps: 5e-3,
                hist_hi: 8.0,
                ..ManagerConfig::default()
            },
            specializer: SpecializerConfig {
                arch: DetectorArch::Small,
                frame_size: 48,
                train_iters: 30,
                distill_iters: 20,
                batch_size: 4,
            },
            min_train_frames: 20,
            ..OdinConfig::default()
        }
    }

    fn new_odin(cfg: OdinConfig) -> Odin {
        let mut rng = StdRng::seed_from_u64(0);
        let teacher = Detector::heavy(48, &mut rng);
        Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 42)
    }

    #[test]
    fn baseline_mode_always_uses_teacher() {
        let cfg = OdinConfig { baseline_only: true, ..quick_cfg() };
        let mut odin = new_odin(cfg);
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(1);
        let frames = gen.subset_frames(&mut rng, Subset::Day, 3);
        for f in &frames {
            let r = odin.process(f);
            assert!(r.used_teacher);
            assert_eq!(r.served_by, ServedBy::Teacher);
            assert!(r.drift.is_none());
        }
        assert_eq!(odin.manager().clusters().len(), 0);
    }

    #[test]
    fn drift_is_detected_and_model_trained() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(2);
        let night = gen.subset_frames(&mut rng, Subset::Night, 60);
        let results = odin.process_stream(&night);
        let drifts: Vec<_> = results.iter().filter_map(|r| r.drift).collect();
        assert!(!drifts.is_empty(), "no drift detected on the first concept");
        assert!(odin.model_count() > 0, "no model trained after promotion");
        // Later frames should be served by the specialized model.
        let last = results.last().expect("non-empty stream");
        assert!(!last.used_teacher, "teacher still serving after recovery");
        assert_ne!(last.served_by, ServedBy::Teacher);
    }

    #[test]
    fn second_concept_adds_second_model() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(3);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        let n1 = odin.model_count();
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Day, 60));
        let n2 = odin.model_count();
        assert!(n2 > n1, "day concept did not produce a new model ({n1} -> {n2})");
    }

    #[test]
    fn lite_models_when_labels_never_arrive() {
        let cfg = OdinConfig { oracle: OracleLabels::Never, ..quick_cfg() };
        let mut odin = new_odin(cfg);
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(4);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        let ids = odin.model_ids();
        assert!(!ids.is_empty());
        for id in ids {
            assert_eq!(odin.model_kind(id), Some(ModelKind::Lite));
        }
    }

    #[test]
    fn memory_shrinks_after_recovery() {
        let mut odin = new_odin(quick_cfg());
        let baseline_mem = odin.memory_bytes();
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(5);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        assert!(
            odin.memory_bytes() < baseline_mem,
            "specialized models should be smaller than the teacher"
        );
    }

    #[test]
    fn memory_bytes_counts_deployment_not_residency() {
        let mut odin = new_odin(quick_cfg());
        let teacher_bytes = odin.memory_bytes();
        // Warm-start one small model: memory_bytes switches to the
        // registry total even though the teacher remains resident for
        // fallback serving and distillation.
        let mut rng = StdRng::seed_from_u64(9);
        let small = Detector::small(48, &mut rng);
        let small_bytes = small.param_bytes();
        odin.register_model(0, small, ModelKind::Specialized);
        assert_eq!(odin.memory_bytes(), small_bytes);
        assert!(teacher_bytes > small_bytes);
    }

    #[test]
    fn int8_precision_shrinks_memory_and_marks_models() {
        let cfg = OdinConfig { precision: ServePrecision::Int8, ..quick_cfg() };
        let mut odin = new_odin(cfg);
        let mut rng = StdRng::seed_from_u64(12);
        let small = Detector::small(48, &mut rng);
        let f32_bytes = small.param_bytes();
        odin.register_model(0, small, ModelKind::Specialized);
        // Served representation is int8: ~4x below the f32 weights.
        assert!(
            odin.memory_bytes() * 3 < f32_bytes,
            "int8 memory {} not well below f32 {}",
            odin.memory_bytes(),
            f32_bytes
        );
        let reg = odin.registry();
        let reg = reg.read();
        assert_eq!(reg.get(0).expect("registered").precision(), ServePrecision::Int8);
    }

    #[test]
    fn int8_stream_installs_gated_quantized_models() {
        let cfg = OdinConfig { precision: ServePrecision::Int8, ..quick_cfg() };
        let mut odin = new_odin(cfg);
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(2);
        let night = gen.subset_frames(&mut rng, Subset::Night, 60);
        let results = odin.process_stream(&night);
        assert!(odin.model_count() > 0, "no model installed under Int8");
        let last = results.last().expect("non-empty stream");
        assert_ne!(last.served_by, ServedBy::Teacher, "model not serving after recovery");
        // Every installed model either passed the gate (int8) or fell
        // back (f32 + counted); with no fallbacks all must be int8.
        let fallbacks = odin.telemetry().snapshot().counters.iter().fold(0u64, |acc, (n, v)| {
            if n == "odin_quant_fallback_total" {
                acc + v
            } else {
                acc
            }
        });
        let reg = odin.registry();
        let reg = reg.read();
        let int8 = reg
            .ids()
            .into_iter()
            .filter(|&id| reg.get(id).expect("listed").precision() == ServePrecision::Int8);
        assert_eq!(
            int8.count() as u64 + fallbacks,
            reg.len() as u64,
            "every install must be int8 or a counted fallback"
        );
    }

    #[test]
    fn int8_models_survive_checkpoint_roundtrip() {
        let cfg = OdinConfig { precision: ServePrecision::Int8, ..quick_cfg() };
        let mut odin = new_odin(cfg);
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(13);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        assert!(odin.model_count() > 0);
        let path = std::env::temp_dir().join(format!("odin-int8-cp-{}.odst", std::process::id()));
        odin.checkpoint(&path).unwrap();
        let back = Odin::restore(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.cfg.precision, ServePrecision::Int8);
        let a = odin.registry();
        let a = a.read();
        let b = back.registry();
        let b = b.read();
        assert_eq!(a.ids(), b.ids());
        for id in a.ids() {
            let ma = a.get(id).expect("listed");
            let mb = b.get(id).expect("restored");
            assert_eq!(ma.precision(), mb.precision(), "precision lost across restore");
            assert_eq!(ma.serve_bytes(), mb.serve_bytes());
        }
        assert_eq!(odin.memory_bytes(), back.memory_bytes());
    }

    #[test]
    fn infer_only_does_not_mutate_clusters() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(7);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        let clusters = odin.manager().clusters().len();
        let seen = odin.manager().seen();
        let frames = gen.subset_frames(&mut rng, Subset::Day, 10);
        for f in &frames {
            let _ = odin.infer_only(f);
        }
        assert_eq!(odin.manager().clusters().len(), clusters);
        assert_eq!(odin.manager().seen(), seen, "infer_only must not observe");
    }

    #[test]
    fn set_policy_changes_selection_behaviour() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(8);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Day, 60));
        if odin.model_count() < 2 {
            return; // fixture didn't split; covered by other tests
        }
        let frame = &gen.subset_frames(&mut rng, Subset::Night, 1)[0];
        odin.set_policy(crate::selector::SelectionPolicy::MostRecent);
        let r1 = odin.process(frame);
        assert!(r1.selection.models.len() <= 1);
        odin.set_policy(crate::selector::SelectionPolicy::KnnUnweighted(4));
        let r2 = odin.process(frame);
        assert!(r2.selection.models.len() >= r1.selection.models.len());
    }

    #[test]
    fn bootstrap_reports_promotions() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(6);
        let promoted = odin.bootstrap_clusters(&gen.subset_frames(&mut rng, Subset::Night, 60));
        assert!(!promoted.is_empty());
        assert_eq!(promoted.len(), odin.manager().events().len());
    }

    #[test]
    fn served_by_agrees_with_used_teacher() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(10);
        let frames = gen.subset_frames(&mut rng, Subset::Night, 60);
        for r in odin.process_stream(&frames) {
            assert_eq!(r.used_teacher, r.served_by == ServedBy::Teacher);
            // A teacher-served frame must not report a fallback
            // selection that never ran (the stale-flag regression).
            if r.selection.is_empty() {
                assert!(!r.selection.used_fallback);
                assert_eq!(r.served_by, ServedBy::Teacher);
            }
        }
    }

    #[test]
    fn background_mode_installs_after_finish() {
        let cfg = OdinConfig { training: TrainingMode::Background { workers: 1 }, ..quick_cfg() };
        let mut odin = new_odin(cfg);
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(2);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        odin.finish_training();
        assert!(odin.model_count() > 0, "background training produced no model");
        let stats = odin.stats();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.jobs_submitted, stats.models_installed);
        assert!(stats.train_wall_ms > 0.0);
    }

    #[test]
    fn stats_count_gap_serving_while_model_pending() {
        let mut odin = new_odin(quick_cfg());
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(11);
        odin.process_stream(&gen.subset_frames(&mut rng, Subset::Night, 60));
        let stats = odin.stats();
        assert!(stats.jobs_submitted >= 1);
        // Between promotion and min_train_frames, assigned frames are
        // covered by the teacher (first concept: nothing else exists).
        assert!(
            stats.teacher_frames_while_pending > 0,
            "expected teacher to cover the promotion window"
        );
    }
}

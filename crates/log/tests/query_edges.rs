//! Query-layer edge cases over real files: zone-map pruning across
//! many segments, empty results, predicates straddling a segment
//! boundary, torn-tail recovery, and multi-shard store scans.

use std::path::PathBuf;

use odin_log::{
    read_log, scan_log, scan_store, EventLogConfig, LogMetrics, LogRecord, LogWriter, Predicate,
    RecordKind, ServedLabel, EVENT_LOG_FILE,
};

fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("odin-log-it-{tag}-{}-{:?}", std::process::id(), std::thread::current().id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// 4 segments x 8 records on `stream`: seq s+1.., ts 1ms apart, a
/// drift record every 8th row, teacher/ensemble alternating.
fn write_log(dir: &std::path::Path, stream: u32, seq0: u64, ts0_us: u64) -> PathBuf {
    let path = dir.join(EVENT_LOG_FILE);
    let cfg =
        EventLogConfig { enabled: true, queue_cap: 256, segment_records: 8, ..Default::default() };
    let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
    for i in 0..32u64 {
        let drift = i % 8 == 7;
        let rec = LogRecord {
            seq: seq0 + i + 1,
            kind: if drift { RecordKind::DriftDetected } else { RecordKind::Frame },
            ts_us: ts0_us + i * 1000,
            frame: i,
            stream,
            cluster: if drift { (i / 8) as i64 } else { -1 },
            served: if drift {
                ServedLabel::None
            } else if i % 2 == 0 {
                ServedLabel::Teacher
            } else {
                ServedLabel::Ensemble
            },
            dets: (i % 3) as u32,
            conf_mean: 0.5,
            conf_max: 0.9,
            latency_us: 100 + i,
            trace: 1 + i / 8,
        };
        assert!(w.append(rec));
    }
    w.flush().unwrap();
    path
}

#[test]
fn time_range_prunes_segments_it_cannot_match() {
    let dir = scratch("prune-time");
    let path = write_log(&dir, 0, 0, 1_000_000);
    let log = read_log(&path).unwrap();
    assert_eq!(log.segments.len(), 4, "fixture must span >= 3 segments");

    // Rows 8..=15 live in segment 1 only: ts 1_008_000..=1_015_000.
    let pred =
        Predicate { ts_min_us: Some(1_008_000), ts_max_us: Some(1_015_000), ..Default::default() };
    let res = scan_log(&path, &pred).unwrap();
    assert_eq!(res.stats.segments_total, 4);
    assert_eq!(res.stats.segments_scanned, 1);
    assert_eq!(res.stats.segments_pruned, 3);
    assert_eq!(res.records.len(), 8);
    assert!(res.records.iter().all(|r| (8..16).contains(&r.frame)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kind_and_served_masks_prune_without_decoding() {
    let dir = scratch("prune-mask");
    let path = write_log(&dir, 0, 0, 0);

    // Install records never occur: every segment pruned by kind mask.
    let res = scan_log(
        &path,
        &Predicate { kind: Some(RecordKind::ModelInstalled), ..Default::default() },
    )
    .unwrap();
    assert!(res.records.is_empty());
    assert_eq!(res.stats.segments_pruned, 4);
    assert_eq!(res.stats.segments_scanned, 0);

    // Fallback never served: pruned by served mask.
    let res =
        scan_log(&path, &Predicate { served: Some(ServedLabel::Fallback), ..Default::default() })
            .unwrap();
    assert!(res.records.is_empty());
    assert_eq!(res.stats.segments_scanned, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn predicate_straddling_a_segment_boundary_hits_both_sides() {
    let dir = scratch("straddle");
    let path = write_log(&dir, 0, 0, 0);
    // Frames 6..=9 straddle the segment 0 / segment 1 boundary (8).
    let pred = Predicate { frame_min: Some(6), frame_max: Some(9), ..Default::default() };
    let res = scan_log(&path, &pred).unwrap();
    assert_eq!(res.stats.segments_scanned, 2);
    assert_eq!(res.stats.segments_pruned, 2);
    assert_eq!(res.records.iter().map(|r| r.frame).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    // The boundary drift record (frame 7) survives with its fields.
    let drift = &res.records[1];
    assert_eq!(drift.kind, RecordKind::DriftDetected);
    assert_eq!(drift.cluster, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_results_and_empty_logs_are_not_errors() {
    let dir = scratch("empty");
    let path = write_log(&dir, 0, 0, 0);
    let res = scan_log(&path, &Predicate { cluster: Some(999), ..Default::default() }).unwrap();
    assert!(res.records.is_empty());
    assert_eq!(res.stats.records_matched, 0);

    // A freshly opened, never-written log scans clean too.
    let fresh = dir.join("fresh.odlg");
    {
        let _w = LogWriter::open(
            &fresh,
            EventLogConfig { enabled: true, ..Default::default() },
            LogMetrics::detached(),
        )
        .unwrap();
    }
    let res = scan_log(&fresh, &Predicate::default()).unwrap();
    assert!(res.records.is_empty());
    assert_eq!(res.stats.segments_total, 0);
    assert!(!res.stats.torn_tail);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_after_simulated_crash_scans_intact_prefix() {
    let dir = scratch("torn-scan");
    let path = write_log(&dir, 0, 0, 0);
    // Crash mid-flush: append half a segment frame.
    let mut bytes = std::fs::read(&path).unwrap();
    let tail = bytes[bytes.len() - 40..].to_vec();
    bytes.extend_from_slice(&tail[..20]);
    std::fs::write(&path, &bytes).unwrap();

    let res = scan_log(&path, &Predicate::default()).unwrap();
    assert!(res.stats.torn_tail);
    assert_eq!(res.records.len(), 32, "intact prefix fully readable");

    // Reopen heals the file and resumes the sequence.
    let w = LogWriter::open(
        &path,
        EventLogConfig { enabled: true, ..Default::default() },
        LogMetrics::detached(),
    )
    .unwrap();
    assert_eq!(w.recovered_last_seq(), 32);
    drop(w);
    assert!(!scan_log(&path, &Predicate::default()).unwrap().stats.torn_tail);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_scan_merges_shards_and_filters_by_stream() {
    let dir = scratch("store-merge");
    // Sharded layout: streams/0 and streams/2, interleaved in time,
    // plus a standalone single-pipeline log at the store root.
    write_log(&dir.join("streams").join("0"), 0, 0, 0);
    write_log(&dir.join("streams").join("2"), 2, 100, 500);
    write_log(&dir, 7, 700, 250);

    let all = scan_store(&dir, &Predicate::default()).unwrap();
    assert_eq!(all.stats.files, 3);
    assert_eq!(all.records.len(), 96);
    // Global (ts, stream, seq) order across shards.
    let mut sorted = all.records.clone();
    sorted.sort_by_key(|r| (r.ts_us, r.stream, r.seq));
    assert_eq!(all.records, sorted);

    let s2 = scan_store(&dir, &Predicate { stream: Some(2), ..Default::default() }).unwrap();
    assert_eq!(s2.records.len(), 32);
    assert!(s2.records.iter().all(|r| r.stream == 2 && r.seq > 100));
    // Whole foreign shards pruned via the stream zone map.
    assert_eq!(s2.stats.segments_scanned, 4);
    assert_eq!(s2.stats.segments_pruned, 8);

    // Time x stream x served conjunction.
    let narrowed = scan_store(
        &dir,
        &Predicate {
            stream: Some(2),
            ts_min_us: Some(500),
            ts_max_us: Some(8_500),
            served: Some(ServedLabel::Teacher),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!narrowed.records.is_empty());
    assert!(narrowed
        .records
        .iter()
        .all(|r| r.stream == 2 && r.ts_us <= 8_500 && r.served == ServedLabel::Teacher));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_store_on_a_dir_without_logs_is_empty() {
    let dir = scratch("no-logs");
    let res = scan_store(&dir, &Predicate::default()).unwrap();
    assert!(res.records.is_empty());
    assert_eq!(res.stats.files, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Batched background writer with counted-drop backpressure.
//!
//! The pipeline thread calls [`LogWriter::append`], which is a single
//! bounded-channel `try_send`: when the writer thread falls behind and
//! the queue fills, the record is **dropped and counted** — the
//! serving hot path never blocks on the log. The writer thread buffers
//! records and seals a columnar segment every
//! [`EventLogConfig::segment_records`] records, on an explicit
//! [`LogWriter::flush`] (which also fsyncs and acks), and on shutdown.
//!
//! On open, the existing file is scanned with the same torn-tail rules
//! as the WAL: an interrupted append leaves a trailing partial frame,
//! which is truncated away before new segments are appended.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use odin_store::StoreError;
use odin_telemetry::{log_bounds, Counter, Gauge, Histogram, Registry};

use crate::record::{EventLogConfig, LogRecord, RetentionConfig};
use crate::segment::{self, encode_segment};
use crate::tail::apply_retention;

/// Telemetry handles the writer updates. Pass handles registered in
/// the pipeline's registry to surface them on `/metrics`, or
/// [`LogMetrics::detached`] for standalone use (benches, tests).
#[derive(Debug, Clone)]
pub struct LogMetrics {
    /// Records accepted into the queue (`odin_event_log_appended_total`).
    pub appended: Counter,
    /// Records dropped because the queue was full
    /// (`odin_event_log_dropped_total`).
    pub dropped: Counter,
    /// Instantaneous queue depth (`odin_event_log_queue_depth`).
    pub queue_depth: Gauge,
    /// Wall time per sealed-segment disk write
    /// (`odin_event_log_flush_ms`).
    pub flush_ms: Histogram,
}

impl LogMetrics {
    /// Handles registered in a private registry — observable through
    /// the returned struct but not exported anywhere.
    pub fn detached() -> Self {
        let reg = Registry::new();
        LogMetrics {
            appended: reg.counter("odin_event_log_appended_total"),
            dropped: reg.counter("odin_event_log_dropped_total"),
            queue_depth: reg.gauge("odin_event_log_queue_depth"),
            flush_ms: reg.histogram("odin_event_log_flush_ms", &log_bounds(0.005, 5000.0, 14)),
        }
    }
}

enum Msg {
    Append(LogRecord),
    Flush(mpsc::Sender<()>),
    /// Test-only: makes the writer thread exit without closing the
    /// channel, simulating a panic/death with the handle still live.
    #[cfg(test)]
    Die,
}

/// The error surfaced when the background writer thread is gone (it
/// panicked or exited early): flushing can neither enqueue the barrier
/// nor receive its ack.
fn dead_writer_error() -> StoreError {
    StoreError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "event-log writer thread died",
    ))
}

/// Handle to the event log: owns the background thread, the bounded
/// channel, and the recovery verdict from open time.
pub struct LogWriter {
    tx: Option<SyncSender<Msg>>,
    handle: Option<JoinHandle<()>>,
    metrics: LogMetrics,
    failures: Arc<AtomicU64>,
    recovered_last_seq: u64,
    path: PathBuf,
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter")
            .field("path", &self.path)
            .field("recovered_last_seq", &self.recovered_last_seq)
            .finish_non_exhaustive()
    }
}

impl LogWriter {
    /// Open (or create) the log at `path`, truncating any torn tail,
    /// and start the background writer thread.
    pub fn open(path: &Path, cfg: EventLogConfig, metrics: LogMetrics) -> Result<Self, StoreError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(StoreError::Io)?;
        }
        // Scan whatever is already there; a fresh file gets a header.
        let existing = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let scanned = segment::scan_bytes(existing)?;
        let recovered_last_seq = scanned.last_seq();

        // O_APPEND: every segment write lands at EOF, even right
        // after the torn-tail truncation below.
        let file =
            OpenOptions::new().create(true).append(true).open(path).map_err(StoreError::Io)?;
        if scanned.good_len == 0 {
            file.set_len(0).map_err(StoreError::Io)?;
            let mut f = &file;
            f.write_all(&segment::header_bytes()).map_err(StoreError::Io)?;
        } else {
            // Drop the torn tail (no-op when the file is intact).
            file.set_len(scanned.good_len).map_err(StoreError::Io)?;
        }
        file.sync_data().map_err(StoreError::Io)?;

        // Enforce the retention budget on whatever survived recovery,
        // before the writer thread starts appending. A rewrite renames
        // the file out from under our O_APPEND handle, so reopen.
        let file = if apply_retention(path, cfg.retention)? {
            OpenOptions::new().append(true).open(path).map_err(StoreError::Io)?
        } else {
            file
        };

        let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.queue_cap.max(1));
        let failures = Arc::new(AtomicU64::new(0));
        let seg_cap = cfg.segment_records.max(1);
        let thread_metrics = metrics.clone();
        let thread_failures = Arc::clone(&failures);
        let thread_path = path.to_path_buf();
        let retention = cfg.retention;
        let handle = std::thread::Builder::new()
            .name("odin-event-log".into())
            .spawn(move || {
                writer_loop(
                    file,
                    rx,
                    seg_cap,
                    retention,
                    thread_path,
                    thread_metrics,
                    thread_failures,
                )
            })
            .map_err(StoreError::Io)?;

        Ok(LogWriter {
            tx: Some(tx),
            handle: Some(handle),
            metrics,
            failures,
            recovered_last_seq,
            path: path.to_path_buf(),
        })
    }

    /// Non-blocking append. Returns `true` if the record was accepted,
    /// `false` if the bounded queue was full (the drop is counted).
    pub fn append(&self, rec: LogRecord) -> bool {
        let Some(tx) = &self.tx else { return false };
        match tx.try_send(Msg::Append(rec)) {
            Ok(()) => {
                self.metrics.appended.inc();
                self.metrics.queue_depth.add(1);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.metrics.dropped.inc();
                false
            }
        }
    }

    /// Block until every queued record is sealed into a segment and
    /// the file is fsynced. Errors when the writer thread is dead
    /// (panicked or exited early): the barrier cannot be enqueued, or
    /// its ack channel drops without a reply — previously both cases
    /// lost the ack silently and records could sit unflushed.
    pub fn flush(&self) -> Result<(), StoreError> {
        let Some(tx) = &self.tx else { return Err(dead_writer_error()) };
        let (ack_tx, ack_rx) = mpsc::channel();
        // A full queue here means the writer is actively draining;
        // a blocking send is acceptable on this cold path.
        tx.send(Msg::Flush(ack_tx)).map_err(|_| dead_writer_error())?;
        ack_rx.recv().map_err(|_| dead_writer_error())
    }

    /// Test-only: stops the writer thread while leaving the channel
    /// open, so the handle looks alive but nobody will ever ack.
    #[cfg(test)]
    fn kill_writer(&mut self) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Msg::Die);
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Highest sequence number found in the intact prefix at open time
    /// (0 for a fresh log). The pipeline resumes its emitter sequence
    /// from `max(checkpointed, recovered)`.
    pub fn recovered_last_seq(&self) -> u64 {
        self.recovered_last_seq
    }

    /// Disk-write failures observed by the background thread.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for LogWriter {
    fn drop(&mut self) {
        // Close the channel; the thread seals the remaining buffer,
        // fsyncs, and exits.
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn writer_loop(
    mut file: File,
    rx: Receiver<Msg>,
    seg_cap: usize,
    retention: RetentionConfig,
    path: PathBuf,
    metrics: LogMetrics,
    failures: Arc<AtomicU64>,
) {
    let mut buf: Vec<LogRecord> = Vec::with_capacity(seg_cap);
    let seal = |buf: &mut Vec<LogRecord>, file: &mut File| {
        if buf.is_empty() {
            return;
        }
        let started = Instant::now();
        let frame = encode_segment(buf);
        buf.clear();
        let ok = file.write_all(&frame).is_ok() && file.flush().is_ok();
        if !ok {
            failures.fetch_add(1, Ordering::Relaxed);
        }
        // Retention runs on this thread only, between appends, so the
        // atomic rewrite never races the O_APPEND handle — which must
        // be reopened afterwards (the rename left it on a dead inode).
        if !retention.is_unlimited() && should_compact(file, &retention) {
            match apply_retention(&path, retention) {
                Ok(true) => match OpenOptions::new().append(true).open(&path) {
                    Ok(f) => *file = f,
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Ok(false) => {}
                Err(_) => {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        metrics.flush_ms.observe_ms(started.elapsed().as_secs_f64() * 1e3);
    };
    loop {
        match rx.recv() {
            Ok(Msg::Append(rec)) => {
                metrics.queue_depth.add(-1);
                buf.push(rec);
                if buf.len() >= seg_cap {
                    seal(&mut buf, &mut file);
                }
            }
            Ok(Msg::Flush(ack)) => {
                // Drain everything already queued before acking, so a
                // flush observes all appends that happened before it.
                loop {
                    match rx.try_recv() {
                        Ok(Msg::Append(rec)) => {
                            metrics.queue_depth.add(-1);
                            buf.push(rec);
                            if buf.len() >= seg_cap {
                                seal(&mut buf, &mut file);
                            }
                        }
                        Ok(Msg::Flush(extra)) => {
                            let _ = extra.send(());
                        }
                        #[cfg(test)]
                        Ok(Msg::Die) => return,
                        Err(_) => break,
                    }
                }
                seal(&mut buf, &mut file);
                if file.sync_data().is_err() {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
                let _ = ack.send(());
            }
            #[cfg(test)]
            Ok(Msg::Die) => return,
            Err(_) => {
                seal(&mut buf, &mut file);
                let _ = file.sync_data();
                return;
            }
        }
    }
}

/// Cheap pre-check before the full retention scan: a pure byte budget
/// is gated on file length alone; an age budget needs the zone maps,
/// so it always proceeds to the scan.
fn should_compact(file: &File, retention: &RetentionConfig) -> bool {
    if retention.max_age_us > 0 {
        return true;
    }
    file.metadata().map(|m| m.len() > retention.max_bytes).unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::read_log;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "odin-log-{tag}-{}-{:?}.odlg",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn rec(seq: u64) -> LogRecord {
        LogRecord { seq, ts_us: seq * 1000, frame: seq, ..LogRecord::empty() }
    }

    #[test]
    fn writer_seals_segments_and_resumes_after_torn_tail() {
        let path = temp_path("torn");
        let cfg = EventLogConfig {
            enabled: true,
            queue_cap: 64,
            segment_records: 8,
            ..Default::default()
        };
        {
            let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
            for s in 1..=20u64 {
                assert!(w.append(rec(s)));
            }
            w.flush().unwrap();
        }
        let intact = read_log(&path).unwrap();
        // 20 records at 8/segment = 2 full + 1 flush-sealed partial.
        assert_eq!(intact.segments.len(), 3);
        assert_eq!(intact.record_count(), 20);
        assert_eq!(intact.last_seq(), 20);
        assert!(!intact.torn);

        // Simulate a crash mid-append: half a segment frame trails.
        let garbage = encode_segment(&[rec(999)]);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&garbage[..garbage.len() - 3]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_log(&path).unwrap().torn);

        // Reopen: tail truncated, sequence recovered, appends resume.
        let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
        assert_eq!(w.recovered_last_seq(), 20);
        assert!(w.append(rec(21)));
        w.flush().unwrap();
        drop(w);
        let healed = read_log(&path).unwrap();
        assert!(!healed.torn);
        assert_eq!(healed.record_count(), 21);
        assert_eq!(healed.last_seq(), 21);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn full_queue_drops_and_counts_instead_of_blocking() {
        let path = temp_path("drops");
        let cfg = EventLogConfig {
            enabled: true,
            queue_cap: 2,
            segment_records: 1024,
            ..Default::default()
        };
        let metrics = LogMetrics::detached();
        let w = LogWriter::open(&path, cfg, metrics.clone()).unwrap();
        // Hold the writer thread hostage with a flood while it is
        // between recv calls; with cap 2 some try_sends must fail.
        let mut accepted = 0u64;
        for s in 0..10_000u64 {
            if w.append(rec(s + 1)) {
                accepted += 1;
            }
        }
        w.flush().unwrap();
        assert_eq!(metrics.appended.get(), accepted);
        assert_eq!(metrics.dropped.get(), 10_000 - accepted);
        assert_eq!(metrics.queue_depth.get(), 0);
        drop(w);
        let log = read_log(&path).unwrap();
        assert_eq!(log.record_count() as u64, accepted);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drop_without_flush_still_persists_buffered_records() {
        let path = temp_path("dropseal");
        let cfg = EventLogConfig {
            enabled: true,
            queue_cap: 64,
            segment_records: 1000,
            ..Default::default()
        };
        {
            let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
            for s in 1..=5u64 {
                assert!(w.append(rec(s)));
            }
        } // Drop: shutdown seal.
        let log = read_log(&path).unwrap();
        assert_eq!(log.record_count(), 5);
        assert!(!log.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopening_an_intact_log_preserves_every_byte() {
        let path = temp_path("reopen");
        let cfg = EventLogConfig {
            enabled: true,
            queue_cap: 64,
            segment_records: 4,
            ..Default::default()
        };
        {
            let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
            for s in 1..=4u64 {
                w.append(rec(s));
            }
            w.flush().unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        {
            let _w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
        }
        let after = std::fs::read(&path).unwrap();
        assert_eq!(before, after);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_enforces_byte_budget_after_seals() {
        let path = temp_path("retain");
        let cfg = EventLogConfig {
            enabled: true,
            queue_cap: 256,
            segment_records: 8,
            retention: RetentionConfig { max_bytes: 400, max_age_us: 0 },
        };
        {
            let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
            for s in 1..=200u64 {
                assert!(w.append(rec(s)));
                if s % 8 == 0 {
                    w.flush().unwrap();
                }
            }
            w.flush().unwrap();
            assert_eq!(w.failures(), 0);
        }
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len <= 400, "file is {len} bytes, budget 400");
        let log = read_log(&path).unwrap();
        assert!(!log.torn);
        // The newest records survive and appends after compaction
        // landed in the reopened file, not a dead inode.
        assert_eq!(log.last_seq(), 200);
        assert!(log.segments[0].zone.min_seq > 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_applies_retention_to_an_oversized_log() {
        let path = temp_path("retain-open");
        let unlimited = EventLogConfig {
            enabled: true,
            queue_cap: 256,
            segment_records: 8,
            ..Default::default()
        };
        {
            let w = LogWriter::open(&path, unlimited, LogMetrics::detached()).unwrap();
            for s in 1..=64u64 {
                assert!(w.append(rec(s)));
            }
            w.flush().unwrap();
        }
        assert!(std::fs::metadata(&path).unwrap().len() > 300);
        let bounded = EventLogConfig {
            retention: RetentionConfig { max_bytes: 300, max_age_us: 0 },
            ..unlimited
        };
        let w = LogWriter::open(&path, bounded, LogMetrics::detached()).unwrap();
        // Recovery saw the full tail before compaction trimmed it.
        assert_eq!(w.recovered_last_seq(), 64);
        assert!(w.append(rec(65)));
        w.flush().unwrap();
        drop(w);
        let log = read_log(&path).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() <= 300 + 100);
        assert_eq!(log.last_seq(), 65);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_surfaces_dead_writer_thread() {
        let path = temp_path("dead");
        let cfg = EventLogConfig {
            enabled: true,
            queue_cap: 64,
            segment_records: 8,
            ..Default::default()
        };
        let mut w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
        assert!(w.append(rec(1)));
        w.flush().unwrap();
        w.kill_writer();
        let err = w.flush().expect_err("flush after writer death must error, not hang");
        assert!(matches!(err, StoreError::Io(_)), "expected Io error, got {err:?}");
        let _ = std::fs::remove_file(&path);
    }
}

//! # odin-log
//!
//! A durable, queryable event log for the ODIN pipeline: per-frame
//! detection records and drift/recovery events, streamed through a
//! batched background writer into a compact append-only **columnar
//! segment** file.
//!
//! The flight recorder (odin-telemetry) answers *"what just happened
//! in the last few thousand spans"*; this crate answers *"what
//! happened on stream 3 last Tuesday"* — the retrospective-inspection
//! side of drift diagnosis.
//!
//! * [`record`] — the row type ([`LogRecord`]) and its enums
//!   ([`RecordKind`], [`ServedLabel`]), plus [`EventLogConfig`],
//! * [`segment`] — the on-disk format: fixed-size segments with
//!   per-column encoding (zigzag-delta varints for timestamps / ids,
//!   dictionary-coded enums), a per-segment min/max **zone map**, and
//!   a CRC-framed envelope reusing odin-store's checksum primitives;
//!   a torn tail is truncated on open exactly like the WAL,
//! * [`writer`] — [`LogWriter`]: a bounded-channel background writer
//!   with counted-drop backpressure, so the serving hot path never
//!   blocks on the log,
//! * [`query`] — [`Predicate`] scans ([`scan_log`], [`scan_store`])
//!   that prune whole segments via the zone maps before decoding a
//!   single column,
//! * [`tail`] — the live side: durable [`Cursor`]s with
//!   [`read_after`] for safely tailing a file the writer is still
//!   appending to (sealed segments only, torn tail invisible), and
//!   [`RetentionConfig`]-driven compaction ([`apply_retention`]) that
//!   drops whole sealed segments from the front under a byte/age
//!   budget.
//!
//! Determinism contract: record *contents* are produced by the
//! pipeline thread (sequence numbers, frame ids, timestamps from the
//! installed `Clock`), so with a `ManualClock` and inline training the
//! log file is byte-identical across runs and across `ODIN_THREADS`
//! settings. The background writer only changes *when* bytes reach the
//! disk, never *which* bytes.

#![warn(missing_docs)]

pub mod query;
pub mod record;
pub mod segment;
pub mod tail;
pub mod writer;

pub use query::{scan_log, scan_store, Predicate, ScanResult, ScanStats};
pub use record::{
    EventLogConfig, LogRecord, RecordKind, RetentionConfig, ServedLabel, EVENT_LOG_FILE,
};
pub use segment::{read_log, LogFile, SegmentInfo, ZoneMap};
pub use tail::{apply_retention, collect_after, read_after, Cursor, TailBatch};
pub use writer::{LogMetrics, LogWriter};

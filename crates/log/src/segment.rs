//! On-disk columnar segment format.
//!
//! ```text
//! file   := magic "ODLG" | version u32 | segment*
//! segment:= marker 0xD6 | body_len u32 | crc u32 (over body) | body
//! body   := count | zone map | column*          (odin-store codec)
//! zone   := min/max of seq, ts_us, frame, cluster, trace,
//!           min/max stream, kind bitmask, served bitmask
//! column := length-prefixed bytes, per-column encoding:
//!           seq/ts_us/frame/trace  zigzag-delta varint
//!           stream                 varint offset from min_stream
//!           kind/served            dictionary (u8 tags; indices
//!                                  elided when the dict is unary)
//!           cluster                zigzag varint
//!           dets/latency_us        varint
//!           conf_mean/conf_max     fixed f32 bits (LE)
//! ```
//!
//! Everything after the 8-byte header is length-framed and
//! CRC-checked, so a torn tail (crash mid-append) is detected by the
//! reader and truncated by the writer on reopen — the same contract as
//! `odin_store::wal`.

use std::fs;
use std::path::Path;

use odin_store::{crc32, Decoder, Encoder, StoreError};

use crate::record::{LogRecord, RecordKind, ServedLabel};

/// File magic: "ODLG" (ODin LoG).
pub const MAGIC: [u8; 4] = *b"ODLG";
/// Format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Byte that starts every segment frame.
pub const SEGMENT_MARKER: u8 = 0xD6;
/// File header length (magic + version).
pub const HEADER_LEN: u64 = 8;
/// Segment frame overhead before the body (marker + len + crc).
pub const FRAME_OVERHEAD: usize = 9;

/// The 8-byte file header.
pub fn header_bytes() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&MAGIC);
    h[4..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

// ---------------------------------------------------------------------------
// varint / zigzag primitives
// ---------------------------------------------------------------------------

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Cursor over a raw column buffer.
pub(crate) struct VarReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> VarReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        VarReader { buf, pos: 0 }
    }

    pub(crate) fn varint(&mut self, context: &'static str) -> Result<u64, StoreError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self.buf.get(self.pos).ok_or(StoreError::Truncated { context })?;
            self.pos += 1;
            if shift >= 64 {
                return Err(StoreError::Malformed { context });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        let b = *self.buf.get(self.pos).ok_or(StoreError::Truncated { context })?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn f32(&mut self, context: &'static str) -> Result<f32, StoreError> {
        let end = self.pos + 4;
        let raw = self.buf.get(self.pos..end).ok_or(StoreError::Truncated { context })?;
        self.pos = end;
        Ok(f32::from_bits(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]])))
    }
}

/// Encode `vals` as first-absolute + zigzag deltas (ids and
/// timestamps cluster tightly, so deltas are 1–2 bytes).
fn put_delta_column(buf: &mut Vec<u8>, vals: impl Iterator<Item = u64>) {
    let mut prev: u64 = 0;
    for (i, v) in vals.enumerate() {
        if i == 0 {
            put_varint(buf, v);
        } else {
            put_varint(buf, zigzag(v.wrapping_sub(prev) as i64));
        }
        prev = v;
    }
}

fn read_delta_column(
    buf: &[u8],
    count: usize,
    context: &'static str,
) -> Result<Vec<u64>, StoreError> {
    let mut r = VarReader::new(buf);
    let mut out = Vec::with_capacity(count);
    let mut prev: u64 = 0;
    for i in 0..count {
        let v = if i == 0 {
            r.varint(context)?
        } else {
            prev.wrapping_add(unzigzag(r.varint(context)?) as u64)
        };
        out.push(v);
        prev = v;
    }
    Ok(out)
}

/// Dictionary-encode small enum tags: `dict_len | dict... | indices`.
/// A unary dictionary elides the index bytes entirely.
fn put_dict_column(buf: &mut Vec<u8>, tags: &[u8]) {
    let mut dict: Vec<u8> = Vec::new();
    for &t in tags {
        if !dict.contains(&t) {
            dict.push(t);
        }
    }
    buf.push(dict.len() as u8);
    buf.extend_from_slice(&dict);
    if dict.len() > 1 {
        for &t in tags {
            let idx = dict.iter().position(|&d| d == t).unwrap() as u8;
            buf.push(idx);
        }
    }
}

fn read_dict_column(
    buf: &[u8],
    count: usize,
    context: &'static str,
) -> Result<Vec<u8>, StoreError> {
    let mut r = VarReader::new(buf);
    let dict_len = r.u8(context)? as usize;
    if dict_len == 0 && count > 0 {
        return Err(StoreError::Malformed { context });
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(r.u8(context)?);
    }
    let mut out = Vec::with_capacity(count);
    if dict_len <= 1 {
        out.resize(count, dict.first().copied().unwrap_or(0));
    } else {
        for _ in 0..count {
            let idx = r.u8(context)? as usize;
            let tag = *dict.get(idx).ok_or(StoreError::Malformed { context })?;
            out.push(tag);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// zone map
// ---------------------------------------------------------------------------

/// Per-segment min/max summary used to skip whole segments during a
/// predicate scan without decoding any column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Records in the segment.
    pub count: usize,
    /// Minimum sequence number.
    pub min_seq: u64,
    /// Maximum sequence number.
    pub max_seq: u64,
    /// Minimum event timestamp (µs).
    pub min_ts_us: u64,
    /// Maximum event timestamp (µs).
    pub max_ts_us: u64,
    /// Minimum frame index.
    pub min_frame: u64,
    /// Maximum frame index.
    pub max_frame: u64,
    /// Minimum cluster id (-1 = "none" records present).
    pub min_cluster: i64,
    /// Maximum cluster id.
    pub max_cluster: i64,
    /// Minimum trace id.
    pub min_trace: u64,
    /// Maximum trace id.
    pub max_trace: u64,
    /// Minimum stream id.
    pub min_stream: u32,
    /// Maximum stream id.
    pub max_stream: u32,
    /// Bitmask of [`RecordKind`] tags present.
    pub kind_mask: u32,
    /// Bitmask of [`ServedLabel`] tags present.
    pub served_mask: u32,
}

impl ZoneMap {
    fn of(records: &[LogRecord]) -> ZoneMap {
        debug_assert!(!records.is_empty());
        let mut z = ZoneMap {
            count: records.len(),
            min_seq: u64::MAX,
            max_seq: 0,
            min_ts_us: u64::MAX,
            max_ts_us: 0,
            min_frame: u64::MAX,
            max_frame: 0,
            min_cluster: i64::MAX,
            max_cluster: i64::MIN,
            min_trace: u64::MAX,
            max_trace: 0,
            min_stream: u32::MAX,
            max_stream: 0,
            kind_mask: 0,
            served_mask: 0,
        };
        for r in records {
            z.min_seq = z.min_seq.min(r.seq);
            z.max_seq = z.max_seq.max(r.seq);
            z.min_ts_us = z.min_ts_us.min(r.ts_us);
            z.max_ts_us = z.max_ts_us.max(r.ts_us);
            z.min_frame = z.min_frame.min(r.frame);
            z.max_frame = z.max_frame.max(r.frame);
            z.min_cluster = z.min_cluster.min(r.cluster);
            z.max_cluster = z.max_cluster.max(r.cluster);
            z.min_trace = z.min_trace.min(r.trace);
            z.max_trace = z.max_trace.max(r.trace);
            z.min_stream = z.min_stream.min(r.stream);
            z.max_stream = z.max_stream.max(r.stream);
            z.kind_mask |= 1 << r.kind.tag();
            z.served_mask |= 1 << r.served.tag();
        }
        z
    }

    /// True if any record of `kind` is present.
    pub fn has_kind(&self, kind: RecordKind) -> bool {
        self.kind_mask & (1 << kind.tag()) != 0
    }

    /// True if any record with `served` is present.
    pub fn has_served(&self, served: ServedLabel) -> bool {
        self.served_mask & (1 << served.tag()) != 0
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.count);
        enc.put_u64(self.min_seq);
        enc.put_u64(self.max_seq);
        enc.put_u64(self.min_ts_us);
        enc.put_u64(self.max_ts_us);
        enc.put_u64(self.min_frame);
        enc.put_u64(self.max_frame);
        enc.put_u64(zigzag(self.min_cluster));
        enc.put_u64(zigzag(self.max_cluster));
        enc.put_u64(self.min_trace);
        enc.put_u64(self.max_trace);
        enc.put_u32(self.min_stream);
        enc.put_u32(self.max_stream);
        enc.put_u32(self.kind_mask);
        enc.put_u32(self.served_mask);
    }

    fn decode(dec: &mut Decoder) -> Result<ZoneMap, StoreError> {
        Ok(ZoneMap {
            count: dec.take_usize("zone.count")?,
            min_seq: dec.take_u64("zone.min_seq")?,
            max_seq: dec.take_u64("zone.max_seq")?,
            min_ts_us: dec.take_u64("zone.min_ts")?,
            max_ts_us: dec.take_u64("zone.max_ts")?,
            min_frame: dec.take_u64("zone.min_frame")?,
            max_frame: dec.take_u64("zone.max_frame")?,
            min_cluster: unzigzag(dec.take_u64("zone.min_cluster")?),
            max_cluster: unzigzag(dec.take_u64("zone.max_cluster")?),
            min_trace: dec.take_u64("zone.min_trace")?,
            max_trace: dec.take_u64("zone.max_trace")?,
            min_stream: dec.take_u32("zone.min_stream")?,
            max_stream: dec.take_u32("zone.max_stream")?,
            kind_mask: dec.take_u32("zone.kind_mask")?,
            served_mask: dec.take_u32("zone.served_mask")?,
        })
    }
}

// ---------------------------------------------------------------------------
// segment encode / decode
// ---------------------------------------------------------------------------

/// Encode a full segment frame (marker + len + crc + columnar body)
/// for a non-empty batch of records.
pub fn encode_segment(records: &[LogRecord]) -> Vec<u8> {
    assert!(!records.is_empty(), "segments are never empty");
    let zone = ZoneMap::of(records);
    let mut enc = Encoder::with_capacity(records.len() * 16 + 128);
    zone.encode(&mut enc);

    let mut col: Vec<u8> = Vec::with_capacity(records.len() * 2);

    put_delta_column(&mut col, records.iter().map(|r| r.seq));
    enc.put_bytes(&col);
    col.clear();

    put_delta_column(&mut col, records.iter().map(|r| r.ts_us));
    enc.put_bytes(&col);
    col.clear();

    put_delta_column(&mut col, records.iter().map(|r| r.frame));
    enc.put_bytes(&col);
    col.clear();

    for r in records {
        put_varint(&mut col, u64::from(r.stream - zone.min_stream));
    }
    enc.put_bytes(&col);
    col.clear();

    let kinds: Vec<u8> = records.iter().map(|r| r.kind.tag()).collect();
    put_dict_column(&mut col, &kinds);
    enc.put_bytes(&col);
    col.clear();

    let serveds: Vec<u8> = records.iter().map(|r| r.served.tag()).collect();
    put_dict_column(&mut col, &serveds);
    enc.put_bytes(&col);
    col.clear();

    for r in records {
        put_varint(&mut col, zigzag(r.cluster));
    }
    enc.put_bytes(&col);
    col.clear();

    for r in records {
        put_varint(&mut col, u64::from(r.dets));
    }
    enc.put_bytes(&col);
    col.clear();

    for r in records {
        col.extend_from_slice(&r.conf_mean.to_bits().to_le_bytes());
    }
    enc.put_bytes(&col);
    col.clear();

    for r in records {
        col.extend_from_slice(&r.conf_max.to_bits().to_le_bytes());
    }
    enc.put_bytes(&col);
    col.clear();

    for r in records {
        put_varint(&mut col, r.latency_us);
    }
    enc.put_bytes(&col);
    col.clear();

    put_delta_column(&mut col, records.iter().map(|r| r.trace));
    enc.put_bytes(&col);

    let body = enc.into_bytes();
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + body.len());
    frame.push(SEGMENT_MARKER);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Decode a CRC-verified segment body back into its zone map and rows.
pub fn decode_segment_body(body: &[u8]) -> Result<(ZoneMap, Vec<LogRecord>), StoreError> {
    let mut dec = Decoder::new(body);
    let zone = ZoneMap::decode(&mut dec)?;
    let n = zone.count;

    let seqs = read_delta_column(dec.take_bytes("col.seq")?, n, "col.seq")?;
    let tss = read_delta_column(dec.take_bytes("col.ts")?, n, "col.ts")?;
    let frames = read_delta_column(dec.take_bytes("col.frame")?, n, "col.frame")?;

    let stream_buf = dec.take_bytes("col.stream")?;
    let mut r = VarReader::new(stream_buf);
    let mut streams = Vec::with_capacity(n);
    for _ in 0..n {
        streams.push(zone.min_stream + r.varint("col.stream")? as u32);
    }

    let kinds = read_dict_column(dec.take_bytes("col.kind")?, n, "col.kind")?;
    let serveds = read_dict_column(dec.take_bytes("col.served")?, n, "col.served")?;

    let cluster_buf = dec.take_bytes("col.cluster")?;
    let mut r = VarReader::new(cluster_buf);
    let mut clusters = Vec::with_capacity(n);
    for _ in 0..n {
        clusters.push(unzigzag(r.varint("col.cluster")?));
    }

    let dets_buf = dec.take_bytes("col.dets")?;
    let mut r = VarReader::new(dets_buf);
    let mut dets = Vec::with_capacity(n);
    for _ in 0..n {
        dets.push(r.varint("col.dets")? as u32);
    }

    let mean_buf = dec.take_bytes("col.conf_mean")?;
    let mut r = VarReader::new(mean_buf);
    let mut means = Vec::with_capacity(n);
    for _ in 0..n {
        means.push(r.f32("col.conf_mean")?);
    }

    let max_buf = dec.take_bytes("col.conf_max")?;
    let mut r = VarReader::new(max_buf);
    let mut maxs = Vec::with_capacity(n);
    for _ in 0..n {
        maxs.push(r.f32("col.conf_max")?);
    }

    let lat_buf = dec.take_bytes("col.latency")?;
    let mut r = VarReader::new(lat_buf);
    let mut lats = Vec::with_capacity(n);
    for _ in 0..n {
        lats.push(r.varint("col.latency")?);
    }

    let traces = read_delta_column(dec.take_bytes("col.trace")?, n, "col.trace")?;
    dec.finish("segment body")?;

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(LogRecord {
            seq: seqs[i],
            kind: RecordKind::from_tag(kinds[i])
                .ok_or(StoreError::Malformed { context: "record kind tag" })?,
            ts_us: tss[i],
            frame: frames[i],
            stream: streams[i],
            cluster: clusters[i],
            served: ServedLabel::from_tag(serveds[i])
                .ok_or(StoreError::Malformed { context: "served label tag" })?,
            dets: dets[i],
            conf_mean: means[i],
            conf_max: maxs[i],
            latency_us: lats[i],
            trace: traces[i],
        });
    }
    Ok((zone, out))
}

// ---------------------------------------------------------------------------
// file scan
// ---------------------------------------------------------------------------

/// One intact segment located inside a log file.
#[derive(Debug, Clone, Copy)]
pub struct SegmentInfo {
    /// Zone map parsed from the segment body.
    pub zone: ZoneMap,
    /// Byte offset of the segment marker in the file.
    pub offset: u64,
    /// Total frame length (marker through end of body).
    pub len: usize,
}

/// A parsed log file: intact segments plus the torn-tail verdict.
#[derive(Debug)]
pub struct LogFile {
    bytes: Vec<u8>,
    /// Intact segments in file order.
    pub segments: Vec<SegmentInfo>,
    /// Length of the intact prefix; bytes past this are a torn tail.
    pub good_len: u64,
    /// True when trailing bytes failed framing or CRC checks.
    pub torn: bool,
}

impl LogFile {
    /// Raw file bytes backing the scan (intact prefix + any torn
    /// tail). Used by retention compaction to copy whole sealed
    /// segments verbatim without re-encoding them.
    pub(crate) fn raw_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Decode all rows of segment `i` (columns are decoded lazily, per
    /// segment, so zone-pruned scans never touch them).
    pub fn records(&self, i: usize) -> Result<Vec<LogRecord>, StoreError> {
        let seg = &self.segments[i];
        let start = seg.offset as usize + FRAME_OVERHEAD;
        let body = &self.bytes[start..seg.offset as usize + seg.len];
        decode_segment_body(body).map(|(_, recs)| recs)
    }

    /// Sequence number of the last intact record, or 0 for an empty log.
    pub fn last_seq(&self) -> u64 {
        self.segments.last().map(|s| s.zone.max_seq).unwrap_or(0)
    }

    /// Total intact records across all segments.
    pub fn record_count(&self) -> usize {
        self.segments.iter().map(|s| s.zone.count).sum()
    }
}

/// Scan raw file bytes into segments, stopping at the first torn or
/// corrupt frame. Only the zone-map prefix of each body is decoded.
pub fn scan_bytes(bytes: Vec<u8>) -> Result<LogFile, StoreError> {
    if bytes.is_empty() {
        // Brand-new file: treat as an empty, intact log.
        return Ok(LogFile { bytes, segments: Vec::new(), good_len: 0, torn: false });
    }
    if bytes.len() < HEADER_LEN as usize || bytes[..4] != MAGIC {
        let mut found = [0u8; 4];
        let n = bytes.len().min(4);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(StoreError::BadMagic { found });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version, supported: FORMAT_VERSION });
    }

    let mut segments = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn = false;
    while pos < bytes.len() {
        // Frame header: marker + body_len + crc.
        if pos + FRAME_OVERHEAD > bytes.len() || bytes[pos] != SEGMENT_MARKER {
            torn = true;
            break;
        }
        let body_len =
            u32::from_le_bytes([bytes[pos + 1], bytes[pos + 2], bytes[pos + 3], bytes[pos + 4]])
                as usize;
        let crc =
            u32::from_le_bytes([bytes[pos + 5], bytes[pos + 6], bytes[pos + 7], bytes[pos + 8]]);
        let body_start = pos + FRAME_OVERHEAD;
        let body_end = body_start + body_len;
        if body_end > bytes.len() {
            torn = true;
            break;
        }
        let body = &bytes[body_start..body_end];
        if crc32(body) != crc {
            torn = true;
            break;
        }
        let mut dec = Decoder::new(body);
        let zone = ZoneMap::decode(&mut dec)?;
        segments.push(SegmentInfo { zone, offset: pos as u64, len: FRAME_OVERHEAD + body_len });
        pos = body_end;
    }
    let good_len = segments.last().map(|s| s.offset + s.len as u64).unwrap_or(HEADER_LEN);
    Ok(LogFile { bytes, segments, good_len, torn })
}

/// Read and scan a log file from disk.
pub fn read_log(path: &Path) -> Result<LogFile, StoreError> {
    let bytes = fs::read(path).map_err(StoreError::Io)?;
    scan_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, stream: u32) -> Vec<LogRecord> {
        (0..n)
            .map(|i| LogRecord {
                seq: 100 + i as u64,
                kind: RecordKind::ALL[i % RecordKind::ALL.len()],
                ts_us: 1_000_000 + (i as u64) * 33_000,
                frame: i as u64,
                stream,
                cluster: (i as i64 % 5) - 1,
                served: ServedLabel::ALL[i % ServedLabel::ALL.len()],
                dets: (i % 7) as u32,
                conf_mean: 0.25 + i as f32 * 0.01,
                conf_max: 0.5 + i as f32 * 0.01,
                latency_us: 1000 + (i as u64 % 13) * 77,
                trace: 7_000 + (i as u64 / 3),
            })
            .collect()
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = VarReader::new(&buf);
            assert_eq!(r.varint("t").unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -12345] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn segment_roundtrips_bit_exact() {
        let recs = sample(257, 3);
        let frame = encode_segment(&recs);
        assert_eq!(frame[0], SEGMENT_MARKER);
        let body = &frame[FRAME_OVERHEAD..];
        let (zone, back) = decode_segment_body(body).unwrap();
        assert_eq!(back, recs);
        assert_eq!(zone.count, 257);
        assert_eq!(zone.min_seq, 100);
        assert_eq!(zone.max_seq, 356);
        assert_eq!(zone.min_cluster, -1);
        assert_eq!(zone.min_stream, 3);
        assert_eq!(zone.max_stream, 3);
        assert!(zone.has_kind(RecordKind::DriftDetected));
        assert!(zone.has_served(ServedLabel::Teacher));
    }

    #[test]
    fn unary_dictionary_elides_indices() {
        let uniform: Vec<LogRecord> = sample(64, 0)
            .into_iter()
            .map(|mut r| {
                r.kind = RecordKind::Frame;
                r.served = ServedLabel::Teacher;
                r
            })
            .collect();
        let varied = sample(64, 0);
        let uf = encode_segment(&uniform);
        let vf = encode_segment(&varied);
        // Two dictionary columns × 64 elided index bytes, minus the
        // extra dict entries — the uniform frame must be clearly
        // smaller on those columns alone.
        assert!(uf.len() + 100 < vf.len(), "uniform {} vs varied {}", uf.len(), vf.len());
        let (_, back) = decode_segment_body(&uf[FRAME_OVERHEAD..]).unwrap();
        assert_eq!(back, uniform);
    }

    #[test]
    fn scan_detects_and_stops_at_corruption() {
        let mut file = header_bytes().to_vec();
        file.extend_from_slice(&encode_segment(&sample(10, 0)));
        let good = encode_segment(&sample(10, 0));
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xff; // flip a body byte -> CRC fail
        file.extend_from_slice(&bad);

        let log = scan_bytes(file).unwrap();
        assert_eq!(log.segments.len(), 1);
        assert!(log.torn);
        assert_eq!(log.good_len, HEADER_LEN + good.len() as u64);
    }

    #[test]
    fn scan_rejects_foreign_files() {
        assert!(matches!(
            scan_bytes(b"not an odlg file".to_vec()),
            Err(StoreError::BadMagic { .. })
        ));
        let mut future = header_bytes().to_vec();
        future[4] = 99;
        assert!(matches!(scan_bytes(future), Err(StoreError::UnsupportedVersion { .. })));
    }

    #[test]
    fn torn_tail_mid_frame_is_flagged() {
        let mut file = header_bytes().to_vec();
        let seg = encode_segment(&sample(20, 1));
        file.extend_from_slice(&seg);
        file.extend_from_slice(&seg[..seg.len() / 2]); // torn second segment
        let log = scan_bytes(file).unwrap();
        assert_eq!(log.segments.len(), 1);
        assert!(log.torn);
        assert_eq!(log.good_len, HEADER_LEN + seg.len() as u64);
        assert_eq!(log.records(0).unwrap(), sample(20, 1));
        assert_eq!(log.last_seq(), 119);
    }
}

//! Predicate scans over log files, with zone-map segment pruning.
//!
//! [`scan_log`] queries one file; [`scan_store`] queries a whole store
//! directory — the standalone `events.odlg` and/or every
//! `streams/<id>/events.odlg` shard — and merges results in
//! `(ts_us, stream, seq)` order. [`ScanStats`] reports how many
//! segments the zone maps pruned, so tests (and `odin scan --stats`)
//! can pin the pruning behavior, not just the results.

use std::path::Path;

use odin_store::StoreError;

use crate::record::{LogRecord, RecordKind, ServedLabel, EVENT_LOG_FILE};
use crate::segment::{read_log, ZoneMap};

/// Conjunctive record filter. `None` fields match everything; ranges
/// are inclusive.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Predicate {
    /// Minimum event timestamp (µs).
    pub ts_min_us: Option<u64>,
    /// Maximum event timestamp (µs).
    pub ts_max_us: Option<u64>,
    /// Minimum frame index.
    pub frame_min: Option<u64>,
    /// Maximum frame index.
    pub frame_max: Option<u64>,
    /// Exact stream id.
    pub stream: Option<u32>,
    /// Exact cluster id.
    pub cluster: Option<i64>,
    /// Exact record kind.
    pub kind: Option<RecordKind>,
    /// Exact serving label.
    pub served: Option<ServedLabel>,
    /// Exact trace id.
    pub trace: Option<u64>,
}

impl Predicate {
    /// True when the record satisfies every set field.
    pub fn matches(&self, r: &LogRecord) -> bool {
        self.ts_min_us.is_none_or(|v| r.ts_us >= v)
            && self.ts_max_us.is_none_or(|v| r.ts_us <= v)
            && self.frame_min.is_none_or(|v| r.frame >= v)
            && self.frame_max.is_none_or(|v| r.frame <= v)
            && self.stream.is_none_or(|v| r.stream == v)
            && self.cluster.is_none_or(|v| r.cluster == v)
            && self.kind.is_none_or(|v| r.kind == v)
            && self.served.is_none_or(|v| r.served == v)
            && self.trace.is_none_or(|v| r.trace == v)
    }

    /// True when the zone map proves **no** record in the segment can
    /// match — the segment is skipped without decoding its columns.
    pub fn prunes(&self, z: &ZoneMap) -> bool {
        self.ts_min_us.is_some_and(|v| z.max_ts_us < v)
            || self.ts_max_us.is_some_and(|v| z.min_ts_us > v)
            || self.frame_min.is_some_and(|v| z.max_frame < v)
            || self.frame_max.is_some_and(|v| z.min_frame > v)
            || self.stream.is_some_and(|v| v < z.min_stream || v > z.max_stream)
            || self.cluster.is_some_and(|v| v < z.min_cluster || v > z.max_cluster)
            || self.kind.is_some_and(|v| !z.has_kind(v))
            || self.served.is_some_and(|v| !z.has_served(v))
            || self.trace.is_some_and(|v| v < z.min_trace || v > z.max_trace)
    }
}

/// Pruning / coverage counters for one scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Log files visited.
    pub files: usize,
    /// Intact segments across all visited files.
    pub segments_total: usize,
    /// Segments skipped entirely via zone maps.
    pub segments_pruned: usize,
    /// Segments whose columns were decoded.
    pub segments_scanned: usize,
    /// Records that matched the predicate.
    pub records_matched: usize,
    /// True when any visited file carried a torn tail.
    pub torn_tail: bool,
}

/// Matched records plus scan statistics.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Matching records in `(ts_us, stream, seq)` order.
    pub records: Vec<LogRecord>,
    /// Pruning / coverage counters.
    pub stats: ScanStats,
}

fn scan_into(path: &Path, pred: &Predicate, out: &mut ScanResult) -> Result<(), StoreError> {
    let log = read_log(path)?;
    out.stats.files += 1;
    out.stats.torn_tail |= log.torn;
    out.stats.segments_total += log.segments.len();
    for (i, seg) in log.segments.iter().enumerate() {
        if pred.prunes(&seg.zone) {
            out.stats.segments_pruned += 1;
            continue;
        }
        out.stats.segments_scanned += 1;
        for rec in log.records(i)? {
            if pred.matches(&rec) {
                out.records.push(rec);
            }
        }
    }
    Ok(())
}

/// Scan one log file.
pub fn scan_log(path: &Path, pred: &Predicate) -> Result<ScanResult, StoreError> {
    let mut out = ScanResult::default();
    scan_into(path, pred, &mut out)?;
    out.stats.records_matched = out.records.len();
    Ok(out)
}

/// Scan a store directory: `<dir>/events.odlg` (standalone pipeline)
/// and every `<dir>/streams/<id>/events.odlg` (sharded server), merged
/// in `(ts_us, stream, seq)` order.
pub fn scan_store(dir: &Path, pred: &Predicate) -> Result<ScanResult, StoreError> {
    let mut out = ScanResult::default();
    let single = dir.join(EVENT_LOG_FILE);
    if single.is_file() {
        scan_into(&single, pred, &mut out)?;
    }
    let streams = dir.join("streams");
    if streams.is_dir() {
        let mut shard_logs: Vec<_> = std::fs::read_dir(&streams)
            .map_err(StoreError::Io)?
            .filter_map(|e| e.ok())
            .map(|e| e.path().join(EVENT_LOG_FILE))
            .filter(|p| p.is_file())
            .collect();
        shard_logs.sort();
        for p in shard_logs {
            scan_into(&p, pred, &mut out)?;
        }
    }
    out.records.sort_by_key(|r| (r.ts_us, r.stream, r.seq));
    out.stats.records_matched = out.records.len();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_matches_and_prunes_consistently() {
        let mut r = LogRecord::empty();
        r.ts_us = 500;
        r.stream = 2;
        r.cluster = 3;
        r.kind = RecordKind::DriftDetected;
        r.served = ServedLabel::None;
        let seg = crate::segment::encode_segment(&[r]);
        let (zone, _) =
            crate::segment::decode_segment_body(&seg[crate::segment::FRAME_OVERHEAD..]).unwrap();

        let hit = Predicate {
            ts_min_us: Some(400),
            ts_max_us: Some(600),
            stream: Some(2),
            cluster: Some(3),
            kind: Some(RecordKind::DriftDetected),
            ..Default::default()
        };
        assert!(hit.matches(&r));
        assert!(!hit.prunes(&zone));

        for miss in [
            Predicate { ts_min_us: Some(501), ..Default::default() },
            Predicate { ts_max_us: Some(499), ..Default::default() },
            Predicate { stream: Some(1), ..Default::default() },
            Predicate { cluster: Some(4), ..Default::default() },
            Predicate { kind: Some(RecordKind::Frame), ..Default::default() },
            Predicate { served: Some(ServedLabel::Teacher), ..Default::default() },
            Predicate { trace: Some(7), ..Default::default() },
            Predicate { frame_min: Some(1), ..Default::default() },
        ] {
            assert!(!miss.matches(&r), "{miss:?}");
            assert!(miss.prunes(&zone), "{miss:?}");
        }
    }
}

//! Row type and enums for the event log, plus the pipeline-facing
//! [`EventLogConfig`].

/// File name of the event log inside a store directory (next to the
/// snapshot and the WAL).
pub const EVENT_LOG_FILE: &str = "events.odlg";

/// What a [`LogRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum RecordKind {
    /// One served frame: detection count, confidence summary, latency.
    Frame = 0,
    /// The DETECTOR promoted a temporary cluster / flagged drift.
    DriftDetected = 1,
    /// A specializer training job was queued for the drifted cluster.
    TrainQueued = 2,
    /// A trained model passed the install gate and entered the registry.
    ModelInstalled = 3,
    /// A cluster (and its models) was evicted from the registry.
    ClusterEvicted = 4,
    /// Drift matched an archived signature; the attic's cached model
    /// was reinstalled instead of queueing a training job.
    AtticHit = 5,
    /// A training job finished for a cluster that was evicted while it
    /// ran; the model was dropped (terminal record of the arc).
    TrainOrphaned = 6,
}

impl RecordKind {
    /// All kinds, in tag order.
    pub const ALL: [RecordKind; 7] = [
        RecordKind::Frame,
        RecordKind::DriftDetected,
        RecordKind::TrainQueued,
        RecordKind::ModelInstalled,
        RecordKind::ClusterEvicted,
        RecordKind::AtticHit,
        RecordKind::TrainOrphaned,
    ];

    /// Stable numeric tag (also the on-disk dictionary value).
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`RecordKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }

    /// Stable lowercase name used by the CLI and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Frame => "frame",
            RecordKind::DriftDetected => "drift_detected",
            RecordKind::TrainQueued => "train_queued",
            RecordKind::ModelInstalled => "model_installed",
            RecordKind::ClusterEvicted => "cluster_evicted",
            RecordKind::AtticHit => "attic_hit",
            RecordKind::TrainOrphaned => "train_orphaned",
        }
    }

    /// Parse a CLI spelling (`drift_detected`, `drift`, `install`, ...).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "frame" => Some(RecordKind::Frame),
            "drift" | "drift_detected" => Some(RecordKind::DriftDetected),
            "queued" | "train_queued" => Some(RecordKind::TrainQueued),
            "install" | "model_installed" => Some(RecordKind::ModelInstalled),
            "evict" | "cluster_evicted" => Some(RecordKind::ClusterEvicted),
            "attic" | "attic_hit" => Some(RecordKind::AtticHit),
            "orphaned" | "train_orphaned" => Some(RecordKind::TrainOrphaned),
            _ => None,
        }
    }
}

/// Which model family served a frame (the log's own copy of the core
/// `ServedBy` enum, so this crate stays below `odin-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum ServedLabel {
    /// Not a frame record / not served.
    None = 0,
    /// The heavyweight teacher model.
    Teacher = 1,
    /// A specialized (or lite) ensemble member for the frame's cluster.
    Ensemble = 2,
    /// Fallback ensemble while specialization is pending.
    Fallback = 3,
}

impl ServedLabel {
    /// All labels, in tag order.
    pub const ALL: [ServedLabel; 4] =
        [ServedLabel::None, ServedLabel::Teacher, ServedLabel::Ensemble, ServedLabel::Fallback];

    /// Stable numeric tag (also the on-disk dictionary value).
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ServedLabel::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }

    /// Stable lowercase name used by the CLI and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            ServedLabel::None => "-",
            ServedLabel::Teacher => "teacher",
            ServedLabel::Ensemble => "ensemble",
            ServedLabel::Fallback => "fallback",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" | "-" => Some(ServedLabel::None),
            "teacher" => Some(ServedLabel::Teacher),
            "ensemble" => Some(ServedLabel::Ensemble),
            "fallback" => Some(ServedLabel::Fallback),
            _ => None,
        }
    }
}

/// One event-log row. `Frame` records carry the serving fields
/// (`served`, `dets`, `conf_*`, `latency_us`); drift/recovery records
/// carry `cluster` and the recovery-arc `trace` id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogRecord {
    /// Monotonic per-pipeline sequence number (assigned by the
    /// emitter, not the writer — so it is deterministic and survives
    /// checkpoint/restore).
    pub seq: u64,
    /// What this row describes.
    pub kind: RecordKind,
    /// Event time in microseconds from the pipeline's installed clock.
    pub ts_us: u64,
    /// Frame index at emission time.
    pub frame: u64,
    /// Stream id (shard index under a multi-stream server; 0 for a
    /// standalone pipeline).
    pub stream: u32,
    /// Cluster id the event refers to, or -1 when not applicable.
    pub cluster: i64,
    /// Who served the frame (`None` for non-frame records).
    pub served: ServedLabel,
    /// Detection count for frame records.
    pub dets: u32,
    /// Mean detection confidence for frame records (0 when no dets).
    pub conf_mean: f32,
    /// Max detection confidence for frame records (0 when no dets).
    pub conf_max: f32,
    /// Frame serving latency (or train wall time for installs), µs.
    pub latency_us: u64,
    /// Causal trace id: the frame trace for frame records, the
    /// recovery-arc trace for drift/queue/install records.
    pub trace: u64,
}

impl LogRecord {
    /// One record as a JSON object with a stable key order (no
    /// external deps). This is the wire shape of the CLI's `--json`
    /// output and the server's `GET /events` response records.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"seq\":{},\"kind\":\"{}\",\"ts_us\":{},\"frame\":{},",
                "\"stream\":{},\"cluster\":{},\"served\":\"{}\",\"dets\":{},",
                "\"conf_mean\":{:.4},\"conf_max\":{:.4},\"latency_us\":{},",
                "\"trace\":{}}}"
            ),
            self.seq,
            self.kind.name(),
            self.ts_us,
            self.frame,
            self.stream,
            self.cluster,
            self.served.name(),
            self.dets,
            self.conf_mean,
            self.conf_max,
            self.latency_us,
            self.trace,
        )
    }

    /// A zeroed frame-kind record, useful as a builder base in tests.
    pub fn empty() -> Self {
        LogRecord {
            seq: 0,
            kind: RecordKind::Frame,
            ts_us: 0,
            frame: 0,
            stream: 0,
            cluster: -1,
            served: ServedLabel::None,
            dets: 0,
            conf_mean: 0.0,
            conf_max: 0.0,
            latency_us: 0,
            trace: 0,
        }
    }
}

/// Retention/compaction policy for the on-disk log. Whole sealed
/// segments are dropped from the *front* of the file when a budget is
/// exceeded; the newest segment is always retained so the recovered
/// sequence tail survives. Zero on either axis means "unlimited".
///
/// Both budgets are evaluated against data already in the file (bytes
/// written, record timestamps), never against wall-clock time — so
/// compaction decisions are deterministic and the byte-identical log
/// contract across `ODIN_THREADS` settings is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionConfig {
    /// Target upper bound for the log file size in bytes (header +
    /// sealed segments). 0 = unlimited. The bound can be overshot by
    /// at most one segment, since only whole segments are dropped and
    /// the newest segment is never dropped.
    pub max_bytes: u64,
    /// Maximum record age in microseconds, measured against the newest
    /// retained record's `ts_us` (not wall clock). A segment is
    /// dropped when *all* of its records are older than the window.
    /// 0 = unlimited.
    pub max_age_us: u64,
}

impl RetentionConfig {
    /// True when neither budget is set (compaction never runs).
    pub fn is_unlimited(&self) -> bool {
        self.max_bytes == 0 && self.max_age_us == 0
    }
}

/// Event-log knobs carried inside `OdinConfig`. `Copy` so the core
/// config stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLogConfig {
    /// Master switch; when false no writer is opened and emission is a
    /// no-op.
    pub enabled: bool,
    /// Bounded-channel capacity between the pipeline thread and the
    /// background writer. When full, records are *dropped and counted*
    /// — the hot path never blocks.
    pub queue_cap: usize,
    /// Records per sealed segment. Smaller segments prune better;
    /// larger segments compress better.
    pub segment_records: usize,
    /// On-disk retention budget, enforced by the background writer at
    /// open time and after each sealed segment.
    pub retention: RetentionConfig,
}

impl Default for EventLogConfig {
    fn default() -> Self {
        EventLogConfig {
            enabled: false,
            queue_cap: 4096,
            segment_records: 512,
            retention: RetentionConfig::default(),
        }
    }
}

impl EventLogConfig {
    /// Enabled with default sizing.
    pub fn enabled() -> Self {
        EventLogConfig { enabled: true, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_tags_roundtrip() {
        for k in RecordKind::ALL {
            assert_eq!(RecordKind::from_tag(k.tag()), Some(k));
            assert_eq!(RecordKind::parse(k.name()), Some(k));
        }
        for s in ServedLabel::ALL {
            assert_eq!(ServedLabel::from_tag(s.tag()), Some(s));
            assert_eq!(ServedLabel::parse(s.name()), Some(s));
        }
        assert_eq!(RecordKind::from_tag(9), None);
        assert_eq!(ServedLabel::from_tag(9), None);
        assert_eq!(RecordKind::parse("drift"), Some(RecordKind::DriftDetected));
        assert_eq!(ServedLabel::parse("nope"), None);
    }
}

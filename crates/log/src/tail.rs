//! Cursor-based streaming reads and retention compaction: the live
//! side of the event log.
//!
//! [`read_after`] lets a reader *tail* a log file that the background
//! [`LogWriter`](crate::writer::LogWriter) is still appending to. It
//! leans entirely on the sealed-segment contract of
//! [`scan_bytes`](crate::segment::scan_bytes): a partially written
//! segment fails framing or CRC checks and is treated as "no data
//! yet", so a concurrent reader can never observe a torn record — it
//! only ever sees whole sealed segments.
//!
//! The [`Cursor`] is durable across process restarts and across
//! [retention compaction](apply_retention): the sequence number is
//! authoritative (records with `seq <= cursor.seq` are never returned
//! twice), while the byte offset is only a resumption hint used to
//! skip directly to the right segment when the file layout has not
//! changed. Every call rescans the file's segment directory and skips
//! already-consumed segments via their zone maps without decoding a
//! single column, so a stale or compaction-shifted offset degrades to
//! a zone-map walk, never to wrong results.
//!
//! [`apply_retention`] enforces [`RetentionConfig`] by dropping whole
//! sealed segments from the *front* of the file and rewriting the
//! remainder atomically (tmp + fsync + rename). Retained segments are
//! copied byte-for-byte — zone maps, CRC frames, and the emitter-owned
//! sequence numbers inside are untouched, so predicate scans over the
//! retained suffix are unchanged and the recovered `last_seq` tail
//! survives (the newest segment is never dropped).

use std::fmt;
use std::fs;
use std::path::Path;

use odin_store::{checkpoint::write_atomic, StoreError};

use crate::record::{LogRecord, RetentionConfig};
use crate::segment::{self, LogFile, HEADER_LEN};

/// A durable position in one log file: the sequence number of the last
/// record the reader has consumed plus the byte offset where the next
/// unread segment is expected to start.
///
/// `seq` is authoritative; `offset` is a fast-path hint (see the
/// module docs). `Cursor::default()` — rendered as `0:8` — reads from
/// the beginning of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Sequence number of the last consumed record (0 = none).
    pub seq: u64,
    /// Expected byte offset of the next unread segment.
    pub offset: u64,
}

impl Default for Cursor {
    fn default() -> Self {
        Cursor { seq: 0, offset: HEADER_LEN }
    }
}

impl fmt::Display for Cursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.seq, self.offset)
    }
}

impl Cursor {
    /// Parse the `seq:offset` string form rendered by `Display`.
    pub fn parse(s: &str) -> Option<Cursor> {
        let (seq, offset) = s.split_once(':')?;
        Some(Cursor { seq: seq.trim().parse().ok()?, offset: offset.trim().parse().ok()? })
    }
}

/// One batch of records returned by [`read_after`], plus the cursor to
/// pass on the next call.
#[derive(Debug, Clone)]
pub struct TailBatch {
    /// Records with `seq > cursor.seq`, in file (= sequence) order.
    pub records: Vec<LogRecord>,
    /// Cursor positioned after the last returned record (equal to the
    /// input cursor's `seq` when no new records were available).
    pub next: Cursor,
}

/// Collect up to `limit` records with `seq > cursor.seq` from an
/// already-scanned log. Fully consumed segments are skipped via their
/// zone maps without decoding any column.
pub fn collect_after(log: &LogFile, cursor: Cursor, limit: usize) -> Result<TailBatch, StoreError> {
    let limit = limit.max(1);
    let mut records: Vec<LogRecord> = Vec::new();
    let mut next = Cursor { seq: cursor.seq, offset: cursor.offset.max(HEADER_LEN) };
    for (i, seg) in log.segments.iter().enumerate() {
        let seg_end = seg.offset + seg.len as u64;
        if seg.zone.max_seq <= cursor.seq {
            // Every record here was already consumed; repair the
            // offset hint as we walk past (it may predate compaction).
            next.offset = seg_end;
            continue;
        }
        if records.len() >= limit {
            break;
        }
        let mut truncated = false;
        for r in log.records(i)? {
            if r.seq <= cursor.seq {
                continue;
            }
            if records.len() >= limit {
                truncated = true;
                break;
            }
            next.seq = r.seq;
            records.push(r);
        }
        // A partially consumed segment must be revisited next call;
        // a drained one is skipped by its zone map from now on.
        next.offset = if truncated { seg.offset } else { seg_end };
        if truncated {
            break;
        }
    }
    Ok(TailBatch { records, next })
}

/// Read up to `limit` records appended after `cursor` from the log at
/// `path`, tolerating a concurrent writer (sealed segments only; a
/// torn or in-flight tail is invisible). A missing file reads as an
/// empty log so a tail can be started before the writer first opens
/// it.
pub fn read_after(path: &Path, cursor: Cursor, limit: usize) -> Result<TailBatch, StoreError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let log = segment::scan_bytes(bytes)?;
    collect_after(&log, cursor, limit)
}

/// Compute how many leading segments `retention` would drop. The
/// newest segment is never dropped, so the emitter's recovered
/// sequence tail survives any budget.
fn segments_to_drop(log: &LogFile, retention: &RetentionConfig) -> usize {
    let n = log.segments.len();
    if n <= 1 {
        return 0;
    }
    let mut drop_n = 0usize;
    if retention.max_age_us > 0 {
        // Age is measured against the newest record in the file, not
        // wall clock, so the decision is a pure function of contents.
        let newest = log.segments[n - 1].zone.max_ts_us;
        let cutoff = newest.saturating_sub(retention.max_age_us);
        while drop_n < n - 1 && log.segments[drop_n].zone.max_ts_us < cutoff {
            drop_n += 1;
        }
    }
    if retention.max_bytes > 0 {
        let mut kept: u64 =
            HEADER_LEN + log.segments[drop_n..].iter().map(|s| s.len as u64).sum::<u64>();
        while drop_n < n - 1 && kept > retention.max_bytes {
            kept -= log.segments[drop_n].len as u64;
            drop_n += 1;
        }
    }
    drop_n
}

/// Enforce `retention` on the log at `path`: drop whole sealed
/// segments from the front until both budgets are met (always keeping
/// the newest segment), rewriting header + retained segments
/// atomically. Retained segment bytes are copied verbatim. Returns
/// `true` when the file was rewritten.
///
/// The caller must guarantee no concurrent *writer* (the
/// [`LogWriter`](crate::writer::LogWriter) runs this on its own writer
/// thread); concurrent readers are safe because the rewrite is an
/// atomic rename.
pub fn apply_retention(path: &Path, retention: RetentionConfig) -> Result<bool, StoreError> {
    if retention.is_unlimited() {
        return Ok(false);
    }
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let log = segment::scan_bytes(bytes)?;
    let drop_n = segments_to_drop(&log, &retention);
    if drop_n == 0 {
        return Ok(false);
    }
    let keep = &log.segments[drop_n..];
    let kept_len: usize = keep.iter().map(|s| s.len).sum();
    let mut out = Vec::with_capacity(HEADER_LEN as usize + kept_len);
    out.extend_from_slice(&segment::header_bytes());
    for seg in keep {
        let start = seg.offset as usize;
        out.extend_from_slice(&log.raw_bytes()[start..start + seg.len]);
    }
    write_atomic(path, &out)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use crate::segment::{encode_segment, header_bytes, read_log};
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "odin-tail-{tag}-{}-{:?}.odlg",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn rec(seq: u64) -> LogRecord {
        LogRecord { seq, ts_us: seq * 1_000, frame: seq, ..LogRecord::empty() }
    }

    fn write_segments(path: &Path, batches: &[&[LogRecord]]) {
        let mut bytes = header_bytes().to_vec();
        for b in batches {
            bytes.extend_from_slice(&encode_segment(b));
        }
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn cursor_string_form_roundtrips() {
        let c = Cursor { seq: 42, offset: 1234 };
        assert_eq!(Cursor::parse(&c.to_string()), Some(c));
        assert_eq!(Cursor::parse("0:8"), Some(Cursor::default()));
        assert_eq!(Cursor::parse("nope"), None);
        assert_eq!(Cursor::parse("1:x"), None);
    }

    #[test]
    fn read_after_pages_through_segments_and_respects_limit() {
        let path = temp_path("pages");
        let a: Vec<LogRecord> = (1..=4).map(rec).collect();
        let b: Vec<LogRecord> = (5..=8).map(rec).collect();
        write_segments(&path, &[&a, &b]);

        // Page of 3: stops mid-segment, cursor points back into it.
        let p1 = read_after(&path, Cursor::default(), 3).unwrap();
        assert_eq!(p1.records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(p1.next.seq, 3);
        let p2 = read_after(&path, p1.next, 3).unwrap();
        assert_eq!(p2.records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5, 6]);
        let p3 = read_after(&path, p2.next, 100).unwrap();
        assert_eq!(p3.records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![7, 8]);
        // Drained: next call returns nothing and a stable cursor.
        let p4 = read_after(&path, p3.next, 100).unwrap();
        assert!(p4.records.is_empty());
        assert_eq!(p4.next.seq, 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_invisible_to_the_tail_reader() {
        let path = temp_path("torn");
        let a: Vec<LogRecord> = (1..=4).map(rec).collect();
        write_segments(&path, &[&a]);
        // Simulate an in-flight append: half a segment at the tail.
        let partial = encode_segment(&(5..=8).map(rec).collect::<Vec<_>>());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&partial[..partial.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let batch = read_after(&path, Cursor::default(), 100).unwrap();
        assert_eq!(batch.records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(batch.next.seq, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let path = temp_path("missing");
        let batch = read_after(&path, Cursor::default(), 10).unwrap();
        assert!(batch.records.is_empty());
        assert_eq!(batch.next, Cursor::default());
    }

    #[test]
    fn stale_offset_after_compaction_never_replays_or_skips() {
        let path = temp_path("stale");
        let segs: Vec<Vec<LogRecord>> =
            (0..4).map(|s| (s * 4 + 1..=s * 4 + 4).map(rec).collect()).collect();
        let refs: Vec<&[LogRecord]> = segs.iter().map(|v| v.as_slice()).collect();
        write_segments(&path, &refs);

        // Consume the first 6 records, then compact away the front.
        let p1 = read_after(&path, Cursor::default(), 6).unwrap();
        assert_eq!(p1.next.seq, 6);
        let rewritten =
            apply_retention(&path, RetentionConfig { max_bytes: 1, max_age_us: 0 }).unwrap();
        assert!(rewritten);
        // Only the newest segment (13..=16) survives a 1-byte budget.
        let after = read_after(&path, p1.next, 100).unwrap();
        assert_eq!(
            after.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![13, 14, 15, 16],
            "records 7..=12 were dropped by retention; 13..=16 must appear exactly once"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retention_drops_oldest_whole_segments_only() {
        let path = temp_path("budget");
        let segs: Vec<Vec<LogRecord>> =
            (0..5).map(|s| (s * 10 + 1..=s * 10 + 10).map(rec).collect()).collect();
        let refs: Vec<&[LogRecord]> = segs.iter().map(|v| v.as_slice()).collect();
        write_segments(&path, &refs);
        let before = read_log(&path).unwrap();
        let seg_len = before.segments[0].len as u64;
        let budget = HEADER_LEN + seg_len * 3 + seg_len / 2; // fits 3 whole segments

        assert!(
            apply_retention(&path, RetentionConfig { max_bytes: budget, max_age_us: 0 }).unwrap()
        );
        let after = read_log(&path).unwrap();
        assert_eq!(after.segments.len(), 3);
        assert!(!after.torn);
        assert!(std::fs::metadata(&path).unwrap().len() <= budget);
        // The retained suffix is byte-for-byte the old segments 2..5.
        assert_eq!(after.record_count(), 30);
        assert_eq!(after.segments[0].zone.min_seq, 21);
        assert_eq!(after.last_seq(), 50);
        // Idempotent: already under budget, nothing to do.
        assert!(
            !apply_retention(&path, RetentionConfig { max_bytes: budget, max_age_us: 0 }).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retention_by_age_uses_record_time_not_wall_clock() {
        let path = temp_path("age");
        let old: Vec<LogRecord> = (1..=4).map(rec).collect(); // ts 1_000..4_000
        let mid: Vec<LogRecord> = (50..=53).map(rec).collect(); // ts 50_000..53_000
        let new: Vec<LogRecord> = (100..=103).map(rec).collect(); // ts ..103_000
        write_segments(&path, &[&old, &mid, &new]);

        // Window of 60ms from newest ts (103_000): drops only `old`.
        assert!(
            apply_retention(&path, RetentionConfig { max_bytes: 0, max_age_us: 60_000 }).unwrap()
        );
        let log = read_log(&path).unwrap();
        assert_eq!(log.segments.len(), 2);
        assert_eq!(log.segments[0].zone.min_seq, 50);
        // Tiny window: everything is "too old" but the newest segment
        // is pinned.
        assert!(apply_retention(&path, RetentionConfig { max_bytes: 0, max_age_us: 1 }).unwrap());
        let log = read_log(&path).unwrap();
        assert_eq!(log.segments.len(), 1);
        assert_eq!(log.last_seq(), 103);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unlimited_retention_is_a_no_op() {
        let path = temp_path("noop");
        let a: Vec<LogRecord> = (1..=4).map(rec).collect();
        write_segments(&path, &[&a]);
        let before = std::fs::read(&path).unwrap();
        assert!(!apply_retention(&path, RetentionConfig::default()).unwrap());
        assert_eq!(std::fs::read(&path).unwrap(), before);
        // Missing file is also a no-op, not an error.
        assert!(!apply_retention(
            &temp_path("noop-missing"),
            RetentionConfig { max_bytes: 10, max_age_us: 0 }
        )
        .unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kind_masks_survive_compaction_for_pruned_scans() {
        let path = temp_path("masks");
        let mut drift = rec(11);
        drift.kind = RecordKind::DriftDetected;
        let a: Vec<LogRecord> = (1..=4).map(rec).collect();
        let b = vec![rec(10), drift, rec(12)];
        write_segments(&path, &[&a, &b]);
        assert!(apply_retention(&path, RetentionConfig { max_bytes: 1, max_age_us: 0 }).unwrap());
        let log = read_log(&path).unwrap();
        assert_eq!(log.segments.len(), 1);
        assert!(log.segments[0].zone.has_kind(RecordKind::DriftDetected));
        assert_eq!(log.records(0).unwrap()[1].kind, RecordKind::DriftDetected);
        let _ = std::fs::remove_file(&path);
    }
}

//! Scripted drift workloads.
//!
//! §6.5 of the paper evaluates ODIN on a 100 K-image sequence whose
//! condition pool grows over time: night-only, then +day, then +snow,
//! then +rain, with an *unadjusted* mixture ("we want to replicate a
//! realistic distribution"). [`DriftSchedule`] expresses exactly that:
//! a list of phases, each adding a subset to the active pool at a given
//! stream position.

use rand::rngs::StdRng;
use rand::Rng;

use crate::bdd::{Frame, SceneGen};
use crate::condition::Subset;

/// One phase-change point: at `at_frame`, `adds` joins the sampling pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Stream index at which the subset becomes active.
    pub at_frame: usize,
    /// The subset to add.
    pub adds: Subset,
}

/// A drift workload: a total length plus phase-change points.
#[derive(Debug, Clone)]
pub struct DriftSchedule {
    total: usize,
    phases: Vec<Phase>,
}

impl DriftSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, the first phase does not start at
    /// frame 0, or phases are not sorted by `at_frame`.
    pub fn new(total: usize, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert_eq!(phases[0].at_frame, 0, "first phase must start at frame 0");
        assert!(
            phases.windows(2).all(|w| w[0].at_frame <= w[1].at_frame),
            "phases must be sorted by at_frame"
        );
        DriftSchedule { total, phases }
    }

    /// The paper's end-to-end schedule (§6.5), scaled to `total` frames:
    /// NIGHT from the start, +DAY at 20%, +SNOW at 40%, +RAIN at 60%.
    pub fn paper_end_to_end(total: usize) -> Self {
        Self::new(
            total,
            vec![
                Phase { at_frame: 0, adds: Subset::Night },
                Phase { at_frame: total / 5, adds: Subset::Day },
                Phase { at_frame: 2 * total / 5, adds: Subset::Snow },
                Phase { at_frame: 3 * total / 5, adds: Subset::Rain },
            ],
        )
    }

    /// Total stream length.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Stream positions at which a new subset arrives (excluding frame 0).
    pub fn drift_points(&self) -> Vec<usize> {
        self.phases.iter().skip(1).map(|p| p.at_frame).collect()
    }

    /// The pool of active subsets at stream index `i`.
    pub fn active_at(&self, i: usize) -> Vec<Subset> {
        self.phases.iter().filter(|p| p.at_frame <= i).map(|p| p.adds).collect()
    }

    /// Materializes the whole stream of frames.
    pub fn generate(&self, gen: &SceneGen, rng: &mut StdRng) -> Vec<Frame> {
        self.iter(gen, rng).collect()
    }

    /// An iterator over the stream (frames are rendered lazily).
    pub fn iter<'a>(&'a self, gen: &'a SceneGen, rng: &'a mut StdRng) -> StreamIter<'a> {
        StreamIter { schedule: self, gen, rng, pos: 0 }
    }
}

/// One bounded occupancy window: `subset` is the sole active regime on
/// frames `from..to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// First frame (inclusive) of the window.
    pub from: usize,
    /// End frame (exclusive) of the window.
    pub to: usize,
    /// The regime occupying the window.
    pub subset: Subset,
}

/// A recurring-drift workload: regimes that *leave and return*.
///
/// [`DriftSchedule`]'s pool only ever grows, which models the paper's
/// §6.5 sequence but can never show a regime coming back. Recurring
/// drift (day/night cycles, weather fronts) is the case the model attic
/// exists for: the returning regime's cluster signature matches an
/// archived one and the cached model is reinstalled instead of
/// retrained. The windows must tile `0..total` exactly, so every frame
/// belongs to exactly one regime and switch points are unambiguous.
#[derive(Debug, Clone)]
pub struct RecurringSchedule {
    total: usize,
    windows: Vec<Window>,
}

impl RecurringSchedule {
    /// Creates a schedule from explicit windows.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty, any window is empty (`from >= to`),
    /// or the windows do not tile `0..total` exactly (first starts at 0,
    /// each starts where the previous ends, last ends at `total`).
    pub fn new(total: usize, windows: Vec<Window>) -> Self {
        assert!(!windows.is_empty(), "schedule needs at least one window");
        assert!(windows.iter().all(|w| w.from < w.to), "windows must be non-empty (from < to)");
        assert_eq!(windows[0].from, 0, "first window must start at frame 0");
        assert!(
            windows.windows(2).all(|w| w[0].to == w[1].from),
            "windows must tile the stream with no gap or overlap"
        );
        assert_eq!(windows.last().unwrap().to, total, "last window must end at total");
        RecurringSchedule { total, windows }
    }

    /// Equal-length windows cycling through `subsets`: block `k` covers
    /// `[k*period, (k+1)*period)` and is occupied by
    /// `subsets[k % subsets.len()]`. A trailing partial block is kept,
    /// so every frame up to `total` is covered.
    ///
    /// # Panics
    ///
    /// Panics if `period` is 0, `subsets` is empty, or `total < period`.
    pub fn alternating(total: usize, period: usize, subsets: &[Subset]) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(!subsets.is_empty(), "need at least one subset");
        assert!(total >= period, "total must cover at least one period");
        let mut windows = Vec::new();
        let mut from = 0;
        let mut k = 0;
        while from < total {
            let to = (from + period).min(total);
            windows.push(Window { from, to, subset: subsets[k % subsets.len()] });
            from = to;
            k += 1;
        }
        Self::new(total, windows)
    }

    /// Total stream length.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Stream positions at which the occupying regime changes (the start
    /// of every window after the first whose subset differs from its
    /// predecessor's).
    pub fn switch_points(&self) -> Vec<usize> {
        self.windows.windows(2).filter(|w| w[0].subset != w[1].subset).map(|w| w[1].from).collect()
    }

    /// The regime occupying stream index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= total` (every in-range frame is covered by
    /// construction).
    pub fn active_at(&self, i: usize) -> Subset {
        self.windows
            .iter()
            .find(|w| w.from <= i && i < w.to)
            .unwrap_or_else(|| panic!("frame {i} outside schedule of {} frames", self.total))
            .subset
    }

    /// Materializes the whole stream of frames, mirroring
    /// [`DriftSchedule`]'s sampling: regime → condition → frame, all
    /// from the one `rng`.
    pub fn generate(&self, gen: &SceneGen, rng: &mut StdRng) -> Vec<Frame> {
        (0..self.total)
            .map(|i| {
                let cond = self.active_at(i).sample_condition(rng);
                gen.frame(rng, cond)
            })
            .collect()
    }
}

/// Lazy frame iterator over a [`DriftSchedule`].
pub struct StreamIter<'a> {
    schedule: &'a DriftSchedule,
    gen: &'a SceneGen,
    rng: &'a mut StdRng,
    pos: usize,
}

impl Iterator for StreamIter<'_> {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        if self.pos >= self.schedule.total {
            return None;
        }
        let active = self.schedule.active_at(self.pos);
        debug_assert!(!active.is_empty());
        let subset = active[self.rng.gen_range(0..active.len())];
        let cond = subset.sample_condition(self.rng);
        self.pos += 1;
        Some(self.gen.frame(self.rng, cond))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.schedule.total - self.pos;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::TimeOfDay;
    use rand::SeedableRng;

    #[test]
    fn active_pool_grows() {
        let s = DriftSchedule::paper_end_to_end(100);
        assert_eq!(s.active_at(0), vec![Subset::Night]);
        assert_eq!(s.active_at(19), vec![Subset::Night]);
        assert_eq!(s.active_at(20), vec![Subset::Night, Subset::Day]);
        assert_eq!(s.active_at(99).len(), 4);
    }

    #[test]
    fn drift_points_match_schedule() {
        let s = DriftSchedule::paper_end_to_end(100);
        assert_eq!(s.drift_points(), vec![20, 40, 60]);
    }

    #[test]
    fn early_stream_is_all_night() {
        let s = DriftSchedule::paper_end_to_end(50);
        let gen = SceneGen::new(32);
        let mut rng = StdRng::seed_from_u64(0);
        let frames = s.generate(&gen, &mut rng);
        assert_eq!(frames.len(), 50);
        for f in &frames[..10] {
            assert_eq!(f.cond.time, TimeOfDay::Night);
        }
    }

    #[test]
    fn late_stream_mixes_subsets() {
        let s = DriftSchedule::paper_end_to_end(200);
        let gen = SceneGen::new(32);
        let mut rng = StdRng::seed_from_u64(1);
        let frames = s.generate(&gen, &mut rng);
        let tail = &frames[160..];
        let day = tail.iter().filter(|f| f.cond.time == TimeOfDay::Day).count();
        let night = tail.iter().filter(|f| f.cond.time == TimeOfDay::Night).count();
        assert!(day > 0, "expect some day frames late in the stream");
        assert!(night > 0, "night frames should persist (old clusters co-exist)");
    }

    #[test]
    fn iterator_size_hint() {
        let s = DriftSchedule::paper_end_to_end(10);
        let gen = SceneGen::new(32);
        let mut rng = StdRng::seed_from_u64(2);
        let mut it = s.iter(&gen, &mut rng);
        assert_eq!(it.size_hint(), (10, Some(10)));
        let _ = it.next();
        assert_eq!(it.size_hint(), (9, Some(9)));
    }

    #[test]
    fn recurring_alternating_tiles_the_stream() {
        let s = RecurringSchedule::alternating(100, 25, &[Subset::Night, Subset::Day]);
        assert_eq!(s.total(), 100);
        assert_eq!(s.active_at(0), Subset::Night);
        assert_eq!(s.active_at(24), Subset::Night);
        assert_eq!(s.active_at(25), Subset::Day);
        assert_eq!(s.active_at(50), Subset::Night, "first regime returns");
        assert_eq!(s.active_at(99), Subset::Day);
        assert_eq!(s.switch_points(), vec![25, 50, 75]);
    }

    #[test]
    fn recurring_keeps_trailing_partial_window() {
        let s = RecurringSchedule::alternating(70, 30, &[Subset::Night, Subset::Day]);
        assert_eq!(s.switch_points(), vec![30, 60]);
        assert_eq!(s.active_at(69), Subset::Night);
    }

    #[test]
    fn recurring_frames_match_their_window() {
        let s = RecurringSchedule::alternating(60, 20, &[Subset::Night, Subset::Day]);
        let gen = SceneGen::new(32);
        let mut rng = StdRng::seed_from_u64(3);
        let frames = s.generate(&gen, &mut rng);
        assert_eq!(frames.len(), 60);
        for f in &frames[..20] {
            assert!(Subset::Night.contains(&f.cond));
        }
        for f in &frames[20..40] {
            assert!(Subset::Day.contains(&f.cond));
        }
        for f in &frames[40..] {
            assert!(Subset::Night.contains(&f.cond), "night regime should have returned");
        }
    }

    #[test]
    fn recurring_ignores_repeated_subset_at_switch_points() {
        let s = RecurringSchedule::new(
            30,
            vec![
                Window { from: 0, to: 10, subset: Subset::Night },
                Window { from: 10, to: 20, subset: Subset::Night },
                Window { from: 20, to: 30, subset: Subset::Day },
            ],
        );
        assert_eq!(s.switch_points(), vec![20], "same-regime boundary is not a switch");
    }

    #[test]
    #[should_panic(expected = "no gap or overlap")]
    fn recurring_rejects_gapped_windows() {
        let _ = RecurringSchedule::new(
            30,
            vec![
                Window { from: 0, to: 10, subset: Subset::Night },
                Window { from: 15, to: 30, subset: Subset::Day },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "last window must end at total")]
    fn recurring_rejects_short_coverage() {
        let _ = RecurringSchedule::new(30, vec![Window { from: 0, to: 20, subset: Subset::Night }]);
    }

    #[test]
    #[should_panic(expected = "first phase must start at frame 0")]
    fn schedule_must_start_at_zero() {
        let _ = DriftSchedule::new(10, vec![Phase { at_frame: 5, adds: Subset::Day }]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_phases_rejected() {
        let _ = DriftSchedule::new(
            10,
            vec![
                Phase { at_frame: 0, adds: Subset::Day },
                Phase { at_frame: 8, adds: Subset::Snow },
                Phase { at_frame: 4, adds: Subset::Rain },
            ],
        );
    }
}

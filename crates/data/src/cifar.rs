//! A procedural stand-in for CIFAR-10.
//!
//! Ten classes of 32×32 colored images. A class is a *texture pattern*
//! (stripes, checkers, rings, dots, ...), while the color palette and
//! the pattern phase are sampled per image, independent of the class.
//! That makes raw-pixel statistics nearly class-agnostic: two samples of
//! the same class can be far apart in pixel space (different color,
//! shifted phase) while samples of different classes can be close. Like
//! real CIFAR-10, separating classes — and detecting outlier classes —
//! requires representation learning, which is the difficulty step the
//! paper's Table 1 takes from MNIST to CIFAR-10.

use rand::rngs::StdRng;
use rand::Rng;

use crate::digits::LabeledImage;
use crate::image::Image;

/// Image side length (matches CIFAR-10).
pub const CIFAR_SIZE: usize = 32;

/// Per-sample color palette (chosen independently of the class).
const PALETTE: [[f32; 3]; 8] = [
    [0.85, 0.20, 0.20],
    [0.20, 0.80, 0.25],
    [0.20, 0.30, 0.85],
    [0.85, 0.80, 0.20],
    [0.80, 0.25, 0.80],
    [0.20, 0.80, 0.80],
    [0.90, 0.55, 0.15],
    [0.60, 0.60, 0.60],
];

/// Renders one CIFAR-sim image of the given class (a texture pattern
/// with per-sample random color and phase).
pub fn gen_cifar(rng: &mut StdRng, class: u8) -> Image {
    assert!(class < 10, "cifar class must be 0-9, got {class}");
    let mut img = Image::new(3, CIFAR_SIZE, CIFAR_SIZE);
    let base = PALETTE[rng.gen_range(0..PALETTE.len())];
    let jit: f32 = rng.gen_range(-0.08..0.08);
    let color = [
        (base[0] + jit).clamp(0.0, 1.0),
        (base[1] + jit).clamp(0.0, 1.0),
        (base[2] + jit).clamp(0.0, 1.0),
    ];
    let dark = [color[0] * 0.3, color[1] * 0.3, color[2] * 0.3];
    let phase = rng.gen_range(0..16) as usize;
    let phase2 = rng.gen_range(0..16) as usize;
    for y in 0..CIFAR_SIZE {
        for x in 0..CIFAR_SIZE {
            let on = match class {
                0 => ((y + phase) / 4).is_multiple_of(2), // horizontal stripes
                1 => ((x + phase) / 4).is_multiple_of(2), // vertical stripes
                2 => ((x + phase) / 4 + (y + phase2) / 4).is_multiple_of(2), // checker
                3 => ((x + y + phase) / 5).is_multiple_of(2), // diagonal stripes
                4 => {
                    // concentric rings with a shifted center
                    let cy = y as i32 - 10 - (phase % 12) as i32;
                    let cx = x as i32 - 10 - (phase2 % 12) as i32;
                    let r = ((cy * cy + cx * cx) as f32).sqrt() as usize;
                    (r / 4).is_multiple_of(2)
                }
                5 => (x + phase) % 8 < 2 || (y + phase2) % 8 < 2, // grid lines
                6 => (x + y + phase) / 5 % 2 == 1 && (x + 2 * y) % 3 == 0, // sparse diagonal dashes
                7 => (x + phase) % 6 < 2 && (y + phase2) % 6 < 2, // dot grid
                8 => ((x + phase) % 16 < 8) ^ ((y + phase2) % 16 < 8), // coarse blocks
                _ => (x * x + y * 3 + phase) % 7 < 3,             // irregular texture
            };
            let rgb = if on { color } else { dark };
            img.set_rgb(y, x, rgb);
        }
    }
    for y in 0..CIFAR_SIZE {
        for x in 0..CIFAR_SIZE {
            for c in 0..3 {
                let n: f32 = rng.gen_range(-0.06..0.06);
                let v = img.get(c, y, x) + n;
                img.set(c, y, x, v);
            }
        }
    }
    img
}

/// Generates `per_class` samples for each class in `classes`.
pub fn cifar_dataset(rng: &mut StdRng, classes: &[u8], per_class: usize) -> Vec<LabeledImage> {
    let mut out = Vec::with_capacity(classes.len() * per_class);
    for &c in classes {
        for _ in 0..per_class {
            out.push(LabeledImage { image: gen_cifar(rng, c), label: c });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn images_are_rgb_32() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = gen_cifar(&mut rng, 0);
        assert_eq!(img.channels(), 3);
        assert_eq!(img.height(), CIFAR_SIZE);
    }

    #[test]
    fn classes_are_patterns_not_colors() {
        // Class 0 = horizontal stripes (rows are uniform, columns vary);
        // class 1 = vertical stripes (the transpose). Color must NOT be
        // class-determined: the directional variance structure is.
        let mut rng = StdRng::seed_from_u64(1);
        let row_col_var = |img: &Image| -> (f32, f32) {
            let lum =
                |y: usize, x: usize| (img.get(0, y, x) + img.get(1, y, x) + img.get(2, y, x)) / 3.0;
            let mut row_var = 0.0f32;
            let mut col_var = 0.0f32;
            for i in 0..CIFAR_SIZE {
                let row_mean: f32 =
                    (0..CIFAR_SIZE).map(|x| lum(i, x)).sum::<f32>() / CIFAR_SIZE as f32;
                row_var += (0..CIFAR_SIZE).map(|x| (lum(i, x) - row_mean).powi(2)).sum::<f32>();
                let col_mean: f32 =
                    (0..CIFAR_SIZE).map(|y| lum(y, i)).sum::<f32>() / CIFAR_SIZE as f32;
                col_var += (0..CIFAR_SIZE).map(|y| (lum(y, i) - col_mean).powi(2)).sum::<f32>();
            }
            (row_var, col_var)
        };
        let h = gen_cifar(&mut rng, 0);
        let v = gen_cifar(&mut rng, 1);
        let (h_row, h_col) = row_col_var(&h);
        let (v_row, v_col) = row_col_var(&v);
        assert!(h_col > 2.0 * h_row, "horizontal stripes: inter-row variance should dominate");
        assert!(v_row > 2.0 * v_col, "vertical stripes: inter-column variance should dominate");
    }

    #[test]
    fn noise_makes_samples_differ() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = gen_cifar(&mut rng, 4);
        let b = gen_cifar(&mut rng, 4);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn dataset_builder_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = cifar_dataset(&mut rng, &[1, 5], 4);
        assert_eq!(ds.len(), 8);
        assert!(ds.iter().all(|s| s.label == 1 || s.label == 5));
    }

    #[test]
    #[should_panic(expected = "cifar class must be 0-9")]
    fn invalid_class_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = gen_cifar(&mut rng, 12);
    }
}

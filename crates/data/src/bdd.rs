//! The BDD-sim scene generator.
//!
//! Renders dashcam-like frames with controllable weather, time of day, and
//! location, plus ground-truth bounding boxes for five object classes.
//! This is the substitution for the Berkeley DeepDrive dataset: the
//! conditions induce exactly the kind of global appearance shift (P(X)
//! drift) that ODIN's DETECTOR must discover, and the boxes give the
//! oracle labels that SPECIALIZER consumes.
//!
//! Rendering order matters for realism: sky → ground/road → objects →
//! night dimming → light sources (drawn *after* dimming so they stay
//! bright) → weather post-effects (rain streaks, snow speckle, fog wash)
//! → sensor noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::condition::{Condition, Location, Subset, TimeOfDay, Weather};
use crate::image::Image;

/// The object classes BDD-sim annotates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car.
    Car,
    /// Truck (larger box).
    Truck,
    /// Pedestrian.
    Person,
    /// Traffic light on a pole.
    TrafficLight,
    /// Road sign on a pole.
    Sign,
}

impl ObjectClass {
    /// All classes, in label-index order.
    pub const ALL: [ObjectClass; 5] = [
        ObjectClass::Car,
        ObjectClass::Truck,
        ObjectClass::Person,
        ObjectClass::TrafficLight,
        ObjectClass::Sign,
    ];

    /// Stable integer id (0-based).
    pub fn index(&self) -> usize {
        match self {
            ObjectClass::Car => 0,
            ObjectClass::Truck => 1,
            ObjectClass::Person => 2,
            ObjectClass::TrafficLight => 3,
            ObjectClass::Sign => 4,
        }
    }

    /// Class from its integer id.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 5`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Printable name.
    pub fn label(&self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Truck => "truck",
            ObjectClass::Person => "person",
            ObjectClass::TrafficLight => "traffic-light",
            ObjectClass::Sign => "sign",
        }
    }
}

/// Number of object classes.
pub const NUM_CLASSES: usize = 5;

/// An axis-aligned ground-truth box in pixel coordinates (top-left
/// origin).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GtBox {
    /// Object class.
    pub class: ObjectClass,
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl GtBox {
    /// Box center `(cx, cy)`.
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &GtBox) -> f32 {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        let inter = (x2 - x1).max(0.0) * (y2 - y1).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// A rendered frame: pixels, ground truth, and its (hidden) condition tag.
#[derive(Debug, Clone)]
pub struct Frame {
    /// RGB pixels.
    pub image: Image,
    /// Ground-truth boxes (the "oracle labels").
    pub boxes: Vec<GtBox>,
    /// The environmental condition the frame was rendered under. ODIN
    /// never reads this during detection; it exists for evaluation.
    pub cond: Condition,
}

/// The scene generator. Frames are square, `size`×`size` RGB.
#[derive(Debug, Clone, Copy)]
pub struct SceneGen {
    size: usize,
}

/// Default frame side length used throughout the experiments.
pub const DEFAULT_FRAME_SIZE: usize = 48;

impl Default for SceneGen {
    fn default() -> Self {
        SceneGen { size: DEFAULT_FRAME_SIZE }
    }
}

impl SceneGen {
    /// Creates a generator for `size`×`size` frames (minimum 32).
    pub fn new(size: usize) -> Self {
        assert!(size >= 32, "frame size must be at least 32, got {size}");
        SceneGen { size }
    }

    /// Frame side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Renders one frame under the given condition (objects and
    /// background sampled fresh).
    pub fn frame(&self, rng: &mut StdRng, cond: Condition) -> Frame {
        let n_objects = match cond.location {
            Location::City => rng.gen_range(2..=5),
            Location::Residential => rng.gen_range(1..=4),
            Location::Highway => rng.gen_range(1..=4),
            Location::Other => rng.gen_range(1..=3),
        };
        let specs: Vec<ObjectSpec> =
            (0..n_objects).map(|_| self.sample_spec(rng, cond.location)).collect();
        let bg_seed = rng.gen();
        self.frame_with_specs(bg_seed, rng, cond, &specs)
    }

    /// Samples a persistent object description (used directly by
    /// [`SceneGen::frame`], and across frames by `video::ClipGen`).
    pub fn sample_spec(&self, rng: &mut StdRng, location: Location) -> ObjectSpec {
        ObjectSpec {
            class: sample_class(rng, location),
            depth: rng.gen_range(0.3..0.95),
            x_frac: rng.gen_range(0.0..1.0),
            color: rng.gen_range(0..16),
            flag: rng.gen_bool(0.5),
        }
    }

    /// Renders a frame with an explicit object list. `bg_seed` fixes the
    /// background (buildings) so consecutive video frames share scenery;
    /// `rng` drives the per-frame effects (rain streaks, snow, noise).
    pub fn frame_with_specs(
        &self,
        bg_seed: u64,
        rng: &mut StdRng,
        cond: Condition,
        specs: &[ObjectSpec],
    ) -> Frame {
        let s = self.size;
        let sf = s as f32;
        let mut img = Image::new(3, s, s);
        let horizon = s / 2;
        let mut bg_rng = StdRng::seed_from_u64(bg_seed);

        // --- Sky ---
        let (sky_top, sky_bot) = sky_colors(&cond);
        img.vertical_gradient(horizon, sky_top, sky_bot);

        // --- Ground & road ---
        let ground = ground_color(&cond);
        img.fill_rect(horizon as isize, 0, s - horizon, s, ground);
        let road = road_color(&cond);
        // Road trapezoid: widens toward the bottom.
        for y in horizon..s {
            let f = (y - horizon) as f32 / (s - horizon) as f32;
            let half_w = sf * (0.08 + 0.38 * f);
            let cx = sf / 2.0;
            let x0 = (cx - half_w).max(0.0) as usize;
            let x1 = ((cx + half_w) as usize).min(s - 1);
            for x in x0..=x1 {
                img.set_rgb(y, x, road);
            }
        }
        // Dashed center line.
        let line_color =
            if cond.time == TimeOfDay::Night { [0.45, 0.45, 0.35] } else { [0.85, 0.85, 0.6] };
        for y in (horizon + 2..s).step_by(4) {
            img.fill_rect(y as isize, (s / 2) as isize, 2, 1, line_color);
        }

        // --- Location flavour (mild, intentionally weak signal) ---
        match cond.location {
            Location::City => {
                // Building silhouettes on the skyline.
                let b = building_color(&cond);
                let mut x = 0isize;
                while x < s as isize {
                    let w = bg_rng.gen_range(4..9);
                    let h = bg_rng.gen_range(4..horizon as i32 / 2 + 4) as usize;
                    img.fill_rect(horizon as isize - h as isize, x, h, w, b);
                    x += w as isize + bg_rng.gen_range(0..3);
                }
            }
            Location::Residential => {
                let b = building_color(&cond);
                for _ in 0..3 {
                    let w = bg_rng.gen_range(5..9);
                    let h = bg_rng.gen_range(3..6);
                    let x = bg_rng.gen_range(0..s - w);
                    img.fill_rect(horizon as isize - h as isize, x as isize, h, w, b);
                }
            }
            Location::Highway | Location::Other => {}
        }

        // --- Objects ---
        let mut boxes = Vec::new();
        let mut lights: Vec<LightSpot> = Vec::new();
        for spec in specs {
            if let Some(gt) = self.draw_object(&mut img, spec, &cond, &mut lights) {
                boxes.push(gt);
            }
        }

        // --- Time-of-day dimming ---
        match cond.time {
            TimeOfDay::Day => {}
            TimeOfDay::Dawn => img.scale_brightness(0.62),
            TimeOfDay::Night => img.scale_brightness(0.22),
        }

        // --- Light sources stay bright after dimming ---
        for spot in &lights {
            img.fill_rect(spot.y, spot.x, spot.h, spot.w, spot.rgb);
        }

        // --- Weather post-effects ---
        match cond.weather {
            Weather::Clear => {}
            Weather::Overcast => img.wash([0.5, 0.5, 0.52], 0.12),
            Weather::Rainy => {
                img.wash([0.3, 0.33, 0.4], 0.22);
                for _ in 0..s {
                    let x = rng.gen_range(0..s);
                    let y = rng.gen_range(0..s.saturating_sub(4));
                    let len = rng.gen_range(2..5);
                    for dy in 0..len {
                        img.blend_rgb(y + dy, x, [0.75, 0.78, 0.85], 0.35);
                    }
                }
            }
            Weather::Snowy => {
                for _ in 0..s * 2 {
                    let x = rng.gen_range(0..s);
                    let y = rng.gen_range(0..s);
                    img.blend_rgb(y, x, [0.95, 0.95, 0.97], 0.85);
                }
            }
            Weather::Foggy => img.wash([0.68, 0.68, 0.7], 0.5),
        }

        // --- Sensor noise ---
        for y in 0..s {
            for x in 0..s {
                for c in 0..3 {
                    let n: f32 = rng.gen_range(-0.03..0.03);
                    let v = img.get(c, y, x) + n;
                    img.set(c, y, x, v);
                }
            }
        }

        Frame { image: img, boxes, cond }
    }

    /// Renders `n` frames sampled from a subset's condition mixture.
    pub fn subset_frames(&self, rng: &mut StdRng, subset: Subset, n: usize) -> Vec<Frame> {
        (0..n)
            .map(|_| {
                let cond = subset.sample_condition(rng);
                self.frame(rng, cond)
            })
            .collect()
    }

    fn draw_object(
        &self,
        img: &mut Image,
        spec: &ObjectSpec,
        cond: &Condition,
        lights: &mut Vec<LightSpot>,
    ) -> Option<GtBox> {
        let s = self.size;
        let sf = s as f32;
        let horizon = s / 2;
        let night = cond.time == TimeOfDay::Night;
        let class = spec.class;
        let depth = spec.depth;
        let base_y = horizon as f32 + depth * (sf - horizon as f32) * 0.9;
        match class {
            ObjectClass::Car | ObjectClass::Truck => {
                let scale = 0.5 + 0.7 * depth;
                let (bw, bh) = if class == ObjectClass::Car {
                    ((sf * 0.3 * scale) as usize, (sf * 0.17 * scale) as usize)
                } else {
                    ((sf * 0.34 * scale) as usize, (sf * 0.26 * scale) as usize)
                };
                let (bw, bh) = (bw.max(5), bh.max(4));
                let x = (spec.x_frac * (s.saturating_sub(bw).max(1)) as f32) as isize;
                let y = (base_y as usize).min(s - bh) as isize - bh as isize / 2;
                let body = if night {
                    [0.07, 0.07, 0.09]
                } else {
                    let palette = [
                        [0.75, 0.1, 0.1],
                        [0.85, 0.85, 0.88],
                        [0.12, 0.12, 0.16],
                        [0.15, 0.3, 0.65],
                        [0.6, 0.6, 0.62],
                    ];
                    palette[spec.color % palette.len()]
                };
                img.fill_rect(y, x, bh, bw, body);
                // Windows: darker band on the upper third.
                img.fill_rect(y, x + 1, (bh / 3).max(1), bw.saturating_sub(2), [0.05, 0.08, 0.1]);
                // Wheels.
                let wheel_y = y + bh as isize - 1;
                img.fill_rect(wheel_y, x, 1, 2, [0.02, 0.02, 0.02]);
                img.fill_rect(wheel_y, x + bw as isize - 2, 1, 2, [0.02, 0.02, 0.02]);
                if night {
                    // Headlights / taillights persist through dimming.
                    let ly = y + bh as isize / 2;
                    let color = if spec.flag { [1.0, 0.95, 0.7] } else { [0.9, 0.1, 0.1] };
                    lights.push(LightSpot { y: ly, x, h: 1, w: 1, rgb: color });
                    lights.push(LightSpot {
                        y: ly,
                        x: x + bw as isize - 1,
                        h: 1,
                        w: 1,
                        rgb: color,
                    });
                }
                Some(GtBox { class, x: x as f32, y: y as f32, w: bw as f32, h: bh as f32 })
            }
            ObjectClass::Person => {
                let scale = 0.5 + 0.7 * depth;
                let bh = ((sf * 0.24 * scale) as usize).max(7);
                let bw = (bh / 2).max(3);
                let x = (spec.x_frac * (s.saturating_sub(bw).max(1)) as f32) as isize;
                let y = (base_y as usize).min(s - bh) as isize - bh as isize;
                let coat = if night { [0.06, 0.06, 0.07] } else { [0.5, 0.25, 0.2] };
                img.fill_rect(y + (bh / 4) as isize, x, bh - bh / 4, bw, coat);
                // Head.
                img.fill_rect(
                    y,
                    x,
                    (bh / 4).max(1),
                    bw,
                    if night { [0.08, 0.07, 0.06] } else { [0.85, 0.7, 0.55] },
                );
                Some(GtBox { class, x: x as f32, y: y as f32, w: bw as f32, h: bh as f32 })
            }
            ObjectClass::TrafficLight => {
                // Pole near the roadside, housing above the horizon.
                let x = if spec.flag {
                    2 + (spec.x_frac * (s / 4 - 2) as f32) as isize
                } else {
                    (3 * s / 4) as isize + (spec.x_frac * (s / 4 - 3) as f32) as isize
                };
                let top = (horizon as isize - (s as isize / 5)).max(0);
                let pole_h = s / 2 - top as usize;
                img.fill_rect(top, x + 1, pole_h, 1, [0.15, 0.15, 0.15]);
                let lamp =
                    if spec.color.is_multiple_of(2) { [0.95, 0.15, 0.1] } else { [0.1, 0.9, 0.2] };
                // Housing with an emissive lamp (drawn after dimming).
                let house_w = (s / 10).max(4);
                let house_h = (s / 8).max(5);
                img.fill_rect(top, x - 1, house_h, house_w, [0.1, 0.1, 0.1]);
                lights.push(LightSpot {
                    y: top + 1,
                    x,
                    h: house_h.saturating_sub(2),
                    w: house_w.saturating_sub(2),
                    rgb: lamp,
                });
                // BDD annotates the light housing, not the pole.
                Some(GtBox {
                    class,
                    x: (x - 1) as f32,
                    y: top as f32,
                    w: house_w as f32,
                    h: house_h as f32,
                })
            }
            ObjectClass::Sign => {
                let x = if spec.flag {
                    1 + (spec.x_frac * (s / 4 - 1) as f32) as isize
                } else {
                    (3 * s / 4) as isize + (spec.x_frac * (s / 4 - 5).max(1) as f32) as isize
                };
                let top = (horizon as isize - (s as isize / 6)).max(0);
                let sign_s = (s / 8).max(5);
                let face = if cond.time == TimeOfDay::Night {
                    [0.25, 0.25, 0.1]
                } else {
                    [0.9, 0.75, 0.1]
                };
                img.fill_rect(top, x, sign_s, sign_s, face);
                img.fill_rect(
                    top + sign_s as isize,
                    x + sign_s as isize / 2,
                    s / 6,
                    1,
                    [0.2, 0.2, 0.2],
                );
                // The annotation covers the sign face.
                Some(GtBox {
                    class,
                    x: x as f32,
                    y: top as f32,
                    w: sign_s as f32,
                    h: sign_s as f32,
                })
            }
        }
    }
}

/// A persistent scene object: everything needed to render it in any
/// frame of a clip. Produced by [`SceneGen::sample_spec`]; the
/// `video::ClipGen` advances `x_frac` over time to animate it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectSpec {
    /// Object class.
    pub class: ObjectClass,
    /// Depth in the scene: 0 = horizon (far/small), 1 = near/large.
    pub depth: f32,
    /// Horizontal position as a fraction of the drivable range.
    pub x_frac: f32,
    /// Appearance variant (body color / lamp color index).
    pub color: usize,
    /// Side/light toggle (roadside choice, headlight vs taillight).
    pub flag: bool,
}

/// An emissive region drawn after night dimming.
struct LightSpot {
    y: isize,
    x: isize,
    h: usize,
    w: usize,
    rgb: [f32; 3],
}

fn sample_class(rng: &mut StdRng, location: Location) -> ObjectClass {
    let roll = rng.gen_range(0..100);
    match location {
        Location::Highway => match roll {
            0..=59 => ObjectClass::Car,
            60..=79 => ObjectClass::Truck,
            80..=89 => ObjectClass::Sign,
            _ => ObjectClass::TrafficLight,
        },
        Location::City => match roll {
            0..=44 => ObjectClass::Car,
            45..=54 => ObjectClass::Truck,
            55..=74 => ObjectClass::Person,
            75..=89 => ObjectClass::TrafficLight,
            _ => ObjectClass::Sign,
        },
        _ => match roll {
            0..=49 => ObjectClass::Car,
            50..=59 => ObjectClass::Truck,
            60..=79 => ObjectClass::Person,
            80..=89 => ObjectClass::TrafficLight,
            _ => ObjectClass::Sign,
        },
    }
}

fn sky_colors(cond: &Condition) -> ([f32; 3], [f32; 3]) {
    match (cond.time, cond.weather) {
        (TimeOfDay::Night, _) => ([0.02, 0.02, 0.07], [0.05, 0.05, 0.13]),
        (TimeOfDay::Dawn, Weather::Clear) => ([0.45, 0.3, 0.45], [0.95, 0.6, 0.4]),
        (TimeOfDay::Day, Weather::Clear) => ([0.3, 0.5, 0.92], [0.65, 0.8, 0.97]),
        (_, Weather::Overcast) => ([0.5, 0.5, 0.53], [0.62, 0.62, 0.64]),
        (_, Weather::Rainy) => ([0.35, 0.38, 0.45], [0.5, 0.53, 0.58]),
        (_, Weather::Snowy) => ([0.72, 0.73, 0.76], [0.85, 0.85, 0.88]),
        (_, Weather::Foggy) => ([0.65, 0.65, 0.67], [0.72, 0.72, 0.74]),
    }
}

fn ground_color(cond: &Condition) -> [f32; 3] {
    match cond.weather {
        Weather::Snowy => [0.82, 0.83, 0.86],
        Weather::Rainy => [0.2, 0.21, 0.24],
        _ => [0.3, 0.29, 0.27],
    }
}

fn road_color(cond: &Condition) -> [f32; 3] {
    match cond.weather {
        Weather::Snowy => [0.55, 0.56, 0.6],
        Weather::Rainy => [0.14, 0.15, 0.19],
        _ => [0.2, 0.2, 0.22],
    }
}

fn building_color(cond: &Condition) -> [f32; 3] {
    if cond.time == TimeOfDay::Night {
        [0.05, 0.05, 0.08]
    } else {
        [0.35, 0.33, 0.32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen() -> SceneGen {
        SceneGen::default()
    }

    #[test]
    fn frame_shape_and_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let f = gen().frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day));
        assert_eq!(f.image.channels(), 3);
        assert_eq!(f.image.height(), DEFAULT_FRAME_SIZE);
        for b in &f.boxes {
            assert!(b.x >= -1.0 && b.y >= -1.0, "box origin negative: {b:?}");
            assert!(b.w > 0.0 && b.h > 0.0, "degenerate box: {b:?}");
            assert!(b.x + b.w <= DEFAULT_FRAME_SIZE as f32 + 1.0, "box overflows: {b:?}");
        }
    }

    #[test]
    fn night_is_darker_than_day() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen();
        let day: f32 = (0..10)
            .map(|_| {
                g.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day))
                    .image
                    .mean_brightness()
            })
            .sum::<f32>()
            / 10.0;
        let night: f32 = (0..10)
            .map(|_| {
                g.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Night))
                    .image
                    .mean_brightness()
            })
            .sum::<f32>()
            / 10.0;
        assert!(night < day * 0.5, "night {night} should be much darker than day {day}");
    }

    #[test]
    fn snow_is_brighter_than_rain() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen();
        let snow = g
            .frame(&mut rng, Condition::new(Weather::Snowy, TimeOfDay::Day))
            .image
            .mean_brightness();
        let rain = g
            .frame(&mut rng, Condition::new(Weather::Rainy, TimeOfDay::Day))
            .image
            .mean_brightness();
        assert!(snow > rain, "snow {snow} should be brighter than rain {rain}");
    }

    #[test]
    fn fog_reduces_contrast() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen();
        let contrast = |img: &Image| {
            let m = img.mean_brightness();
            img.data().iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / img.numel() as f32
        };
        let clear: f32 = (0..8)
            .map(|_| {
                contrast(&g.frame(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day)).image)
            })
            .sum::<f32>()
            / 8.0;
        let fog: f32 = (0..8)
            .map(|_| {
                contrast(&g.frame(&mut rng, Condition::new(Weather::Foggy, TimeOfDay::Day)).image)
            })
            .sum::<f32>()
            / 8.0;
        assert!(fog < clear, "fog variance {fog} should be below clear {clear}");
    }

    #[test]
    fn frames_have_objects() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen();
        let total: usize = (0..20)
            .map(|_| {
                let cond = Subset::Full.sample_condition(&mut rng);
                g.frame(&mut rng, cond).boxes.len()
            })
            .sum();
        assert!(total >= 20, "expected at least one object per frame on average, got {total}/20");
    }

    #[test]
    fn subset_frames_respect_subset() {
        let mut rng = StdRng::seed_from_u64(5);
        let frames = gen().subset_frames(&mut rng, Subset::Night, 10);
        assert!(frames.iter().all(|f| f.cond.time == TimeOfDay::Night));
    }

    #[test]
    fn iou_basics() {
        let a = GtBox { class: ObjectClass::Car, x: 0.0, y: 0.0, w: 10.0, h: 10.0 };
        let b = GtBox { class: ObjectClass::Car, x: 5.0, y: 5.0, w: 10.0, h: 10.0 };
        let c = GtBox { class: ObjectClass::Car, x: 20.0, y: 20.0, w: 5.0, h: 5.0 };
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-5);
        assert_eq!(a.iou(&c), 0.0);
    }

    #[test]
    fn class_index_roundtrip() {
        for (i, c) in ObjectClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(ObjectClass::from_index(i), *c);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen();
        let cond = Condition::new(Weather::Clear, TimeOfDay::Day);
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        let f1 = g.frame(&mut r1, cond);
        let f2 = g.frame(&mut r2, cond);
        assert_eq!(f1.image.data(), f2.image.data());
        assert_eq!(f1.boxes.len(), f2.boxes.len());
    }

    #[test]
    #[should_panic(expected = "frame size must be at least 32")]
    fn tiny_frames_rejected() {
        let _ = SceneGen::new(16);
    }
}

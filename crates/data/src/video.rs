//! Temporally coherent video clips.
//!
//! ODIN processes *video*; consecutive frames share scenery and objects
//! that move smoothly. [`ClipGen`] renders clips by sampling persistent
//! [`ObjectSpec`]s with per-object velocities and advancing them frame by
//! frame over a fixed background, while weather effects and sensor noise
//! stay per-frame. This matters to drift detection: consecutive latents
//! are correlated, exactly the regime the temporary cluster's KL
//! stability test (§4.1) must cope with.

use rand::rngs::StdRng;
use rand::Rng;

use crate::bdd::{Frame, ObjectSpec, SceneGen};
use crate::condition::Condition;
use crate::ObjectClass;

/// A generator of temporally coherent clips.
#[derive(Debug, Clone, Copy)]
pub struct ClipGen {
    scene: SceneGen,
}

/// One animated object: its spec plus horizontal/depth velocities.
#[derive(Debug, Clone, Copy)]
struct Track {
    spec: ObjectSpec,
    /// Horizontal velocity in x-fraction per frame.
    vx: f32,
    /// Depth velocity per frame (objects approach or recede).
    vd: f32,
}

impl ClipGen {
    /// Wraps a scene generator.
    pub fn new(scene: SceneGen) -> Self {
        ClipGen { scene }
    }

    /// The underlying scene generator.
    pub fn scene(&self) -> &SceneGen {
        &self.scene
    }

    /// Renders a clip of `len` frames under one condition. Objects are
    /// persistent across frames: vehicles drive, pedestrians walk,
    /// lights and signs stay put while the ego camera's noise/weather
    /// vary per frame.
    pub fn clip(&self, rng: &mut StdRng, cond: Condition, len: usize) -> Vec<Frame> {
        assert!(len > 0, "clip length must be positive");
        let n_objects = rng.gen_range(2..=5);
        let mut tracks: Vec<Track> = (0..n_objects)
            .map(|_| {
                let spec = self.scene.sample_spec(rng, cond.location);
                let (vx, vd) = match spec.class {
                    ObjectClass::Car | ObjectClass::Truck => {
                        (rng.gen_range(-0.03..0.03f32), rng.gen_range(-0.01..0.01f32))
                    }
                    ObjectClass::Person => (rng.gen_range(-0.008..0.008f32), 0.0),
                    ObjectClass::TrafficLight | ObjectClass::Sign => (0.0, 0.0),
                };
                Track { spec, vx, vd }
            })
            .collect();
        let bg_seed: u64 = rng.gen();

        let mut frames = Vec::with_capacity(len);
        for _ in 0..len {
            let specs: Vec<ObjectSpec> = tracks.iter().map(|t| t.spec).collect();
            frames.push(self.scene.frame_with_specs(bg_seed, rng, cond, &specs));
            for t in &mut tracks {
                t.spec.x_frac = (t.spec.x_frac + t.vx).clamp(0.0, 1.0);
                t.spec.depth = (t.spec.depth + t.vd).clamp(0.3, 0.95);
                // Bounce at the road edges so objects stay in frame.
                if t.spec.x_frac <= 0.0 || t.spec.x_frac >= 1.0 {
                    t.vx = -t.vx;
                }
            }
        }
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{TimeOfDay, Weather};
    use rand::SeedableRng;

    fn clipgen() -> ClipGen {
        ClipGen::new(SceneGen::new(48))
    }

    fn pixel_l1(a: &Frame, b: &Frame) -> f32 {
        a.image.data().iter().zip(b.image.data()).map(|(x, y)| (x - y).abs()).sum::<f32>()
            / a.image.numel() as f32
    }

    #[test]
    fn clip_has_requested_length_and_constant_condition() {
        let mut rng = StdRng::seed_from_u64(0);
        let cond = Condition::new(Weather::Clear, TimeOfDay::Day);
        let clip = clipgen().clip(&mut rng, cond, 8);
        assert_eq!(clip.len(), 8);
        assert!(clip.iter().all(|f| f.cond == cond));
    }

    #[test]
    fn consecutive_frames_are_more_similar_than_independent_ones() {
        let mut rng = StdRng::seed_from_u64(1);
        let cond = Condition::new(Weather::Clear, TimeOfDay::Day);
        let gen = clipgen();
        let clip = gen.clip(&mut rng, cond, 6);
        let within: f32 = (0..5).map(|i| pixel_l1(&clip[i], &clip[i + 1])).sum::<f32>() / 5.0;
        let other = gen.clip(&mut rng, cond, 1);
        let across = pixel_l1(&clip[0], &other[0]);
        assert!(
            within < across * 0.8,
            "temporal coherence missing: within {within}, across {across}"
        );
    }

    #[test]
    fn objects_persist_across_frames() {
        let mut rng = StdRng::seed_from_u64(2);
        let cond = Condition::new(Weather::Clear, TimeOfDay::Day);
        let clip = clipgen().clip(&mut rng, cond, 5);
        let n0 = clip[0].boxes.len();
        assert!(n0 > 0);
        for f in &clip {
            assert_eq!(f.boxes.len(), n0, "object count changed mid-clip");
        }
        // Class sequence is stable too.
        for i in 0..n0 {
            let class = clip[0].boxes[i].class;
            assert!(clip.iter().all(|f| f.boxes[i].class == class));
        }
    }

    #[test]
    fn vehicles_actually_move() {
        let mut rng = StdRng::seed_from_u64(3);
        let cond = Condition::new(Weather::Clear, TimeOfDay::Day);
        let clip = clipgen().clip(&mut rng, cond, 12);
        let moved =
            clip[0].boxes.iter().zip(clip[11].boxes.iter()).any(|(a, b)| (a.x - b.x).abs() > 1.0);
        assert!(moved, "nothing moved over 12 frames");
    }

    #[test]
    fn boxes_stay_in_frame() {
        let mut rng = StdRng::seed_from_u64(4);
        let cond = Condition::new(Weather::Rainy, TimeOfDay::Day);
        for f in clipgen().clip(&mut rng, cond, 20) {
            for b in &f.boxes {
                assert!(b.x >= -1.0 && b.x + b.w <= 49.0, "box left frame: {b:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "clip length must be positive")]
    fn zero_length_clip_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = clipgen().clip(&mut rng, Condition::new(Weather::Clear, TimeOfDay::Day), 0);
    }
}

//! A small raster-image type with the drawing primitives the procedural
//! generators need.
//!
//! Pixels are `f32` in `[0, 1]`, stored channel-major (`[C, H, W]`), which
//! converts to a network input tensor without copying semantics changes.

use odin_tensor::Tensor;

/// An RGB or grayscale raster image with pixels in `[0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a black image.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(channels == 1 || channels == 3, "only 1- or 3-channel images");
        Image { channels, height, width, data: vec![0.0; channels * height * width] }
    }

    /// Number of channels (1 or 3).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of scalar values (`C*H*W`).
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Raw pixel buffer (channel-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Reads a pixel channel value.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Writes a pixel channel value (clamped to `[0, 1]`).
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.data[(c * self.height + y) * self.width + x] = v.clamp(0.0, 1.0);
    }

    /// Sets all channels of a pixel from an RGB triple (grayscale images
    /// take the mean).
    #[inline]
    pub fn set_rgb(&mut self, y: usize, x: usize, rgb: [f32; 3]) {
        if self.channels == 3 {
            for (c, &v) in rgb.iter().enumerate() {
                self.set(c, y, x, v);
            }
        } else {
            self.set(0, y, x, (rgb[0] + rgb[1] + rgb[2]) / 3.0);
        }
    }

    /// Blends a color into a pixel: `p = (1-a)·p + a·rgb`.
    #[inline]
    pub fn blend_rgb(&mut self, y: usize, x: usize, rgb: [f32; 3], alpha: f32) {
        let a = alpha.clamp(0.0, 1.0);
        if self.channels == 3 {
            for (c, &v) in rgb.iter().enumerate() {
                let old = self.get(c, y, x);
                self.set(c, y, x, old * (1.0 - a) + v * a);
            }
        } else {
            let v = (rgb[0] + rgb[1] + rgb[2]) / 3.0;
            let old = self.get(0, y, x);
            self.set(0, y, x, old * (1.0 - a) + v * a);
        }
    }

    /// Fills an axis-aligned rectangle (clipped to the image bounds).
    pub fn fill_rect(&mut self, y0: isize, x0: isize, h: usize, w: usize, rgb: [f32; 3]) {
        for dy in 0..h as isize {
            let y = y0 + dy;
            if y < 0 || y >= self.height as isize {
                continue;
            }
            for dx in 0..w as isize {
                let x = x0 + dx;
                if x < 0 || x >= self.width as isize {
                    continue;
                }
                self.set_rgb(y as usize, x as usize, rgb);
            }
        }
    }

    /// Blends a rectangle with alpha (clipped).
    pub fn blend_rect(
        &mut self,
        y0: isize,
        x0: isize,
        h: usize,
        w: usize,
        rgb: [f32; 3],
        alpha: f32,
    ) {
        for dy in 0..h as isize {
            let y = y0 + dy;
            if y < 0 || y >= self.height as isize {
                continue;
            }
            for dx in 0..w as isize {
                let x = x0 + dx;
                if x < 0 || x >= self.width as isize {
                    continue;
                }
                self.blend_rgb(y as usize, x as usize, rgb, alpha);
            }
        }
    }

    /// Draws a thick line segment by stamping squares along it.
    pub fn draw_line(
        &mut self,
        y0: f32,
        x0: f32,
        y1: f32,
        x1: f32,
        thickness: usize,
        rgb: [f32; 3],
    ) {
        let steps = ((y1 - y0).abs().max((x1 - x0).abs()).ceil() as usize).max(1) * 2;
        let t = thickness as isize;
        for s in 0..=steps {
            let f = s as f32 / steps as f32;
            let y = y0 + (y1 - y0) * f;
            let x = x0 + (x1 - x0) * f;
            self.fill_rect(
                y.round() as isize - t / 2,
                x.round() as isize - t / 2,
                thickness,
                thickness,
                rgb,
            );
        }
    }

    /// Fills the whole image with a vertical gradient from `top` to
    /// `bottom` over rows `[0, rows)`.
    pub fn vertical_gradient(&mut self, rows: usize, top: [f32; 3], bottom: [f32; 3]) {
        let rows = rows.min(self.height);
        for y in 0..rows {
            let f = if rows > 1 { y as f32 / (rows - 1) as f32 } else { 0.0 };
            let rgb = [
                top[0] + (bottom[0] - top[0]) * f,
                top[1] + (bottom[1] - top[1]) * f,
                top[2] + (bottom[2] - top[2]) * f,
            ];
            for x in 0..self.width {
                self.set_rgb(y, x, rgb);
            }
        }
    }

    /// Multiplies every pixel by a scalar (global brightness).
    pub fn scale_brightness(&mut self, factor: f32) {
        for v in &mut self.data {
            *v = (*v * factor).clamp(0.0, 1.0);
        }
    }

    /// Blends the whole image toward a color: `p = (1-a)·p + a·rgb`
    /// (fog/haze).
    pub fn wash(&mut self, rgb: [f32; 3], alpha: f32) {
        let a = alpha.clamp(0.0, 1.0);
        for c in 0..self.channels {
            let target = if self.channels == 3 { rgb[c] } else { (rgb[0] + rgb[1] + rgb[2]) / 3.0 };
            let plane =
                &mut self.data[c * self.height * self.width..(c + 1) * self.height * self.width];
            for v in plane {
                *v = *v * (1.0 - a) + target * a;
            }
        }
    }

    /// Converts to a `[C, H, W]` tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &[self.channels, self.height, self.width])
    }

    /// Converts to a `[1, C, H, W]` batch tensor.
    pub fn to_batch_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &[1, self.channels, self.height, self.width])
    }

    /// Builds an image back from a `[C, H, W]` tensor, clamping to `[0,1]`.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.ndim(), 3, "Image::from_tensor expects [C, H, W]");
        let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
        assert!(c == 1 || c == 3, "only 1- or 3-channel images");
        Image {
            channels: c,
            height: h,
            width: w,
            data: t.data().iter().map(|&v| v.clamp(0.0, 1.0)).collect(),
        }
    }

    /// Stacks a slice of images into a `[B, C, H, W]` batch tensor.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty or shapes differ.
    pub fn batch(images: &[Image]) -> Tensor {
        assert!(!images.is_empty(), "cannot batch zero images");
        let (c, h, w) = (images[0].channels, images[0].height, images[0].width);
        let mut data = Vec::with_capacity(images.len() * c * h * w);
        for img in images {
            assert_eq!((img.channels, img.height, img.width), (c, h, w), "image shape mismatch");
            data.extend_from_slice(&img.data);
        }
        Tensor::from_vec(data, &[images.len(), c, h, w])
    }

    /// Nearest-neighbour resize to `h`×`w`.
    ///
    /// Used to standardize generative-model inputs (e.g. 28×28 digits to a
    /// 32×32 encoder grid).
    pub fn resize_nearest(&self, h: usize, w: usize) -> Image {
        assert!(h > 0 && w > 0, "resize target must be non-empty");
        let mut out = Image::new(self.channels, h, w);
        for c in 0..self.channels {
            for y in 0..h {
                let sy = (y * self.height / h).min(self.height - 1);
                for x in 0..w {
                    let sx = (x * self.width / w).min(self.width - 1);
                    out.set(c, y, x, self.get(c, sy, sx));
                }
            }
        }
        out
    }

    /// Mean pixel value (proxy for brightness).
    pub fn mean_brightness(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = Image::new(3, 4, 4);
        assert_eq!(img.mean_brightness(), 0.0);
        assert_eq!(img.numel(), 48);
    }

    #[test]
    fn set_clamps() {
        let mut img = Image::new(1, 2, 2);
        img.set(0, 0, 0, 5.0);
        assert_eq!(img.get(0, 0, 0), 1.0);
        img.set(0, 0, 0, -1.0);
        assert_eq!(img.get(0, 0, 0), 0.0);
    }

    #[test]
    fn fill_rect_clips_out_of_bounds() {
        let mut img = Image::new(3, 4, 4);
        img.fill_rect(-2, -2, 3, 3, [1.0, 1.0, 1.0]);
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(0, 1, 1), 0.0); // rect covers rows -2..1, cols -2..1
        assert_eq!(img.get(0, 3, 3), 0.0);
    }

    #[test]
    fn gradient_interpolates() {
        let mut img = Image::new(3, 4, 2);
        img.vertical_gradient(4, [0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert_eq!(img.get(0, 3, 0), 1.0);
        assert!(img.get(0, 1, 0) > 0.0 && img.get(0, 1, 0) < 1.0);
    }

    #[test]
    fn wash_moves_toward_target() {
        let mut img = Image::new(3, 2, 2);
        img.wash([0.6, 0.6, 0.6], 0.5);
        assert!((img.get(0, 0, 0) - 0.3).abs() < 1e-6);
    }

    #[test]
    fn brightness_scaling() {
        let mut img = Image::new(1, 2, 2);
        img.fill_rect(0, 0, 2, 2, [0.8, 0.8, 0.8]);
        img.scale_brightness(0.5);
        assert!((img.mean_brightness() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn tensor_roundtrip() {
        let mut img = Image::new(3, 3, 3);
        img.set_rgb(1, 2, [0.2, 0.4, 0.6]);
        let t = img.to_tensor();
        assert_eq!(t.shape(), &[3, 3, 3]);
        let back = Image::from_tensor(&t);
        assert_eq!(back, img);
    }

    #[test]
    fn batch_shapes() {
        let imgs = vec![Image::new(1, 2, 2); 3];
        let b = Image::batch(&imgs);
        assert_eq!(b.shape(), &[3, 1, 2, 2]);
    }

    #[test]
    fn grayscale_set_rgb_averages() {
        let mut img = Image::new(1, 1, 1);
        img.set_rgb(0, 0, [0.0, 0.5, 1.0]);
        assert!((img.get(0, 0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn resize_nearest_shapes_and_values() {
        let mut img = Image::new(1, 2, 2);
        img.set(0, 0, 0, 1.0);
        let up = img.resize_nearest(4, 4);
        assert_eq!(up.height(), 4);
        assert_eq!(up.get(0, 0, 0), 1.0);
        assert_eq!(up.get(0, 1, 1), 1.0);
        assert_eq!(up.get(0, 2, 2), 0.0);
        let down = up.resize_nearest(2, 2);
        assert_eq!(down, img);
    }

    #[test]
    fn draw_line_marks_endpoints() {
        let mut img = Image::new(1, 8, 8);
        img.draw_line(0.0, 0.0, 7.0, 7.0, 1, [1.0, 1.0, 1.0]);
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(0, 7, 7), 1.0);
    }
}

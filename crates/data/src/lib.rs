//! # odin-data
//!
//! Procedural datasets with concept-drift structure for the ODIN
//! reproduction. The paper evaluates on MNIST, CIFAR-10, and Berkeley
//! DeepDrive (BDD); this crate provides faithful synthetic stand-ins
//! (see `DESIGN.md` for the substitution argument):
//!
//! * [`digits`] — 28×28 grayscale stroke-rendered digits (MNIST role),
//! * [`cifar`] — 32×32 colored texture classes (CIFAR-10 role),
//! * [`bdd`] — dashcam scene generator with weather / time-of-day /
//!   location conditions and ground-truth object boxes (BDD role),
//! * [`stream`] — scripted drift workloads (the §6.5 sequence),
//! * [`video`] — temporally coherent clips (persistent, moving objects).
//!
//! All generation is seeded and deterministic.

#![warn(missing_docs)]

pub mod bdd;
pub mod cifar;
pub mod condition;
pub mod digits;
pub mod image;
pub mod stream;
pub mod video;

pub use bdd::{Frame, GtBox, ObjectClass, ObjectSpec, SceneGen, DEFAULT_FRAME_SIZE, NUM_CLASSES};
pub use condition::{Condition, Location, Subset, TimeOfDay, Weather};
pub use digits::LabeledImage;
pub use image::Image;
pub use stream::{DriftSchedule, Phase, RecurringSchedule, Window};
pub use video::ClipGen;

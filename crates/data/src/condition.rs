//! Environmental conditions of the BDD-sim dataset.
//!
//! The paper's BDD dataset tags each frame with a weather condition, a time
//! of day, and a location. ODIN never *reads* these labels while detecting
//! drift — they exist so experiments can check which true conditions an
//! unsupervised cluster absorbed (Table 2) and so workloads can be scripted
//! (§6.5).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Weather conditions in BDD-sim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weather {
    /// Clear skies.
    Clear,
    /// Rain: dark blue-gray cast with streaks.
    Rainy,
    /// Snow: bright ground with white speckle.
    Snowy,
    /// Fog: heavy gray wash, low contrast.
    Foggy,
    /// Overcast: flat gray sky.
    Overcast,
}

impl Weather {
    /// All weather values, in a stable order.
    pub const ALL: [Weather; 5] =
        [Weather::Clear, Weather::Rainy, Weather::Snowy, Weather::Foggy, Weather::Overcast];

    /// Short label used in printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            Weather::Clear => "clear",
            Weather::Rainy => "rainy",
            Weather::Snowy => "snowy",
            Weather::Foggy => "foggy",
            Weather::Overcast => "overcast",
        }
    }
}

/// Time of day in BDD-sim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeOfDay {
    /// Dawn/dusk: dim warm light.
    Dawn,
    /// Daytime: bright.
    Day,
    /// Night: dark, headlights and traffic lights dominate.
    Night,
}

impl TimeOfDay {
    /// All time-of-day values, in a stable order.
    pub const ALL: [TimeOfDay; 3] = [TimeOfDay::Dawn, TimeOfDay::Day, TimeOfDay::Night];

    /// Short label used in printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            TimeOfDay::Dawn => "dawn",
            TimeOfDay::Day => "day",
            TimeOfDay::Night => "night",
        }
    }
}

/// Location category in BDD-sim. The paper notes DETECTOR found location
/// unimportant for drift; the generator accordingly gives it only mild
/// visual influence (lane layout), so a faithful detector should also
/// ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// Residential streets: narrow road, houses.
    Residential,
    /// Highway: wide road, sparse surroundings.
    Highway,
    /// City streets: buildings, more objects.
    City,
    /// Anything else.
    Other,
}

impl Location {
    /// All location values, in a stable order.
    pub const ALL: [Location; 4] =
        [Location::Residential, Location::Highway, Location::City, Location::Other];
}

/// The full environmental tag of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    /// Weather condition.
    pub weather: Weather,
    /// Time of day.
    pub time: TimeOfDay,
    /// Location category.
    pub location: Location,
}

impl Condition {
    /// A convenience constructor with `Location::City`.
    pub fn new(weather: Weather, time: TimeOfDay) -> Self {
        Condition { weather, time, location: Location::City }
    }

    /// Samples a uniformly random location for this (weather, time) pair.
    pub fn with_random_location(weather: Weather, time: TimeOfDay, rng: &mut StdRng) -> Self {
        let location = Location::ALL[rng.gen_range(0..Location::ALL.len())];
        Condition { weather, time, location }
    }
}

/// The five evaluation subsets of §6.2 ("BDD Clusters").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Subset {
    /// All images.
    Full,
    /// Day-time, clear weather.
    Day,
    /// Night-time, any weather.
    Night,
    /// Rainy or overcast (non-night).
    Rain,
    /// Snowy (non-night).
    Snow,
}

impl Subset {
    /// All subsets in the order the paper's tables list them.
    pub const ALL: [Subset; 5] =
        [Subset::Full, Subset::Day, Subset::Night, Subset::Rain, Subset::Snow];

    /// The paper's name for this subset.
    pub fn label(&self) -> &'static str {
        match self {
            Subset::Full => "FULL-DATA",
            Subset::Day => "DAY-DATA",
            Subset::Night => "NIGHT-DATA",
            Subset::Rain => "RAIN-DATA",
            Subset::Snow => "SNOW-DATA",
        }
    }

    /// True if a condition belongs to this subset.
    pub fn contains(&self, cond: &Condition) -> bool {
        match self {
            Subset::Full => true,
            Subset::Day => cond.time != TimeOfDay::Night && cond.weather == Weather::Clear,
            Subset::Night => cond.time == TimeOfDay::Night,
            Subset::Rain => {
                cond.time != TimeOfDay::Night
                    && (cond.weather == Weather::Rainy || cond.weather == Weather::Overcast)
            }
            Subset::Snow => cond.time != TimeOfDay::Night && cond.weather == Weather::Snowy,
        }
    }

    /// Samples a condition from this subset with BDD-like mixture weights
    /// (clear day dominates FULL, etc.).
    pub fn sample_condition(&self, rng: &mut StdRng) -> Condition {
        loop {
            let cond = match self {
                Subset::Full => {
                    // BDD's labeled-image marginals (Table 2 header):
                    // clear 71.9%, overcast 12.5%, rainy 7.3%, snowy 7.9%,
                    // foggy 0.2%.
                    let weather = match rng.gen_range(0..1000) {
                        0..=718 => Weather::Clear,
                        719..=843 => Weather::Overcast,
                        844..=916 => Weather::Rainy,
                        917..=996 => Weather::Snowy,
                        _ => Weather::Foggy,
                    };
                    let time = match rng.gen_range(0..100) {
                        0..=7 => TimeOfDay::Dawn,
                        8..=55 => TimeOfDay::Day,
                        _ => TimeOfDay::Night,
                    };
                    Condition::with_random_location(weather, time, rng)
                }
                Subset::Day => {
                    let time = if rng.gen_bool(0.12) { TimeOfDay::Dawn } else { TimeOfDay::Day };
                    Condition::with_random_location(Weather::Clear, time, rng)
                }
                Subset::Night => {
                    let weather = Weather::ALL[rng.gen_range(0..Weather::ALL.len())];
                    Condition::with_random_location(weather, TimeOfDay::Night, rng)
                }
                Subset::Rain => {
                    let weather =
                        if rng.gen_bool(0.5) { Weather::Rainy } else { Weather::Overcast };
                    let time = if rng.gen_bool(0.2) { TimeOfDay::Dawn } else { TimeOfDay::Day };
                    Condition::with_random_location(weather, time, rng)
                }
                Subset::Snow => {
                    let time = if rng.gen_bool(0.2) { TimeOfDay::Dawn } else { TimeOfDay::Day };
                    Condition::with_random_location(Weather::Snowy, time, rng)
                }
            };
            if self.contains(&cond) {
                return cond;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn subsets_contain_their_samples() {
        let mut rng = StdRng::seed_from_u64(0);
        for subset in Subset::ALL {
            for _ in 0..200 {
                let cond = subset.sample_condition(&mut rng);
                assert!(subset.contains(&cond), "{subset:?} produced {cond:?}");
            }
        }
    }

    #[test]
    fn day_and_night_are_disjoint() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = Subset::Day.sample_condition(&mut rng);
            assert!(!Subset::Night.contains(&c));
            let n = Subset::Night.sample_condition(&mut rng);
            assert!(!Subset::Day.contains(&n));
        }
    }

    #[test]
    fn full_contains_everything() {
        for &w in &Weather::ALL {
            for &t in &TimeOfDay::ALL {
                assert!(Subset::Full.contains(&Condition::new(w, t)));
            }
        }
    }

    #[test]
    fn full_marginals_are_bdd_like() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5000;
        let mut clear = 0;
        let mut night = 0;
        for _ in 0..n {
            let c = Subset::Full.sample_condition(&mut rng);
            if c.weather == Weather::Clear {
                clear += 1;
            }
            if c.time == TimeOfDay::Night {
                night += 1;
            }
        }
        let clear_frac = clear as f32 / n as f32;
        let night_frac = night as f32 / n as f32;
        assert!(clear_frac > 0.6 && clear_frac < 0.8, "clear fraction {clear_frac}");
        assert!(night_frac > 0.3 && night_frac < 0.6, "night fraction {night_frac}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Subset::Night.label(), "NIGHT-DATA");
        assert_eq!(Weather::Snowy.label(), "snowy");
        assert_eq!(TimeOfDay::Dawn.label(), "dawn");
    }
}

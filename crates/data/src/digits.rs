//! A procedural stand-in for MNIST.
//!
//! Each digit class is a set of stroke polylines on the unit square,
//! rendered at 28×28 with random translation, scaling, per-point jitter,
//! and pixel noise. Like MNIST, classes are visually distinct but noisy,
//! which is all the drift-detection experiments (§6.2, Table 1) need:
//! a "known classes vs outlier classes" corpus at low dimensionality.

use rand::rngs::StdRng;
use rand::Rng;

use crate::image::Image;

/// Image side length (matches MNIST).
pub const DIGIT_SIZE: usize = 28;

/// A grayscale image with its class label.
#[derive(Clone, Debug)]
pub struct LabeledImage {
    /// The rendered image.
    pub image: Image,
    /// Class label (digit 0–9 or CIFAR-sim class 0–9).
    pub label: u8,
}

/// Stroke templates per digit: polylines in unit coordinates `(x, y)`,
/// y pointing down.
fn strokes(digit: u8) -> &'static [&'static [(f32, f32)]] {
    match digit {
        0 => &[&[(0.3, 0.2), (0.7, 0.2), (0.7, 0.8), (0.3, 0.8), (0.3, 0.2)]],
        1 => &[&[(0.4, 0.3), (0.55, 0.2), (0.55, 0.8)], &[(0.4, 0.8), (0.7, 0.8)]],
        2 => &[&[(0.3, 0.3), (0.5, 0.2), (0.7, 0.3), (0.7, 0.45), (0.3, 0.8), (0.7, 0.8)]],
        3 => &[
            &[(0.3, 0.2), (0.7, 0.2), (0.7, 0.5), (0.45, 0.5)],
            &[(0.7, 0.5), (0.7, 0.8), (0.3, 0.8)],
        ],
        4 => &[&[(0.35, 0.2), (0.3, 0.55), (0.7, 0.55)], &[(0.62, 0.2), (0.62, 0.8)]],
        5 => &[&[(0.7, 0.2), (0.3, 0.2), (0.3, 0.5), (0.7, 0.5), (0.7, 0.8), (0.3, 0.8)]],
        6 => &[&[
            (0.6, 0.2),
            (0.35, 0.45),
            (0.3, 0.65),
            (0.5, 0.8),
            (0.7, 0.65),
            (0.55, 0.5),
            (0.35, 0.55),
        ]],
        7 => &[&[(0.3, 0.2), (0.7, 0.2), (0.42, 0.8)]],
        8 => &[
            &[(0.3, 0.2), (0.7, 0.2), (0.7, 0.5), (0.3, 0.5), (0.3, 0.2)],
            &[(0.3, 0.5), (0.7, 0.5), (0.7, 0.8), (0.3, 0.8), (0.3, 0.5)],
        ],
        9 => &[
            &[(0.3, 0.2), (0.7, 0.2), (0.7, 0.5), (0.3, 0.5), (0.3, 0.2)],
            &[(0.7, 0.5), (0.62, 0.8)],
        ],
        _ => panic!("digit class must be 0-9, got {digit}"),
    }
}

/// Renders one digit with MNIST-like style variation: random rotation,
/// shear, anisotropic scale, translation, stroke thickness, per-point
/// jitter, and pixel noise. The style variation makes the class manifold
/// *nonlinear* — like handwriting — which is what defeats linear
/// detectors (PCA) in the paper's Table 1.
pub fn gen_digit(rng: &mut StdRng, digit: u8) -> Image {
    let mut img = Image::new(1, DIGIT_SIZE, DIGIT_SIZE);
    let sx = rng.gen_range(0.82..1.12) * DIGIT_SIZE as f32;
    let sy = rng.gen_range(0.82..1.12) * DIGIT_SIZE as f32;
    let theta: f32 = rng.gen_range(-0.16..0.16); // ±9° rotation
    let shear: f32 = rng.gen_range(-0.15..0.15);
    let (cos_t, sin_t) = (theta.cos(), theta.sin());
    let off_x = rng.gen_range(-2.0..2.0) + DIGIT_SIZE as f32 / 2.0;
    let off_y = rng.gen_range(-2.0..2.0) + DIGIT_SIZE as f32 / 2.0;
    let thickness = rng.gen_range(2..=3);
    let jitter = 0.025;
    for stroke in strokes(digit) {
        let pts: Vec<(f32, f32)> = stroke
            .iter()
            .map(|&(x, y)| {
                // Center, jitter, scale anisotropically, shear, rotate,
                // translate back.
                let cx = (x - 0.5 + rng.gen_range(-jitter..jitter)) * sx;
                let cy = (y - 0.5 + rng.gen_range(-jitter..jitter)) * sy;
                let cx = cx + shear * cy;
                (cos_t * cx - sin_t * cy + off_x, sin_t * cx + cos_t * cy + off_y)
            })
            .collect();
        for pair in pts.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            img.draw_line(y0, x0, y1, x1, thickness, [1.0, 1.0, 1.0]);
        }
    }
    // Pixel noise, like scanner grain.
    for y in 0..DIGIT_SIZE {
        for x in 0..DIGIT_SIZE {
            let n: f32 = rng.gen_range(-0.05..0.05);
            let v = img.get(0, y, x) + n;
            img.set(0, y, x, v);
        }
    }
    img
}

/// Generates `per_class` samples for each class in `classes`.
pub fn digit_dataset(rng: &mut StdRng, classes: &[u8], per_class: usize) -> Vec<LabeledImage> {
    let mut out = Vec::with_capacity(classes.len() * per_class);
    for &c in classes {
        for _ in 0..per_class {
            out.push(LabeledImage { image: gen_digit(rng, c), label: c });
        }
    }
    out
}

/// A test corpus mixing inliers (from `known`) and outliers (from
/// `unknown`) at the given outlier fraction — the workload of Table 1.
///
/// Returns `(image, is_outlier)` pairs in random order.
pub fn outlier_mix(
    rng: &mut StdRng,
    known: &[u8],
    unknown: &[u8],
    total: usize,
    outlier_frac: f32,
    gen: impl Fn(&mut StdRng, u8) -> Image,
) -> Vec<(Image, bool)> {
    assert!(!known.is_empty(), "need at least one known class");
    assert!((0.0..=1.0).contains(&outlier_frac), "outlier fraction must be in [0,1]");
    assert!(
        outlier_frac == 0.0 || !unknown.is_empty(),
        "outliers requested but no unknown classes"
    );
    let n_out = (total as f32 * outlier_frac).round() as usize;
    let mut items = Vec::with_capacity(total);
    for _ in 0..total - n_out {
        let c = known[rng.gen_range(0..known.len())];
        items.push((gen(rng, c), false));
    }
    for _ in 0..n_out {
        let c = unknown[rng.gen_range(0..unknown.len())];
        items.push((gen(rng, c), true));
    }
    // Fisher–Yates shuffle for a mixed stream.
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn digits_have_ink() {
        let mut rng = StdRng::seed_from_u64(0);
        for d in 0..10u8 {
            let img = gen_digit(&mut rng, d);
            assert!(img.mean_brightness() > 0.02, "digit {d} looks empty");
            assert!(img.mean_brightness() < 0.5, "digit {d} looks full");
        }
    }

    #[test]
    fn same_class_more_similar_than_cross_class() {
        // Average L2 distance between two 0s should be well below the
        // distance between a 0 and an 8 batch-averaged.
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20;
        let zeros: Vec<Image> = (0..n).map(|_| gen_digit(&mut rng, 0)).collect();
        let ones: Vec<Image> = (0..n).map(|_| gen_digit(&mut rng, 1)).collect();
        let avg = |imgs: &[Image]| {
            let mut acc = vec![0.0f32; imgs[0].numel()];
            for im in imgs {
                for (a, &v) in acc.iter_mut().zip(im.data()) {
                    *a += v / imgs.len() as f32;
                }
            }
            acc
        };
        let a0 = avg(&zeros);
        let a1 = avg(&ones);
        let inter: f32 = a0.iter().zip(&a1).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!(inter > 1.0, "class templates should differ, got {inter}");
    }

    #[test]
    fn dataset_counts_and_labels() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = digit_dataset(&mut rng, &[0, 1, 2], 5);
        assert_eq!(ds.len(), 15);
        assert_eq!(ds.iter().filter(|s| s.label == 2).count(), 5);
    }

    #[test]
    fn outlier_mix_fraction_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mix = outlier_mix(&mut rng, &[0, 1], &[8, 9], 100, 0.3, gen_digit);
        let outliers = mix.iter().filter(|(_, o)| *o).count();
        assert_eq!(outliers, 30);
        assert_eq!(mix.len(), 100);
    }

    #[test]
    fn outlier_mix_zero_fraction_has_no_outliers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mix = outlier_mix(&mut rng, &[0], &[9], 50, 0.0, gen_digit);
        assert!(mix.iter().all(|(_, o)| !o));
    }

    #[test]
    #[should_panic(expected = "digit class must be 0-9")]
    fn invalid_digit_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = gen_digit(&mut rng, 10);
    }
}

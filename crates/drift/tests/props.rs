//! Property-based tests for the drift-detection invariants.

use odin_drift::kl::{kl_divergence, DistanceHistogram};
use odin_drift::{ClusterManager, DeltaBand, ManagerConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equation 1: the fitted band holds at least a Δ fraction of mass.
    #[test]
    fn band_mass_meets_delta(
        ds in prop::collection::vec(0.0f32..10.0, 1..200),
        delta in 0.05f32..1.0,
    ) {
        let band = DeltaBand::fit(&ds, delta);
        prop_assert!(band.lower <= band.upper);
        prop_assert!(band.mass(&ds) >= delta - 1e-6,
            "mass {} below delta {}", band.mass(&ds), delta);
    }

    /// The fitted band is never wider than the full data range.
    #[test]
    fn band_within_data_range(ds in prop::collection::vec(0.0f32..10.0, 2..100)) {
        let band = DeltaBand::fit(&ds, 0.75);
        let lo = ds.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = ds.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(band.lower >= lo);
        prop_assert!(band.upper <= hi);
    }

    /// Raising Δ never shrinks the minimal window.
    #[test]
    fn band_width_monotone_in_delta(ds in prop::collection::vec(0.0f32..10.0, 5..100)) {
        let narrow = DeltaBand::fit(&ds, 0.4);
        let wide = DeltaBand::fit(&ds, 0.9);
        prop_assert!(wide.width() >= narrow.width() - 1e-6);
    }

    /// Gibbs' inequality: KL divergence of valid distributions is ≥ 0.
    #[test]
    fn kl_nonnegative(raw in prop::collection::vec(0.01f64..1.0, 2..32)) {
        let sum_a: f64 = raw.iter().sum();
        let pa: Vec<f64> = raw.iter().map(|x| x / sum_a).collect();
        let rev: Vec<f64> = raw.iter().rev().cloned().collect();
        let sum_b: f64 = rev.iter().sum();
        let pb: Vec<f64> = rev.iter().map(|x| x / sum_b).collect();
        prop_assert!(kl_divergence(&pa, &pb) >= -1e-9);
        prop_assert!((kl_divergence(&pa, &pa)).abs() < 1e-12);
    }

    /// Histogram probabilities always form a distribution.
    #[test]
    fn histogram_is_distribution(ds in prop::collection::vec(-5.0f32..20.0, 0..100)) {
        let mut h = DistanceHistogram::new(0.0, 10.0, 16);
        for d in &ds {
            h.add(*d);
        }
        let p = h.probabilities();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x > 0.0));
    }

    /// The manager accounts for every observed point: seen = assigned +
    /// temp + points inside promoted clusters.
    #[test]
    fn manager_conserves_points(
        centers in prop::collection::vec(-20.0f32..20.0, 1..4),
        per in 30usize..60,
    ) {
        let cfg = ManagerConfig { min_points: 15, stable_window: 4, kl_eps: 5e-3, ..ManagerConfig::default() };
        let mut m = ClusterManager::new(cfg);
        let mut total = 0usize;
        for (s, &c) in centers.iter().enumerate() {
            for i in 0..per {
                let z: Vec<f32> = (0..6)
                    .map(|j| c + ((i * 7 + j * 13 + s) as f32).sin())
                    .collect();
                let _ = m.observe(&z);
                total += 1;
            }
        }
        prop_assert_eq!(m.seen(), total);
        let clustered: usize = m.clusters().iter().map(|c| c.size()).sum();
        prop_assert!(clustered + m.temp_len() <= total);
        // Events are ordered by stream position.
        let ats: Vec<usize> = m.events().iter().map(|e| e.at).collect();
        prop_assert!(ats.windows(2).all(|w| w[0] <= w[1]));
    }
}

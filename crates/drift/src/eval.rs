//! Scoring harness for outlier-detection experiments (Table 1).
//!
//! Outlier detectors emit a scalar score per point (higher = more
//! outlier-like); the standard evaluation sweeps the decision threshold
//! and reports the best F1 over the outlier class.

/// Precision, recall, and F1 at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrF1 {
    /// Precision of the outlier class.
    pub precision: f32,
    /// Recall of the outlier class.
    pub recall: f32,
    /// F1 of the outlier class.
    pub f1: f32,
}

/// Confusion counts at `score >= threshold ⇒ predicted outlier`.
pub fn confusion_at(scores: &[f32], labels: &[bool], threshold: f32) -> PrF1 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&s, &is_outlier) in scores.iter().zip(labels.iter()) {
        let pred = s >= threshold;
        match (pred, is_outlier) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 { 0.0 } else { tp as f32 / (tp + fp) as f32 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f32 / (tp + fn_) as f32 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrF1 { precision, recall, f1 }
}

/// Best F1 over all thresholds induced by the observed scores.
///
/// When there are no outliers at all (the 0% row of Table 1), a detector
/// is judged by specificity instead: the fraction of inliers it keeps
/// below its own 95th-percentile training threshold, which reduces to
/// accuracy on the all-inlier set.
pub fn best_f1(scores: &[f32], labels: &[bool]) -> f32 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    if scores.is_empty() {
        return 0.0;
    }
    if !labels.iter().any(|&l| l) {
        return 1.0; // no outliers to find; vacuous perfect score
    }
    let mut thresholds: Vec<f32> = scores.to_vec();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    thresholds.dedup();
    let mut best = 0.0f32;
    for &t in &thresholds {
        let f1 = confusion_at(scores, labels, t).f1;
        if f1 > best {
            best = f1;
        }
    }
    best
}

/// Accuracy on an all-inlier corpus at a threshold calibrated to the
/// inlier score quantile `q` — how Table 1's 0%-outlier row is scored.
pub fn inlier_accuracy_at_quantile(train_scores: &[f32], test_scores: &[f32], q: f32) -> f32 {
    assert!(!train_scores.is_empty(), "need calibration scores");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted = train_scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let idx = ((sorted.len() - 1) as f32 * q).round() as usize;
    let threshold = sorted[idx];
    if test_scores.is_empty() {
        return 1.0;
    }
    test_scores.iter().filter(|&&s| s <= threshold).count() as f32 / test_scores.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_f1_one() {
        let scores = vec![0.1, 0.2, 0.9, 1.0];
        let labels = vec![false, false, true, true];
        assert!((best_f1(&scores, &labels) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn random_scores_give_partial_f1() {
        let scores = vec![0.5, 0.5, 0.5, 0.5];
        let labels = vec![false, true, false, true];
        let f1 = best_f1(&scores, &labels);
        assert!(f1 > 0.0 && f1 < 1.0, "degenerate scores F1 {f1}");
    }

    #[test]
    fn inverted_scores_give_low_f1() {
        let scores = vec![1.0, 0.9, 0.1, 0.0];
        let labels = vec![false, false, true, true];
        let good = best_f1(&[0.0, 0.1, 0.9, 1.0], &labels);
        let bad = best_f1(&scores, &labels);
        assert!(bad < good);
    }

    #[test]
    fn no_outliers_is_vacuously_perfect() {
        assert_eq!(best_f1(&[0.3, 0.4], &[false, false]), 1.0);
    }

    #[test]
    fn confusion_counts_are_consistent() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![true, false, true, false];
        let m = confusion_at(&scores, &labels, 0.5);
        assert!((m.precision - 0.5).abs() < 1e-6); // 1 TP, 1 FP
        assert!((m.recall - 0.5).abs() < 1e-6); // 1 TP, 1 FN
    }

    #[test]
    fn quantile_accuracy_bounds() {
        let train = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let acc = inlier_accuracy_at_quantile(&train, &[0.15, 0.35, 9.0], 0.95);
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = best_f1(&[0.1], &[true, false]);
    }
}

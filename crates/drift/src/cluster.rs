//! Cluster state: centroid, point reservoir, Δ-band, and distance
//! distribution.

use serde::{Deserialize, Serialize};

use crate::band::DeltaBand;
use crate::kl::{histogram_kl, DistanceHistogram};

/// Refit the band/centroid after this many inserts into a permanent
/// cluster (amortizes the O(n log n) band fit).
const REFIT_EVERY: usize = 16;

/// Euclidean distance between two latent vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "latent dimensionality mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// A permanent cluster in latent space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    id: usize,
    centroid: Vec<f32>,
    /// Capped reservoir of member latents (overwritten round-robin once
    /// full) used for band refits.
    points: Vec<Vec<f32>>,
    band: DeltaBand,
    n_total: usize,
    since_refit: usize,
    cap: usize,
    delta: f32,
}

impl Cluster {
    /// Builds a cluster from an initial point set.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn from_points(id: usize, points: Vec<Vec<f32>>, delta: f32, cap: usize) -> Self {
        assert!(!points.is_empty(), "cluster needs at least one point");
        let centroid = centroid_of(&points);
        let distances: Vec<f32> = points.iter().map(|p| euclidean(p, &centroid)).collect();
        let band = DeltaBand::fit(&distances, delta);
        let n_total = points.len();
        let mut c = Cluster { id, centroid, points, band, n_total, since_refit: 0, cap, delta };
        c.truncate_reservoir();
        c
    }

    fn truncate_reservoir(&mut self) {
        if self.points.len() > self.cap {
            self.points.truncate(self.cap);
        }
    }

    /// Cluster identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total points ever assigned (not just the reservoir).
    pub fn size(&self) -> usize {
        self.n_total
    }

    /// The cluster centroid.
    pub fn centroid(&self) -> &[f32] {
        &self.centroid
    }

    /// The fitted Δ-band.
    pub fn band(&self) -> &DeltaBand {
        &self.band
    }

    /// Distance from a latent to the centroid.
    pub fn distance_to(&self, z: &[f32]) -> f32 {
        euclidean(z, &self.centroid)
    }

    /// Inserts a point: updates the running centroid and periodically
    /// refits the band from the reservoir.
    pub fn insert(&mut self, z: Vec<f32>) {
        // Incremental centroid over all points ever seen.
        self.n_total += 1;
        let w = 1.0 / self.n_total as f32;
        for (c, &v) in self.centroid.iter_mut().zip(z.iter()) {
            *c += (v - *c) * w;
        }
        if self.points.len() < self.cap {
            self.points.push(z);
        } else {
            let slot = self.n_total % self.cap;
            self.points[slot] = z;
        }
        self.since_refit += 1;
        if self.since_refit >= REFIT_EVERY {
            self.refit();
        }
    }

    /// Refits the band from the reservoir against the current centroid.
    pub fn refit(&mut self) {
        let distances: Vec<f32> =
            self.points.iter().map(|p| euclidean(p, &self.centroid)).collect();
        self.band = DeltaBand::fit(&distances, self.delta);
        self.since_refit = 0;
    }
}

fn centroid_of(points: &[Vec<f32>]) -> Vec<f32> {
    let dim = points[0].len();
    let mut c = vec![0.0f32; dim];
    for p in points {
        assert_eq!(p.len(), dim, "latent dimensionality mismatch");
        for (ci, &v) in c.iter_mut().zip(p.iter()) {
            *ci += v;
        }
    }
    for ci in &mut c {
        *ci /= points.len() as f32;
    }
    c
}

/// The temporary cluster that accumulates outliers until its distance
/// distribution stabilizes (§4.1, §4.5).
#[derive(Debug, Clone)]
pub struct TempCluster {
    points: Vec<Vec<f32>>,
    centroid: Option<Vec<f32>>,
    hist: DistanceHistogram,
    last_kl: f64,
    stable_run: usize,
    hist_hi: f32,
    bins: usize,
}

impl TempCluster {
    /// Creates an empty temporary cluster. `hist_hi` is the distance
    /// range tracked by the KL histogram; `bins` its resolution.
    pub fn new(hist_hi: f32, bins: usize) -> Self {
        TempCluster {
            points: Vec::new(),
            centroid: None,
            hist: DistanceHistogram::new(0.0, hist_hi, bins),
            last_kl: f64::INFINITY,
            stable_run: 0,
            hist_hi,
            bins,
        }
    }

    /// Number of accumulated outliers.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no outliers have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The KL divergence produced by the most recent insert.
    pub fn last_kl(&self) -> f64 {
        self.last_kl
    }

    /// Consecutive inserts whose KL stayed below the stability threshold.
    pub fn stable_run(&self) -> usize {
        self.stable_run
    }

    /// Adds an outlier; updates the centroid, distance histogram, and the
    /// prior-vs-posterior KL (Equation 2).
    pub fn insert(&mut self, z: Vec<f32>, kl_eps: f64) {
        match &mut self.centroid {
            None => self.centroid = Some(z.clone()),
            Some(c) => {
                let w = 1.0 / (self.points.len() + 1) as f32;
                for (ci, &v) in c.iter_mut().zip(z.iter()) {
                    *ci += (v - *ci) * w;
                }
            }
        }
        let d = euclidean(&z, self.centroid.as_ref().expect("centroid set above"));
        let prior = self.hist.clone();
        self.hist.add(d);
        self.last_kl = histogram_kl(&prior, &self.hist);
        if self.last_kl < kl_eps {
            self.stable_run += 1;
        } else {
            self.stable_run = 0;
        }
        self.points.push(z);
    }

    /// Consumes the accumulated points, resetting the temporary cluster.
    pub fn take_points(&mut self) -> Vec<Vec<f32>> {
        let pts = std::mem::take(&mut self.points);
        self.centroid = None;
        self.hist = DistanceHistogram::new(0.0, self.hist_hi, self.bins);
        self.last_kl = f64::INFINITY;
        self.stable_run = 0;
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball(center: &[f32], r: f32, n: usize) -> Vec<Vec<f32>> {
        // Deterministic points on a shell of radius ~r around the center.
        (0..n)
            .map(|i| {
                center
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| c + r * ((i * 7 + j * 13) as f32).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cluster_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let c = Cluster::from_points(0, pts, 0.75, 64);
        assert_eq!(c.centroid(), &[1.0, 2.0]);
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn insert_updates_centroid_incrementally() {
        let mut c = Cluster::from_points(0, vec![vec![0.0], vec![2.0]], 0.75, 64);
        c.insert(vec![4.0]);
        assert!((c.centroid()[0] - 2.0).abs() < 1e-6);
        assert_eq!(c.size(), 3);
    }

    #[test]
    fn reservoir_is_capped() {
        let mut c = Cluster::from_points(0, vec![vec![0.0]], 0.75, 4);
        for i in 0..100 {
            c.insert(vec![i as f32 * 0.01]);
        }
        assert_eq!(c.size(), 101);
        // Internal reservoir stays bounded (indirectly: refits stay fast
        // and centroid remains finite).
        assert!(c.centroid()[0].is_finite());
    }

    #[test]
    fn band_contains_typical_member_distance() {
        let pts = ball(&[0.0; 8], 1.0, 60);
        let c = Cluster::from_points(0, pts.clone(), 0.75, 128);
        let inside = pts.iter().filter(|p| c.band().contains(c.distance_to(p))).count();
        assert!(inside as f32 / pts.len() as f32 >= 0.7, "band holds too few members: {inside}/60");
    }

    #[test]
    fn temp_cluster_stabilizes_on_stationary_data() {
        let mut t = TempCluster::new(8.0, 32);
        let pts = ball(&[3.0; 8], 0.5, 120);
        for p in pts {
            t.insert(p, 1e-3);
        }
        assert!(t.stable_run() > 10, "stable run {} too short", t.stable_run());
        assert!(t.last_kl() < 1e-3);
    }

    #[test]
    fn temp_cluster_take_points_resets() {
        let mut t = TempCluster::new(8.0, 16);
        t.insert(vec![1.0, 2.0], 1e-3);
        t.insert(vec![1.1, 2.1], 1e-3);
        let pts = t.take_points();
        assert_eq!(pts.len(), 2);
        assert!(t.is_empty());
        assert_eq!(t.stable_run(), 0);
    }

    #[test]
    fn euclidean_matches_manual() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn euclidean_dim_mismatch_panics() {
        let _ = euclidean(&[0.0], &[1.0, 2.0]);
    }
}

//! Cluster state: centroid, point reservoir, Δ-band, and distance
//! distribution.

use odin_store::{Decoder, Encoder, Persist, StoreError};
use serde::{Deserialize, Serialize};

use crate::band::DeltaBand;
use crate::kl::{histogram_kl, DistanceHistogram};

/// Refit the band/centroid after this many inserts into a permanent
/// cluster (amortizes the O(n log n) band fit).
const REFIT_EVERY: usize = 16;

/// Euclidean distance between two latent vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "latent dimensionality mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// A permanent cluster in latent space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    id: usize,
    centroid: Vec<f32>,
    /// Capped reservoir of member latents (overwritten round-robin once
    /// full) used for band refits.
    points: Vec<Vec<f32>>,
    band: DeltaBand,
    n_total: usize,
    since_refit: usize,
    cap: usize,
    delta: f32,
}

impl Cluster {
    /// Builds a cluster from an initial point set.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn from_points(id: usize, points: Vec<Vec<f32>>, delta: f32, cap: usize) -> Self {
        assert!(!points.is_empty(), "cluster needs at least one point");
        let centroid = centroid_of(&points);
        let distances: Vec<f32> = points.iter().map(|p| euclidean(p, &centroid)).collect();
        let band = DeltaBand::fit(&distances, delta);
        let n_total = points.len();
        let mut c = Cluster { id, centroid, points, band, n_total, since_refit: 0, cap, delta };
        c.truncate_reservoir();
        c
    }

    fn truncate_reservoir(&mut self) {
        if self.points.len() > self.cap {
            self.points.truncate(self.cap);
        }
    }

    /// Cluster identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total points ever assigned (not just the reservoir).
    pub fn size(&self) -> usize {
        self.n_total
    }

    /// The cluster centroid.
    pub fn centroid(&self) -> &[f32] {
        &self.centroid
    }

    /// The fitted Δ-band.
    pub fn band(&self) -> &DeltaBand {
        &self.band
    }

    /// The capped reservoir of member latents (the points band refits
    /// run over; at most `cap` of the `size()` points ever assigned).
    pub fn reservoir(&self) -> &[Vec<f32>] {
        &self.points
    }

    /// Distance from a latent to the centroid.
    pub fn distance_to(&self, z: &[f32]) -> f32 {
        euclidean(z, &self.centroid)
    }

    /// Inserts a point: updates the running centroid and periodically
    /// refits the band from the reservoir.
    pub fn insert(&mut self, z: Vec<f32>) {
        // Incremental centroid over all points ever seen.
        self.n_total += 1;
        let w = 1.0 / self.n_total as f32;
        for (c, &v) in self.centroid.iter_mut().zip(z.iter()) {
            *c += (v - *c) * w;
        }
        if self.points.len() < self.cap {
            self.points.push(z);
        } else {
            let slot = self.n_total % self.cap;
            self.points[slot] = z;
        }
        self.since_refit += 1;
        if self.since_refit >= REFIT_EVERY {
            self.refit();
        }
    }

    /// Refits the band from the reservoir against the current centroid.
    pub fn refit(&mut self) {
        let distances: Vec<f32> =
            self.points.iter().map(|p| euclidean(p, &self.centroid)).collect();
        self.band = DeltaBand::fit(&distances, self.delta);
        self.since_refit = 0;
    }
}

fn persist_points(points: &[Vec<f32>], enc: &mut Encoder) {
    enc.put_usize(points.len());
    for p in points {
        enc.put_f32s(p);
    }
}

fn restore_points(
    dec: &mut Decoder<'_>,
    context: &'static str,
) -> Result<Vec<Vec<f32>>, StoreError> {
    let n = dec.take_usize(context)?;
    let mut points = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        points.push(dec.take_f32s(context)?);
    }
    Ok(points)
}

impl Persist for Cluster {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.id);
        enc.put_f32s(&self.centroid);
        persist_points(&self.points, enc);
        self.band.persist(enc);
        enc.put_usize(self.n_total);
        enc.put_usize(self.since_refit);
        enc.put_usize(self.cap);
        enc.put_f32(self.delta);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let id = dec.take_usize("Cluster.id")?;
        let centroid = dec.take_f32s("Cluster.centroid")?;
        let points = restore_points(dec, "Cluster.points")?;
        let band = DeltaBand::restore(dec)?;
        let n_total = dec.take_usize("Cluster.n_total")?;
        let since_refit = dec.take_usize("Cluster.since_refit")?;
        let cap = dec.take_usize("Cluster.cap")?;
        let delta = dec.take_f32("Cluster.delta")?;
        if centroid.is_empty() || cap == 0 || points.iter().any(|p| p.len() != centroid.len()) {
            return Err(StoreError::Malformed { context: "Cluster invariants" });
        }
        Ok(Cluster { id, centroid, points, band, n_total, since_refit, cap, delta })
    }
}

impl Persist for TempCluster {
    fn persist(&self, enc: &mut Encoder) {
        persist_points(&self.points, enc);
        match &self.centroid {
            Some(c) => {
                enc.put_bool(true);
                enc.put_f32s(c);
            }
            None => enc.put_bool(false),
        }
        self.hist.persist(enc);
        enc.put_f64(self.last_kl);
        enc.put_usize(self.stable_run);
        enc.put_f32(self.hist_hi);
        enc.put_usize(self.bins);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let points = restore_points(dec, "TempCluster.points")?;
        let centroid = if dec.take_bool("TempCluster.centroid tag")? {
            Some(dec.take_f32s("TempCluster.centroid")?)
        } else {
            None
        };
        let hist = DistanceHistogram::restore(dec)?;
        let last_kl = dec.take_f64("TempCluster.last_kl")?;
        let stable_run = dec.take_usize("TempCluster.stable_run")?;
        let hist_hi = dec.take_f32("TempCluster.hist_hi")?;
        let bins = dec.take_usize("TempCluster.bins")?;
        if bins == 0 || (!points.is_empty() && centroid.is_none()) {
            return Err(StoreError::Malformed { context: "TempCluster invariants" });
        }
        Ok(TempCluster { points, centroid, hist, last_kl, stable_run, hist_hi, bins })
    }
}

fn centroid_of(points: &[Vec<f32>]) -> Vec<f32> {
    let dim = points[0].len();
    let mut c = vec![0.0f32; dim];
    for p in points {
        assert_eq!(p.len(), dim, "latent dimensionality mismatch");
        for (ci, &v) in c.iter_mut().zip(p.iter()) {
            *ci += v;
        }
    }
    for ci in &mut c {
        *ci /= points.len() as f32;
    }
    c
}

/// The temporary cluster that accumulates outliers until its distance
/// distribution stabilizes (§4.1, §4.5).
#[derive(Debug, Clone)]
pub struct TempCluster {
    points: Vec<Vec<f32>>,
    centroid: Option<Vec<f32>>,
    hist: DistanceHistogram,
    last_kl: f64,
    stable_run: usize,
    hist_hi: f32,
    bins: usize,
}

impl TempCluster {
    /// Creates an empty temporary cluster. `hist_hi` is the distance
    /// range tracked by the KL histogram; `bins` its resolution.
    pub fn new(hist_hi: f32, bins: usize) -> Self {
        TempCluster {
            points: Vec::new(),
            centroid: None,
            hist: DistanceHistogram::new(0.0, hist_hi, bins),
            last_kl: f64::INFINITY,
            stable_run: 0,
            hist_hi,
            bins,
        }
    }

    /// Number of accumulated outliers.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no outliers have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The KL divergence produced by the most recent insert.
    pub fn last_kl(&self) -> f64 {
        self.last_kl
    }

    /// Consecutive inserts whose KL stayed below the stability threshold.
    pub fn stable_run(&self) -> usize {
        self.stable_run
    }

    /// Adds an outlier; updates the centroid, distance histogram, and the
    /// prior-vs-posterior KL (Equation 2).
    pub fn insert(&mut self, z: Vec<f32>, kl_eps: f64) {
        match &mut self.centroid {
            None => self.centroid = Some(z.clone()),
            Some(c) => {
                let w = 1.0 / (self.points.len() + 1) as f32;
                for (ci, &v) in c.iter_mut().zip(z.iter()) {
                    *ci += (v - *ci) * w;
                }
            }
        }
        let d = euclidean(&z, self.centroid.as_ref().expect("centroid set above"));
        let prior = self.hist.clone();
        self.hist.add(d);
        self.last_kl = histogram_kl(&prior, &self.hist);
        if self.last_kl < kl_eps {
            self.stable_run += 1;
        } else {
            self.stable_run = 0;
        }
        self.points.push(z);
    }

    /// Consumes the accumulated points, resetting the temporary cluster.
    pub fn take_points(&mut self) -> Vec<Vec<f32>> {
        let pts = std::mem::take(&mut self.points);
        self.centroid = None;
        self.hist = DistanceHistogram::new(0.0, self.hist_hi, self.bins);
        self.last_kl = f64::INFINITY;
        self.stable_run = 0;
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball(center: &[f32], r: f32, n: usize) -> Vec<Vec<f32>> {
        // Deterministic points on a shell of radius ~r around the center.
        (0..n)
            .map(|i| {
                center
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| c + r * ((i * 7 + j * 13) as f32).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cluster_persist_roundtrip_is_bit_exact() {
        let mut c = Cluster::from_points(3, ball(&[1.0; 6], 0.8, 40), 0.75, 16);
        for p in ball(&[1.1; 6], 0.8, 21) {
            c.insert(p);
        }
        let bytes = c.to_store_bytes();
        let back = Cluster::from_store_bytes(&bytes, "cluster").unwrap();
        assert_eq!(back.id(), c.id());
        assert_eq!(back.size(), c.size());
        assert_eq!(back.centroid(), c.centroid());
        assert_eq!(back.band(), c.band());
        assert_eq!(back.to_store_bytes(), bytes);
        // Restored cluster evolves identically: same insert → same state.
        let probe: Vec<f32> = vec![1.05; 6];
        let mut live = c.clone();
        let mut restored = back;
        for _ in 0..20 {
            live.insert(probe.clone());
            restored.insert(probe.clone());
        }
        assert_eq!(live.to_store_bytes(), restored.to_store_bytes());
    }

    #[test]
    fn temp_cluster_persist_roundtrip_is_bit_exact() {
        let mut t = TempCluster::new(8.0, 32);
        for p in ball(&[3.0; 8], 0.5, 30) {
            t.insert(p, 1e-3);
        }
        let bytes = t.to_store_bytes();
        let back = TempCluster::from_store_bytes(&bytes, "temp").unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.stable_run(), t.stable_run());
        assert_eq!(back.last_kl().to_bits(), t.last_kl().to_bits());
        assert_eq!(back.to_store_bytes(), bytes);
        // Empty temp cluster roundtrips too (centroid = None).
        let empty = TempCluster::new(8.0, 32);
        let eb = empty.to_store_bytes();
        assert_eq!(TempCluster::from_store_bytes(&eb, "temp").unwrap().to_store_bytes(), eb);
    }

    #[test]
    fn cluster_restore_rejects_mismatched_dims() {
        let c = Cluster::from_points(0, vec![vec![1.0, 2.0]], 0.75, 8);
        let mut enc = Encoder::new();
        // Hand-encode a cluster whose reservoir point has the wrong dim.
        enc.put_usize(0);
        enc.put_f32s(&[1.0, 2.0]);
        enc.put_usize(1);
        enc.put_f32s(&[1.0, 2.0, 3.0]);
        c.band().persist(&mut enc);
        enc.put_usize(1);
        enc.put_usize(0);
        enc.put_usize(8);
        enc.put_f32(0.75);
        assert!(Cluster::from_store_bytes(&enc.into_bytes(), "cluster").is_err());
    }

    #[test]
    fn cluster_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let c = Cluster::from_points(0, pts, 0.75, 64);
        assert_eq!(c.centroid(), &[1.0, 2.0]);
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn insert_updates_centroid_incrementally() {
        let mut c = Cluster::from_points(0, vec![vec![0.0], vec![2.0]], 0.75, 64);
        c.insert(vec![4.0]);
        assert!((c.centroid()[0] - 2.0).abs() < 1e-6);
        assert_eq!(c.size(), 3);
    }

    #[test]
    fn reservoir_is_capped() {
        let mut c = Cluster::from_points(0, vec![vec![0.0]], 0.75, 4);
        for i in 0..100 {
            c.insert(vec![i as f32 * 0.01]);
        }
        assert_eq!(c.size(), 101);
        // Internal reservoir stays bounded (indirectly: refits stay fast
        // and centroid remains finite).
        assert!(c.centroid()[0].is_finite());
    }

    #[test]
    fn band_contains_typical_member_distance() {
        let pts = ball(&[0.0; 8], 1.0, 60);
        let c = Cluster::from_points(0, pts.clone(), 0.75, 128);
        let inside = pts.iter().filter(|p| c.band().contains(c.distance_to(p))).count();
        assert!(inside as f32 / pts.len() as f32 >= 0.7, "band holds too few members: {inside}/60");
    }

    #[test]
    fn temp_cluster_stabilizes_on_stationary_data() {
        let mut t = TempCluster::new(8.0, 32);
        let pts = ball(&[3.0; 8], 0.5, 120);
        for p in pts {
            t.insert(p, 1e-3);
        }
        assert!(t.stable_run() > 10, "stable run {} too short", t.stable_run());
        assert!(t.last_kl() < 1e-3);
    }

    #[test]
    fn temp_cluster_take_points_resets() {
        let mut t = TempCluster::new(8.0, 16);
        t.insert(vec![1.0, 2.0], 1e-3);
        t.insert(vec![1.1, 2.1], 1e-3);
        let pts = t.take_points();
        assert_eq!(pts.len(), 2);
        assert!(t.is_empty());
        assert_eq!(t.stable_run(), 0);
    }

    #[test]
    fn euclidean_matches_manual() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn euclidean_dim_mismatch_panics() {
        let _ = euclidean(&[0.0], &[1.0, 2.0]);
    }
}

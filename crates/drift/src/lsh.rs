//! Locality-sensitive hashing for cluster lookup — the paper's §7
//! ("DA-GAN Performance") proposes LSH to keep DETECTOR fast as the
//! number of clusters grows, since a naive lookup compares every input
//! against every cluster's Δ-band.
//!
//! This is a random-hyperplane (signed random projection) index over
//! cluster centroids: a query hashes to a bucket per table, candidate
//! centroids are the union of its buckets, and only those candidates are
//! distance-checked. With `tables × bits` chosen sensibly, lookup cost
//! becomes sublinear in the cluster count at a small recall cost.

use odin_store::{Decoder, Encoder, Persist, StoreError};

use crate::cluster::euclidean;

/// A random-hyperplane LSH index over latent vectors.
#[derive(Debug, Clone)]
pub struct LshIndex {
    dim: usize,
    bits: usize,
    /// `tables × bits` hyperplanes, each of length `dim`.
    planes: Vec<Vec<f32>>,
    /// Per table: bucket-key → item indices.
    tables: Vec<std::collections::HashMap<u64, Vec<usize>>>,
    items: Vec<Vec<f32>>,
}

impl LshIndex {
    /// Creates an empty index.
    ///
    /// * `dim` — latent dimensionality,
    /// * `tables` — number of independent hash tables (higher = better
    ///   recall, more memory),
    /// * `bits` — hyperplanes per table (higher = smaller buckets).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `bits > 63`.
    pub fn new(dim: usize, tables: usize, bits: usize, seed: u64) -> Self {
        assert!(dim > 0 && tables > 0 && bits > 0, "LSH parameters must be positive");
        assert!(bits <= 63, "at most 63 bits per table");
        // Deterministic pseudo-random hyperplanes from a splitmix-style
        // generator (keeps the index reproducible without threading an
        // RNG through).
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let planes = (0..tables * bits)
            .map(|_| {
                (0..dim)
                    .map(|_| {
                        // Uniform in [-1, 1) is fine for sign hashing.
                        (next() >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
                    })
                    .collect()
            })
            .collect();
        LshIndex {
            dim,
            bits,
            planes,
            tables: vec![std::collections::HashMap::new(); tables],
            items: Vec::new(),
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn key(&self, table: usize, v: &[f32]) -> u64 {
        let mut key = 0u64;
        for b in 0..self.bits {
            let plane = &self.planes[table * self.bits + b];
            let dot: f32 = plane.iter().zip(v.iter()).map(|(p, x)| p * x).sum();
            key = (key << 1) | (dot >= 0.0) as u64;
        }
        key
    }

    /// Indexes a vector, returning its item id.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn insert(&mut self, v: Vec<f32>) -> usize {
        assert_eq!(v.len(), self.dim, "LSH dimensionality mismatch");
        let id = self.items.len();
        for t in 0..self.tables.len() {
            let key = self.key(t, &v);
            self.tables[t].entry(key).or_default().push(id);
        }
        self.items.push(v);
        id
    }

    /// Candidate item ids for a query (union over tables, deduplicated,
    /// ascending).
    pub fn candidates(&self, q: &[f32]) -> Vec<usize> {
        assert_eq!(q.len(), self.dim, "LSH dimensionality mismatch");
        let mut seen = vec![false; self.items.len()];
        let mut out = Vec::new();
        for t in 0..self.tables.len() {
            if let Some(bucket) = self.tables[t].get(&self.key(t, q)) {
                for &id in bucket {
                    if !seen[id] {
                        seen[id] = true;
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Approximate nearest neighbour: the closest candidate, falling back
    /// to an exact scan when every bucket is empty (guaranteeing an
    /// answer whenever the index is non-empty).
    pub fn nearest(&self, q: &[f32]) -> Option<(usize, f32)> {
        if self.items.is_empty() {
            return None;
        }
        let candidates = self.candidates(q);
        let pool: Box<dyn Iterator<Item = usize>> = if candidates.is_empty() {
            Box::new(0..self.items.len())
        } else {
            Box::new(candidates.into_iter())
        };
        pool.map(|id| (id, euclidean(&self.items[id], q)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }
}

impl Persist for LshIndex {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.dim);
        enc.put_usize(self.bits);
        enc.put_usize(self.planes.len());
        for p in &self.planes {
            enc.put_f32s(p);
        }
        enc.put_usize(self.tables.len());
        for table in &self.tables {
            // HashMap iteration order is unspecified; sort keys so the
            // encoding (and therefore checkpoint CRCs) is deterministic.
            let mut keys: Vec<u64> = table.keys().copied().collect();
            keys.sort_unstable();
            enc.put_usize(keys.len());
            for k in keys {
                enc.put_u64(k);
                enc.put_usizes(&table[&k]);
            }
        }
        enc.put_usize(self.items.len());
        for item in &self.items {
            enc.put_f32s(item);
        }
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let dim = dec.take_usize("LshIndex.dim")?;
        let bits = dec.take_usize("LshIndex.bits")?;
        let n_planes = dec.take_usize("LshIndex.planes len")?;
        let mut planes = Vec::with_capacity(n_planes.min(1 << 16));
        for _ in 0..n_planes {
            planes.push(dec.take_f32s("LshIndex.plane")?);
        }
        let n_tables = dec.take_usize("LshIndex.tables len")?;
        let mut tables = Vec::with_capacity(n_tables.min(1 << 10));
        for _ in 0..n_tables {
            let n_buckets = dec.take_usize("LshIndex.buckets len")?;
            let mut table = std::collections::HashMap::new();
            for _ in 0..n_buckets {
                let key = dec.take_u64("LshIndex.bucket key")?;
                let ids = dec.take_usizes("LshIndex.bucket ids")?;
                table.insert(key, ids);
            }
            tables.push(table);
        }
        let n_items = dec.take_usize("LshIndex.items len")?;
        let mut items = Vec::with_capacity(n_items.min(1 << 20));
        for _ in 0..n_items {
            items.push(dec.take_f32s("LshIndex.item")?);
        }
        if dim == 0
            || bits == 0
            || bits > 63
            || tables.is_empty()
            || planes.len() != tables.len() * bits
            || planes.iter().any(|p| p.len() != dim)
            || items.iter().any(|v| v.len() != dim)
        {
            return Err(StoreError::Malformed { context: "LshIndex invariants" });
        }
        Ok(LshIndex { dim, bits, planes, tables, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_roundtrip_preserves_lookups() {
        let mut idx = LshIndex::new(8, 4, 8, 7);
        for p in grid_points(60, 8) {
            idx.insert(p);
        }
        let bytes = idx.to_store_bytes();
        let back = LshIndex::from_store_bytes(&bytes, "lsh").unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.to_store_bytes(), bytes, "encoding is canonical");
        for q in grid_points(10, 8) {
            assert_eq!(back.candidates(&q), idx.candidates(&q));
            assert_eq!(back.nearest(&q), idx.nearest(&q));
        }
    }

    #[test]
    fn restore_rejects_inconsistent_geometry() {
        let idx = LshIndex::new(4, 2, 4, 0);
        let mut bytes = idx.to_store_bytes();
        // Corrupt the stored dimensionality: planes no longer match.
        bytes[..8].copy_from_slice(&5u64.to_le_bytes());
        assert!(LshIndex::from_store_bytes(&bytes, "lsh").is_err());
    }

    fn grid_points(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..dim).map(|j| ((i * 13 + j * 7) % 97) as f32 / 10.0).collect()).collect()
    }

    #[test]
    fn nearest_returns_exact_match_for_indexed_point() {
        let mut idx = LshIndex::new(8, 4, 8, 0);
        let pts = grid_points(50, 8);
        for p in &pts {
            idx.insert(p.clone());
        }
        let (id, d) = idx.nearest(&pts[17]).expect("non-empty");
        assert_eq!(id, 17);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn nearest_approximates_linear_scan() {
        let mut idx = LshIndex::new(16, 6, 8, 1);
        let pts = grid_points(200, 16);
        for p in &pts {
            idx.insert(p.clone());
        }
        let mut hits = 0;
        let queries = grid_points(40, 16);
        for q in &queries {
            let approx = idx.nearest(q).expect("non-empty").1;
            let exact = pts.iter().map(|p| euclidean(p, q)).fold(f32::INFINITY, f32::min);
            // Allow a bounded approximation slack.
            if approx <= exact * 1.5 + 1e-3 {
                hits += 1;
            }
        }
        assert!(hits >= 36, "LSH recall too low: {hits}/40");
    }

    #[test]
    fn candidates_shrink_the_search() {
        let mut idx = LshIndex::new(16, 2, 10, 2);
        // Two blobs pointing in opposite directions (sign-hash LSH is
        // direction-sensitive, not magnitude-sensitive).
        for i in 0..100 {
            let v: Vec<f32> = (0..16).map(|j| 1.0 + ((i + j) % 5) as f32 * 0.1).collect();
            idx.insert(v);
        }
        for i in 0..100 {
            let v: Vec<f32> = (0..16)
                .map(|j| if j % 2 == 0 { -1.0 } else { 1.0 } * (5.0 + ((i + j) % 5) as f32 * 0.1))
                .collect();
            idx.insert(v);
        }
        let q: Vec<f32> = vec![1.1; 16];
        let cands = idx.candidates(&q);
        assert!(!cands.is_empty());
        assert!(
            cands.len() < 150,
            "candidate set should be smaller than the full index, got {}",
            cands.len()
        );
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = LshIndex::new(4, 2, 4, 0);
        assert!(idx.nearest(&[0.0; 4]).is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = LshIndex::new(8, 2, 6, 42);
        let mut b = LshIndex::new(8, 2, 6, 42);
        for p in grid_points(20, 8) {
            a.insert(p.clone());
            b.insert(p);
        }
        let q = vec![1.0; 8];
        assert_eq!(a.candidates(&q), b.candidates(&q));
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dim_mismatch_panics() {
        let mut idx = LshIndex::new(4, 2, 4, 0);
        idx.insert(vec![0.0; 5]);
    }
}

//! Compact, persistable fingerprints of permanent clusters.
//!
//! A [`ClusterSignature`] captures what made a cluster *recognizable* —
//! its centroid, fitted Δ-band, and the KL distance histogram over its
//! reservoir — without the reservoir points themselves. The model attic
//! archives one per evicted cluster so a recurring drift regime (the
//! same night/rain/fog concept coming back) can be matched by centroid
//! distance and its specialized model reinstalled instead of retrained.

use odin_store::{Decoder, Encoder, Persist, StoreError};

use crate::band::DeltaBand;
use crate::cluster::{euclidean, Cluster};
use crate::kl::DistanceHistogram;

/// Histogram resolution used when fingerprinting a cluster's reservoir.
const SIGNATURE_BINS: usize = 32;

/// The recognizable shape of a (possibly evicted) permanent cluster:
/// centroid, Δ-band, and the distance distribution of its reservoir.
#[derive(Debug, Clone)]
pub struct ClusterSignature {
    centroid: Vec<f32>,
    band: DeltaBand,
    hist: DistanceHistogram,
}

impl ClusterSignature {
    /// Fingerprints a cluster: copies its centroid and Δ-band and bins
    /// the reservoir's centroid distances into a fresh histogram whose
    /// range is derived from the band (so two captures of the same
    /// cluster state are bit-identical).
    pub fn from_cluster(cluster: &Cluster) -> Self {
        let centroid = cluster.centroid().to_vec();
        let band = *cluster.band();
        // Range from the band, not the data: [0, 2×upper] covers every
        // in-band member and keeps the bucketing a pure function of the
        // cluster state.
        let hi = (band.upper * 2.0).max(1e-3);
        let mut hist = DistanceHistogram::new(0.0, hi, SIGNATURE_BINS);
        for p in cluster.reservoir() {
            hist.add(euclidean(p, &centroid));
        }
        ClusterSignature { centroid, band, hist }
    }

    /// The archived centroid.
    pub fn centroid(&self) -> &[f32] {
        &self.centroid
    }

    /// The archived Δ-band.
    pub fn band(&self) -> &DeltaBand {
        &self.band
    }

    /// The archived reservoir distance histogram.
    pub fn hist(&self) -> &DistanceHistogram {
        &self.hist
    }

    /// Euclidean distance from a query centroid to this signature's
    /// centroid — the attic's match metric.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn centroid_distance(&self, query: &[f32]) -> f32 {
        euclidean(&self.centroid, query)
    }

    /// Approximate heap footprint in bytes (for attic byte budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.centroid.len() * 4 + 3 * 4 + self.hist.bins() * 4 + 8 + 8
    }
}

impl Persist for ClusterSignature {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_f32s(&self.centroid);
        self.band.persist(enc);
        self.hist.persist(enc);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let centroid = dec.take_f32s("ClusterSignature.centroid")?;
        let band = DeltaBand::restore(dec)?;
        let hist = DistanceHistogram::restore(dec)?;
        if centroid.is_empty() {
            return Err(StoreError::Malformed { context: "ClusterSignature.centroid empty" });
        }
        Ok(ClusterSignature { centroid, band, hist })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell(center: &[f32], r: f32, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                center
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| c + r * ((i * 7 + j * 13) as f32).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn signature_captures_cluster_shape() {
        let c = Cluster::from_points(3, shell(&[2.0; 6], 0.8, 40), 0.75, 16);
        let sig = ClusterSignature::from_cluster(&c);
        assert_eq!(sig.centroid(), c.centroid());
        assert_eq!(sig.band(), c.band());
        assert_eq!(sig.hist().total(), c.reservoir().len() as u64);
        assert_eq!(sig.centroid_distance(c.centroid()), 0.0);
        assert!(sig.approx_bytes() > 0);
    }

    #[test]
    fn signature_persist_roundtrip_is_bit_exact() {
        let c = Cluster::from_points(7, shell(&[-1.0; 8], 1.2, 50), 0.75, 32);
        let sig = ClusterSignature::from_cluster(&c);
        let bytes = sig.to_store_bytes();
        let back = ClusterSignature::from_store_bytes(&bytes, "signature").unwrap();
        assert_eq!(back.centroid(), sig.centroid());
        assert_eq!(back.band(), sig.band());
        assert_eq!(back.to_store_bytes(), bytes);
    }

    #[test]
    fn same_cluster_state_fingerprints_identically() {
        let c = Cluster::from_points(0, shell(&[4.0; 4], 0.5, 30), 0.75, 64);
        let a = ClusterSignature::from_cluster(&c);
        let b = ClusterSignature::from_cluster(&c);
        assert_eq!(a.to_store_bytes(), b.to_store_bytes());
    }

    #[test]
    fn restore_rejects_empty_centroid() {
        let c = Cluster::from_points(0, shell(&[0.0; 4], 0.5, 20), 0.75, 8);
        let sig = ClusterSignature::from_cluster(&c);
        let mut enc = Encoder::new();
        enc.put_f32s(&[]);
        sig.band().persist(&mut enc);
        sig.hist().persist(&mut enc);
        assert!(ClusterSignature::from_store_bytes(&enc.into_bytes(), "signature").is_err());
    }
}

//! # odin-drift
//!
//! The unsupervised drift-detection machinery of ODIN's DETECTOR (§4):
//!
//! * [`band::DeltaBand`] — the Δ-band (high-density annulus) cluster
//!   summary of §4.1 / Figure 4,
//! * [`kl`] — distance histograms and the KL-divergence stability test of
//!   Equation 2,
//! * [`cluster`] / [`manager`] — the online clustering of §4.5: points
//!   are assigned to permanent clusters by Δ-band membership or pooled in
//!   a temporary cluster; a stabilized temporary cluster is promoted to a
//!   permanent one (a **drift event**),
//! * [`baselines`] — LOF, PCA-residual, and latent-kNN scorers for the
//!   Table-1 comparison,
//! * [`eval`] — F1 scoring of outlier detectors.
//!
//! This crate works purely on latent vectors; the projection from pixels
//! to the latent manifold lives in `odin-gan`, and `odin-core` wires the
//! two together.

#![warn(missing_docs)]

pub mod band;
pub mod baselines;
pub mod cluster;
pub mod eval;
pub mod kl;
pub mod lsh;
pub mod manager;
pub mod signature;

pub use band::{DeltaBand, DEFAULT_DELTA};
pub use cluster::{euclidean, Cluster, TempCluster};
pub use lsh::LshIndex;
pub use manager::{Assignment, ClusterManager, DriftEvent, ManagerConfig, Observation};
pub use signature::ClusterSignature;

//! Δ-bands (§4.1 of the paper).
//!
//! A Δ-band is the high-density annulus of a cluster: the narrowest
//! interval of centroid-distances that contains a fraction Δ of the
//! cluster's points, centered on the distance-distribution's peak
//! (Figure 4). Representing a cluster by `[Δ_l, Δ_h]` collapses an
//! arbitrary-dimensional cluster to two scalars, which is how ODIN
//! reduces drift detection "from ~921K dimensions to four".

use odin_store::{Decoder, Encoder, Persist, StoreError};
use serde::{Deserialize, Serialize};

/// The default band mass used by DETECTOR (§6.2 configures Δ = 0.75).
pub const DEFAULT_DELTA: f32 = 0.75;

/// A fitted density band: the narrowest distance interval holding a Δ
/// fraction of a cluster's points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaBand {
    /// Lower bound Δ_l.
    pub lower: f32,
    /// Upper bound Δ_h.
    pub upper: f32,
    /// The mass fraction Δ the band was fitted with.
    pub delta: f32,
}

impl DeltaBand {
    /// Fits a band to a set of centroid distances.
    ///
    /// Finds the minimal-width window over the sorted distances that
    /// covers `ceil(delta · n)` points. Because the window is minimal, it
    /// necessarily sits on the density peak — the same construction §4.1
    /// describes (center at the peak, expand until the mass constraint of
    /// Equation 1 holds).
    ///
    /// # Panics
    ///
    /// Panics if `distances` is empty or `delta` is outside `(0, 1]`.
    pub fn fit(distances: &[f32], delta: f32) -> DeltaBand {
        assert!(!distances.is_empty(), "cannot fit a band to zero distances");
        assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0,1], got {delta}");
        let mut sorted: Vec<f32> = distances.iter().copied().filter(|d| d.is_finite()).collect();
        assert!(!sorted.is_empty(), "all distances were non-finite");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let n = sorted.len();
        let need = ((delta * n as f32).ceil() as usize).clamp(1, n);
        let mut best = (0usize, need - 1);
        let mut best_width = f32::INFINITY;
        for start in 0..=(n - need) {
            let end = start + need - 1;
            let width = sorted[end] - sorted[start];
            if width < best_width {
                best_width = width;
                best = (start, end);
            }
        }
        DeltaBand { lower: sorted[best.0], upper: sorted[best.1], delta }
    }

    /// True if a distance lies inside the band (inclusive).
    #[inline]
    pub fn contains(&self, d: f32) -> bool {
        d >= self.lower && d <= self.upper
    }

    /// Band width `Δ_h − Δ_l`.
    pub fn width(&self) -> f32 {
        self.upper - self.lower
    }

    /// Band midpoint.
    pub fn mid(&self) -> f32 {
        (self.upper + self.lower) / 2.0
    }

    /// Fraction of the given distances that fall inside the band —
    /// the empirical check of Equation 1 (∫ f_Δ = Δ).
    ///
    /// Only finite distances participate: a NaN or infinite distance is
    /// a measurement artifact, not evidence about the band, so it must
    /// neither count as "outside" nor dilute the denominator. With no
    /// finite distances at all (empty slice included) the mass is 0.0,
    /// never NaN — this fraction feeds the drift score, and a NaN here
    /// poisons every comparison downstream.
    pub fn mass(&self, distances: &[f32]) -> f32 {
        let mut finite = 0usize;
        let mut inside = 0usize;
        for &d in distances {
            if d.is_finite() {
                finite += 1;
                if self.contains(d) {
                    inside += 1;
                }
            }
        }
        if finite == 0 {
            return 0.0;
        }
        inside as f32 / finite as f32
    }
}

impl Persist for DeltaBand {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_f32(self.lower);
        enc.put_f32(self.upper);
        enc.put_f32(self.delta);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(DeltaBand {
            lower: dec.take_f32("DeltaBand.lower")?,
            upper: dec.take_f32("DeltaBand.upper")?,
            delta: dec.take_f32("DeltaBand.delta")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_roundtrip_is_exact() {
        let band = DeltaBand::fit(&[0.1, 0.5, 0.55, 0.6, 0.9], 0.6);
        let bytes = band.to_store_bytes();
        let back = DeltaBand::from_store_bytes(&bytes, "band").unwrap();
        assert_eq!(back, band);
        assert_eq!(back.to_store_bytes(), bytes);
    }

    #[test]
    fn band_covers_requested_mass() {
        let ds: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let band = DeltaBand::fit(&ds, 0.5);
        assert!(band.mass(&ds) >= 0.5, "band mass {} below delta", band.mass(&ds));
    }

    #[test]
    fn band_centers_on_density_peak() {
        // Distances clustered around 0.5 with sparse tails: the band must
        // sit on the dense region, leaving the empty center (Figure 4's
        // hypersphere hole) outside.
        let mut ds = vec![0.05, 0.95];
        for i in 0..50 {
            ds.push(0.45 + 0.1 * i as f32 / 50.0);
        }
        let band = DeltaBand::fit(&ds, 0.75);
        assert!(band.lower >= 0.3, "lower bound {} should skip the empty center", band.lower);
        assert!(band.upper <= 0.7, "upper bound {} should skip the tail", band.upper);
    }

    #[test]
    fn full_delta_spans_everything() {
        let ds = vec![0.1, 0.2, 0.9];
        let band = DeltaBand::fit(&ds, 1.0);
        assert_eq!(band.lower, 0.1);
        assert_eq!(band.upper, 0.9);
        assert_eq!(band.mass(&ds), 1.0);
    }

    #[test]
    fn single_point_band_is_degenerate_but_valid() {
        let band = DeltaBand::fit(&[0.4], 0.75);
        assert_eq!(band.lower, 0.4);
        assert_eq!(band.upper, 0.4);
        assert!(band.contains(0.4));
        assert!(!band.contains(0.41));
    }

    #[test]
    fn bounds_are_ordered() {
        let ds = vec![3.0, 1.0, 2.0, 5.0, 4.0];
        let band = DeltaBand::fit(&ds, 0.6);
        assert!(band.lower <= band.upper);
    }

    #[test]
    fn non_finite_distances_are_filtered() {
        let band = DeltaBand::fit(&[0.1, f32::NAN, 0.2, f32::INFINITY, 0.3], 0.99);
        assert!(band.upper <= 0.3);
    }

    #[test]
    fn mass_of_empty_slice_is_zero_not_nan() {
        // Regression: 0/0 used to surface as NaN, which poisons every
        // drift-score comparison it touches.
        let band = DeltaBand { lower: 0.1, upper: 0.9, delta: 0.75 };
        let m = band.mass(&[]);
        assert!(!m.is_nan());
        assert_eq!(m, 0.0);
    }

    #[test]
    fn mass_ignores_non_finite_distances() {
        let band = DeltaBand { lower: 0.0, upper: 1.0, delta: 0.75 };
        // NaN/Inf are artifacts: they must not dilute the fraction.
        assert_eq!(band.mass(&[0.5, f32::NAN, f32::INFINITY, 0.6]), 1.0);
        // All-artifact input behaves like the empty slice.
        let m = band.mass(&[f32::NAN, f32::NEG_INFINITY]);
        assert!(!m.is_nan());
        assert_eq!(m, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot fit a band to zero distances")]
    fn empty_distances_panic() {
        let _ = DeltaBand::fit(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1]")]
    fn invalid_delta_panics() {
        let _ = DeltaBand::fit(&[0.1], 1.5);
    }
}

//! Histograms over centroid distances and KL divergence (Equation 2).
//!
//! DETECTOR tracks the distance distribution of the temporary cluster as
//! a smoothed histogram. When adding a new point stops changing the
//! distribution — `D_KL(prior ‖ posterior) → 0` — the temporary cluster
//! is declared stable and promoted to a permanent cluster.

use odin_store::{Decoder, Encoder, Persist, StoreError};
use serde::{Deserialize, Serialize};

/// A fixed-range histogram with Laplace smoothing, convertible to a
/// probability distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceHistogram {
    counts: Vec<u32>,
    lo: f32,
    hi: f32,
    total: u64,
}

impl DistanceHistogram {
    /// Creates an empty histogram over `[lo, hi]` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty: [{lo}, {hi}]");
        DistanceHistogram { counts: vec![0; bins], lo, hi, total: 0 }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn bin_of(&self, d: f32) -> usize {
        // A non-finite distance must never reach the binning math:
        // NaN fails every comparison, so `clamp` would pass it through
        // and `as usize` would saturate it to bin 0, silently skewing
        // the probability mass (and therefore every KL score) toward
        // the lowest bucket. Callers filter; this is the backstop.
        debug_assert!(d.is_finite(), "bin_of called with non-finite distance {d}");
        if !d.is_finite() {
            return 0;
        }
        let f = ((d - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        ((f * self.counts.len() as f32) as usize).min(self.counts.len() - 1)
    }

    /// Records one distance (values outside the range clamp to the edge
    /// bins).
    pub fn add(&mut self, d: f32) {
        if !d.is_finite() {
            return;
        }
        let b = self.bin_of(d);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// The smoothed probability distribution (Laplace +1).
    pub fn probabilities(&self) -> Vec<f64> {
        let denom = self.total as f64 + self.counts.len() as f64;
        self.counts.iter().map(|&c| (c as f64 + 1.0) / denom).collect()
    }
}

impl Persist for DistanceHistogram {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_u32s(&self.counts);
        enc.put_f32(self.lo);
        enc.put_f32(self.hi);
        enc.put_u64(self.total);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let counts = dec.take_u32s("DistanceHistogram.counts")?;
        if counts.is_empty() {
            return Err(StoreError::Malformed { context: "DistanceHistogram.counts empty" });
        }
        let lo = dec.take_f32("DistanceHistogram.lo")?;
        let hi = dec.take_f32("DistanceHistogram.hi")?;
        if hi.is_nan() || lo.is_nan() || hi <= lo {
            return Err(StoreError::Malformed { context: "DistanceHistogram range" });
        }
        let total = dec.take_u64("DistanceHistogram.total")?;
        Ok(DistanceHistogram { counts, lo, hi, total })
    }
}

/// KL divergence `D_KL(P_A ‖ P_B) = Σ P_A · ln(P_A / P_B)` between two
/// discrete distributions (Equation 2 of the paper, sign-corrected).
///
/// # Panics
///
/// Panics if the distributions have different lengths.
pub fn kl_divergence(pa: &[f64], pb: &[f64]) -> f64 {
    assert_eq!(pa.len(), pb.len(), "distribution length mismatch");
    pa.iter()
        .zip(pb.iter())
        .map(|(&a, &b)| if a <= 0.0 { 0.0 } else { a * (a / b.max(1e-12)).ln() })
        .sum()
}

/// KL divergence between two histograms (via their smoothed
/// probabilities).
pub fn histogram_kl(prior: &DistanceHistogram, posterior: &DistanceHistogram) -> f64 {
    kl_divergence(&prior.probabilities(), &posterior.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_roundtrip_is_exact() {
        let mut h = DistanceHistogram::new(0.0, 4.0, 8);
        for d in [0.5, 1.5, 1.6, 3.9, -1.0, 7.0] {
            h.add(d);
        }
        let bytes = h.to_store_bytes();
        let back = DistanceHistogram::from_store_bytes(&bytes, "hist").unwrap();
        assert_eq!(back.total(), h.total());
        assert_eq!(back.bins(), h.bins());
        assert_eq!(back.probabilities(), h.probabilities());
        assert_eq!(back.to_store_bytes(), bytes);
    }

    #[test]
    fn persist_rejects_empty_or_inverted_histograms() {
        let h = DistanceHistogram::new(0.0, 1.0, 4);
        let mut bytes = h.to_store_bytes();
        // Zero out the bin count: structurally invalid.
        bytes[..8].copy_from_slice(&0u64.to_le_bytes());
        bytes.truncate(8 + 4 + 4 + 8);
        assert!(DistanceHistogram::from_store_bytes(&bytes, "hist").is_err());
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let p = vec![0.25; 4];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_is_nonnegative() {
        let p = vec![0.7, 0.2, 0.1];
        let q = vec![0.1, 0.2, 0.7];
        assert!(kl_divergence(&p, &q) > 0.0);
        assert!(kl_divergence(&q, &p) > 0.0);
    }

    #[test]
    fn kl_is_asymmetric_in_general() {
        let p = vec![0.9, 0.05, 0.05];
        let q = vec![0.4, 0.3, 0.3];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn histogram_records_and_normalizes() {
        let mut h = DistanceHistogram::new(0.0, 1.0, 4);
        h.add(0.1);
        h.add(0.9);
        h.add(0.9);
        assert_eq!(h.total(), 3);
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[3] > p[0]);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = DistanceHistogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.total(), 2);
        let p = h.probabilities();
        assert!((p[0] - p[1]).abs() < 1e-9);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut h = DistanceHistogram::new(0.0, 1.0, 2);
        h.add(f32::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn non_finite_values_leave_kl_untouched() {
        // Regression: NaN/−Inf used to saturate into bucket 0 via
        // `as usize`, inflating the low bucket's probability mass and
        // corrupting the stability signal. They must be full no-ops.
        let mut clean = DistanceHistogram::new(0.0, 1.0, 4);
        let mut dirty = DistanceHistogram::new(0.0, 1.0, 4);
        for d in [0.1, 0.4, 0.4, 0.8] {
            clean.add(d);
            dirty.add(d);
        }
        dirty.add(f32::NAN);
        dirty.add(f32::NEG_INFINITY);
        dirty.add(f32::INFINITY);
        assert_eq!(dirty.total(), clean.total());
        assert_eq!(dirty.probabilities(), clean.probabilities());
        assert_eq!(histogram_kl(&clean, &dirty), 0.0);
    }

    #[test]
    fn kl_shrinks_as_posterior_converges() {
        // Adding points from the same distribution should drive the
        // prior/posterior KL toward zero — the stability signal of §4.1.
        let mut prev = DistanceHistogram::new(0.0, 1.0, 8);
        let mut kls = Vec::new();
        for i in 0..200 {
            let d = 0.4 + 0.2 * ((i * 37 % 100) as f32 / 100.0);
            let mut next = prev.clone();
            next.add(d);
            kls.push(histogram_kl(&prev, &next));
            prev = next;
        }
        let early: f64 = kls[5..15].iter().sum::<f64>() / 10.0;
        let late: f64 = kls[kls.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(late < early, "KL did not shrink: {early} -> {late}");
        assert!(late < 1e-3, "late KL {late} should be near zero");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = kl_divergence(&[0.5, 0.5], &[1.0]);
    }
}

//! k-nearest-neighbour distance scoring in a latent space.
//!
//! This is the scorer Table 1 uses for the representation-based metrics
//! (AE, AAE, DA-GAN): project training data into the model's latent
//! space, then score a test point by its mean distance to the k nearest
//! training latents. Holding the scorer fixed isolates the variable the
//! paper studies — *the quality of the representation*.

/// A kNN-distance outlier scorer over a fixed reference set.
pub struct LatentKnn {
    reference: Vec<Vec<f32>>,
    k: usize,
}

impl LatentKnn {
    /// Builds a scorer over the reference latents.
    ///
    /// # Panics
    ///
    /// Panics if `reference` has fewer than `k` rows or `k == 0`.
    pub fn new(reference: Vec<Vec<f32>>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(
            reference.len() >= k,
            "need at least k={k} reference latents, got {}",
            reference.len()
        );
        LatentKnn { reference, k }
    }

    /// Mean distance to the k nearest reference latents.
    pub fn score(&self, z: &[f32]) -> f32 {
        let mut ds: Vec<f32> = self
            .reference
            .iter()
            .map(|r| r.iter().zip(z.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt())
            .collect();
        ds.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        ds[..self.k].iter().sum::<f32>() / self.k as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearby_point_scores_low() {
        let reference = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1], vec![0.1, 0.1]];
        let knn = LatentKnn::new(reference, 2);
        assert!(knn.score(&[0.05, 0.05]) < 0.2);
    }

    #[test]
    fn far_point_scores_high() {
        let reference = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1], vec![0.1, 0.1]];
        let knn = LatentKnn::new(reference, 2);
        assert!(knn.score(&[10.0, 10.0]) > 10.0);
    }

    #[test]
    fn k_equals_reference_size_uses_all() {
        let reference = vec![vec![0.0], vec![2.0]];
        let knn = LatentKnn::new(reference, 2);
        assert!((knn.score(&[1.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_small_reference_panics() {
        let _ = LatentKnn::new(vec![vec![0.0]], 3);
    }
}

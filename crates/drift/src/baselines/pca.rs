//! PCA residual outlier detection — the canonical dimensionality-
//! reduction baseline of Table 1.
//!
//! Fits the top-k principal components by power iteration with deflation
//! on the (implicit) covariance matrix, then scores a point by its
//! reconstruction residual outside the principal subspace. As the paper
//! observes, PCA ignores spatial pixel locality, so it collapses first as
//! outlier fraction grows.

/// A fitted PCA outlier detector.
pub struct PcaDetector {
    mean: Vec<f32>,
    /// Row-major `[k, dim]` orthonormal component matrix.
    components: Vec<Vec<f32>>,
}

impl PcaDetector {
    /// Fits `k` principal components to the training rows.
    ///
    /// `iters` controls power-iteration steps per component (20–50 is
    /// plenty for well-separated spectra).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, rows are inconsistent, or `k == 0`.
    pub fn fit(data: &[Vec<f32>], k: usize, iters: usize) -> Self {
        assert!(!data.is_empty(), "PCA needs training data");
        assert!(k > 0, "k must be positive");
        let dim = data[0].len();
        let n = data.len();
        assert!(data.iter().all(|r| r.len() == dim), "inconsistent row lengths");

        let mut mean = vec![0.0f32; dim];
        for row in data {
            for (m, &v) in mean.iter_mut().zip(row.iter()) {
                *m += v / n as f32;
            }
        }
        // Centered data, borrowed implicitly via closure below.
        let centered: Vec<Vec<f32>> = data
            .iter()
            .map(|row| row.iter().zip(mean.iter()).map(|(&v, &m)| v - m).collect())
            .collect();

        // Power iteration with deflation: we never materialize the
        // covariance matrix; cov·v = Xᵀ(Xv)/n.
        let mut components: Vec<Vec<f32>> = Vec::with_capacity(k.min(dim));
        for ci in 0..k.min(dim) {
            // Deterministic pseudo-random start vector.
            let mut v: Vec<f32> = (0..dim).map(|j| ((j * 31 + ci * 17 + 1) as f32).sin()).collect();
            normalize(&mut v);
            for _ in 0..iters {
                // w = Xᵀ X v  (through the samples)
                let mut w = vec![0.0f32; dim];
                for row in &centered {
                    let proj: f32 = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
                    for (wi, &r) in w.iter_mut().zip(row.iter()) {
                        *wi += proj * r;
                    }
                }
                // Deflate against previous components.
                for c in &components {
                    let d: f32 = w.iter().zip(c.iter()).map(|(a, b)| a * b).sum();
                    for (wi, &cv) in w.iter_mut().zip(c.iter()) {
                        *wi -= d * cv;
                    }
                }
                if normalize(&mut w) < 1e-12 {
                    break;
                }
                v = w;
            }
            components.push(v);
        }
        PcaDetector { mean, components }
    }

    /// Number of fitted components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Residual norm of a point outside the principal subspace: larger ⇒
    /// more outlier-like.
    pub fn score(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.mean.len(), "dimensionality mismatch");
        let centered: Vec<f32> = x.iter().zip(self.mean.iter()).map(|(&v, &m)| v - m).collect();
        let mut residual = centered.clone();
        for c in &self.components {
            let proj: f32 = centered.iter().zip(c.iter()).map(|(a, b)| a * b).sum();
            for (r, &cv) in residual.iter_mut().zip(c.iter()) {
                *r -= proj * cv;
            }
        }
        residual.iter().map(|&r| r * r).sum::<f32>().sqrt()
    }
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along a line in 3-D with small perpendicular noise.
    fn line_data(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32 * 10.0 - 5.0;
                let eps = ((i * 7) as f32).sin() * 0.05;
                vec![t, 2.0 * t + eps, -t + eps]
            })
            .collect()
    }

    #[test]
    fn on_manifold_points_have_small_residual() {
        let pca = PcaDetector::fit(&line_data(100), 1, 30);
        let s = pca.score(&[1.0, 2.0, -1.0]);
        assert!(s < 0.2, "on-line residual {s} too large");
    }

    #[test]
    fn off_manifold_points_have_large_residual() {
        let pca = PcaDetector::fit(&line_data(100), 1, 30);
        let on = pca.score(&[1.0, 2.0, -1.0]);
        let off = pca.score(&[1.0, -2.0, 3.0]);
        assert!(off > 10.0 * on.max(0.01), "off-line {off} vs on-line {on}");
    }

    #[test]
    fn components_are_orthonormal() {
        let pca = PcaDetector::fit(&line_data(100), 2, 40);
        assert_eq!(pca.k(), 2);
        let c0 = &pca.components[0];
        let c1 = &pca.components[1];
        let n0: f32 = c0.iter().map(|x| x * x).sum();
        let dot: f32 = c0.iter().zip(c1.iter()).map(|(a, b)| a * b).sum();
        assert!((n0 - 1.0).abs() < 1e-4);
        assert!(dot.abs() < 1e-3, "components not orthogonal: {dot}");
    }

    #[test]
    fn k_clamped_to_dimension() {
        let data = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let pca = PcaDetector::fit(&data, 10, 20);
        assert_eq!(pca.k(), 2);
    }
}

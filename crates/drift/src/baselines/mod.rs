//! Baseline outlier detectors the paper compares DETECTOR against in
//! Table 1: LOF, PCA-residual, and fixed-representation kNN distance
//! (the scorer used with the AE / AAE / DA-GAN latent spaces). The DRAE
//! baseline is the autoencoder reconstruction error, produced by
//! `odin_gan::Autoencoder::reconstruction_errors`.

mod knn;
mod lof;
mod pca;

pub use knn::LatentKnn;
pub use lof::Lof;
pub use pca::PcaDetector;

//! Local Outlier Factor (Breunig et al., SIGMOD 2000) — the paper's
//! structured-data baseline in Table 1.
//!
//! Classic LOF with k-distance, reachability distance, and local
//! reachability density, computed against a fixed reference (training)
//! set. O(n²) distance computation — fine at the corpus sizes these
//! experiments use.

/// A fitted LOF detector.
pub struct Lof {
    data: Vec<Vec<f32>>,
    k: usize,
    /// Per-training-point local reachability density.
    lrd: Vec<f32>,
    /// Per-training-point k-distance.
    kdist: Vec<f32>,
    /// Per-training-point k nearest neighbour indices.
    neighbors: Vec<Vec<usize>>,
}

fn dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Indices and distances of the k nearest rows of `data` to `q`,
/// excluding `exclude` (use `usize::MAX` for none).
fn knn(data: &[Vec<f32>], q: &[f32], k: usize, exclude: usize) -> Vec<(usize, f32)> {
    let mut ds: Vec<(usize, f32)> = data
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != exclude)
        .map(|(i, p)| (i, dist(p, q)))
        .collect();
    ds.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
    ds.truncate(k);
    ds
}

impl Lof {
    /// Fits LOF on a training set.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k + 1` training points are given or `k == 0`.
    pub fn fit(data: Vec<Vec<f32>>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(data.len() > k, "need more than k={k} training points, got {}", data.len());
        let n = data.len();
        let mut kdist = vec![0.0f32; n];
        let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let nn = knn(&data, &data[i], k, i);
            kdist[i] = nn.last().expect("k >= 1").1;
            neighbors.push(nn.iter().map(|&(j, _)| j).collect());
        }
        // Local reachability density of each training point.
        let mut lrd = vec![0.0f32; n];
        for i in 0..n {
            let mut reach_sum = 0.0f32;
            for &j in &neighbors[i] {
                let d = dist(&data[i], &data[j]);
                reach_sum += d.max(kdist[j]);
            }
            // Epsilon guards against duplicate training points (zero
            // reachability), which would otherwise blow up the density.
            lrd[i] = k as f32 / reach_sum.max(1e-6);
        }
        Lof { data, k, lrd, kdist, neighbors: Vec::new() }.with_neighbors(neighbors)
    }

    fn with_neighbors(mut self, neighbors: Vec<Vec<usize>>) -> Self {
        self.neighbors = neighbors;
        self
    }

    /// LOF score of a query point: ≈1 for inliers, larger for outliers.
    pub fn score(&self, q: &[f32]) -> f32 {
        let nn = knn(&self.data, q, self.k, usize::MAX);
        let mut reach_sum = 0.0f32;
        for &(j, d) in &nn {
            reach_sum += d.max(self.kdist[j]);
        }
        let lrd_q = if reach_sum > 0.0 { self.k as f32 / reach_sum } else { f32::INFINITY };
        if !lrd_q.is_finite() {
            return 1.0; // q coincides with dense training data
        }
        let neighbor_lrd: f32 =
            nn.iter().map(|&(j, _)| self.lrd[j].min(1e9)).sum::<f32>() / self.k as f32;
        neighbor_lrd / lrd_q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f32, cy: f32, n: usize, r: f32) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let a = i as f32 * 2.39996; // golden angle
                let rr = r * (0.2 + 0.8 * i as f32 / n as f32);
                vec![cx + rr * a.cos(), cy + rr * a.sin()]
            })
            .collect()
    }

    #[test]
    fn inliers_score_near_one() {
        let train = blob(0.0, 0.0, 60, 1.0);
        let lof = Lof::fit(train, 5);
        let s = lof.score(&[0.1, 0.1]);
        assert!(s < 1.6, "inlier LOF {s} too high");
    }

    #[test]
    fn distant_point_scores_high() {
        let train = blob(0.0, 0.0, 60, 1.0);
        let lof = Lof::fit(train, 5);
        let s_in = lof.score(&[0.2, 0.0]);
        let s_out = lof.score(&[15.0, 15.0]);
        assert!(s_out > 3.0 * s_in, "outlier {s_out} vs inlier {s_in}");
    }

    #[test]
    fn score_is_monotone_in_distance() {
        let train = blob(0.0, 0.0, 80, 1.0);
        let lof = Lof::fit(train, 6);
        let near = lof.score(&[2.0, 0.0]);
        let far = lof.score(&[8.0, 0.0]);
        assert!(far > near);
    }

    #[test]
    #[should_panic(expected = "need more than")]
    fn too_few_points_panics() {
        let _ = Lof::fit(blob(0.0, 0.0, 4, 1.0), 5);
    }
}

//! The online cluster manager — the clustering half of DETECTOR (§4.5)
//! and the drift bookkeeping of Algorithm 2.
//!
//! Points arrive one at a time (already projected to the latent
//! manifold). Each is assigned to a permanent cluster whose Δ-band
//! contains its centroid distance, or to the temporary cluster otherwise.
//! When the temporary cluster's distance distribution stabilizes (KL
//! between prior and posterior stays below a threshold), it is promoted
//! to a new permanent cluster — a **drift event**.

use serde::{Deserialize, Serialize};

use crate::band::DEFAULT_DELTA;
use crate::cluster::{Cluster, TempCluster};

/// Configuration of the online cluster manager.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ManagerConfig {
    /// Band mass Δ (paper uses 0.75).
    pub delta: f32,
    /// Band containment margin for assignment: bounds are widened by
    /// `margin × width` on each side. 0 reproduces Algorithm 2 line 4
    /// exactly; with Δ = 0.75 a margin is needed so the 25% of
    /// same-concept points that fall just outside the high-density band
    /// are still assigned to their cluster instead of repeatedly seeding
    /// spurious temporary clusters.
    pub assign_margin: f32,
    /// KL threshold below which an insert counts as "no change".
    pub kl_eps: f64,
    /// Minimum temporary-cluster size before promotion is considered.
    pub min_points: usize,
    /// Consecutive stable inserts required for promotion.
    pub stable_window: usize,
    /// Histogram range for the KL tracker (latent distances).
    pub hist_hi: f32,
    /// Histogram bins for the KL tracker.
    pub bins: usize,
    /// Per-cluster point reservoir size.
    pub reservoir: usize,
    /// Optional cap on the number of permanent clusters; when exceeded,
    /// the smallest cluster is dropped (§6.5 configuration ❸).
    pub max_clusters: Option<usize>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            delta: DEFAULT_DELTA,
            assign_margin: 0.6,
            kl_eps: 5e-4,
            min_points: 24,
            stable_window: 8,
            hist_hi: 16.0,
            bins: 32,
            reservoir: 512,
            max_clusters: None,
        }
    }
}

/// Where an observed point landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Assigned to the permanent cluster with this id.
    Cluster(usize),
    /// Routed to the temporary cluster (an outlier so far).
    Temporary,
}

/// The outcome of observing one point.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Where the point went.
    pub assignment: Assignment,
    /// If the temporary cluster was promoted by this observation, the
    /// resulting drift event. Returning the event directly means callers
    /// never have to re-fish it out of [`ClusterManager::events`].
    pub promoted: Option<DriftEvent>,
    /// If the cluster cap forced an eviction, the dropped cluster's id.
    pub evicted: Option<usize>,
}

/// A recorded drift event: a new permanent cluster appeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// The promoted cluster's id.
    pub cluster_id: usize,
    /// Stream position (number of points observed so far) at promotion.
    pub at: usize,
}

/// The online cluster manager.
#[derive(Debug)]
pub struct ClusterManager {
    cfg: ManagerConfig,
    clusters: Vec<Cluster>,
    temp: TempCluster,
    next_id: usize,
    seen: usize,
    events: Vec<DriftEvent>,
}

impl ClusterManager {
    /// Creates a manager with no permanent clusters.
    pub fn new(cfg: ManagerConfig) -> Self {
        let temp = TempCluster::new(cfg.hist_hi, cfg.bins);
        ClusterManager { cfg, clusters: Vec::new(), temp, next_id: 0, seen: 0, events: Vec::new() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ManagerConfig {
        &self.cfg
    }

    /// The permanent clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// A permanent cluster by id.
    pub fn cluster(&self, id: usize) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.id() == id)
    }

    /// Total points observed.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// All drift events so far, in order.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// Current temporary-cluster size.
    pub fn temp_len(&self) -> usize {
        self.temp.len()
    }

    /// Finds the best matching permanent cluster for a latent: the
    /// nearest cluster whose (margin-widened) Δ-band contains the
    /// centroid distance.
    pub fn matching_cluster(&self, z: &[f32]) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for c in &self.clusters {
            let d = c.distance_to(z);
            let band = c.band();
            let m = self.cfg.assign_margin * band.width().max(1e-3);
            if d >= band.lower - m && d <= band.upper + m {
                match best {
                    Some((_, bd)) if bd <= d => {}
                    _ => best = Some((c.id(), d)),
                }
            }
        }
        best.map(|(id, _)| id)
    }

    /// Distances from a latent to every permanent centroid, as
    /// `(cluster_id, distance)` pairs.
    pub fn distances(&self, z: &[f32]) -> Vec<(usize, f32)> {
        self.clusters.iter().map(|c| (c.id(), c.distance_to(z))).collect()
    }

    /// Observes one latent point, updating cluster state; may promote the
    /// temporary cluster (drift) and/or evict the smallest cluster.
    pub fn observe(&mut self, z: &[f32]) -> Observation {
        self.seen += 1;
        if let Some(id) = self.matching_cluster(z) {
            let cluster =
                self.clusters.iter_mut().find(|c| c.id() == id).expect("matching cluster exists");
            cluster.insert(z.to_vec());
            return Observation {
                assignment: Assignment::Cluster(id),
                promoted: None,
                evicted: None,
            };
        }
        self.temp.insert(z.to_vec(), self.cfg.kl_eps);
        let stable = self.temp.len() >= self.cfg.min_points
            && self.temp.stable_run() >= self.cfg.stable_window;
        if !stable {
            return Observation {
                assignment: Assignment::Temporary,
                promoted: None,
                evicted: None,
            };
        }
        // Promotion: the temporary cluster becomes permanent (§4.5).
        let pts = self.temp.take_points();
        let id = self.next_id;
        self.next_id += 1;
        self.clusters.push(Cluster::from_points(id, pts, self.cfg.delta, self.cfg.reservoir));
        let event = DriftEvent { cluster_id: id, at: self.seen };
        self.events.push(event);
        let evicted = self.enforce_cap(id);
        Observation { assignment: Assignment::Temporary, promoted: Some(event), evicted }
    }

    /// Drops the smallest *pre-existing* cluster when the cap is
    /// exceeded. The just-promoted cluster (`keep`) is exempt — the paper
    /// drops an old cluster in favour of the newly discovered concept
    /// (§6.5 ❸).
    fn enforce_cap(&mut self, keep: usize) -> Option<usize> {
        let cap = self.cfg.max_clusters?;
        if self.clusters.len() <= cap {
            return None;
        }
        let (idx, _) = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.id() != keep)
            .min_by_key(|(_, c)| c.size())
            .expect("at least one evictable cluster when over cap");
        let dropped = self.clusters.remove(idx);
        Some(dropped.id())
    }

    /// Feeds a batch of latents through [`ClusterManager::observe`],
    /// returning the ids of clusters promoted along the way. This is how
    /// DETECTOR bootstraps its initial clusters from training data.
    pub fn bootstrap(&mut self, latents: &[Vec<f32>]) -> Vec<usize> {
        let mut promoted = Vec::new();
        for z in latents {
            if let Some(event) = self.observe(z).promoted {
                promoted.push(event.cluster_id);
            }
        }
        promoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell(center: &[f32], r: f32, n: usize, salt: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                center
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| c + r * ((i * 7 + j * 13 + salt) as f32).sin())
                    .collect()
            })
            .collect()
    }

    fn test_cfg() -> ManagerConfig {
        ManagerConfig { min_points: 20, stable_window: 5, kl_eps: 2e-3, ..ManagerConfig::default() }
    }

    #[test]
    fn first_concept_promotes_one_cluster() {
        let mut m = ClusterManager::new(test_cfg());
        let pts = shell(&[0.0; 8], 1.0, 120, 0);
        let promoted = m.bootstrap(&pts);
        assert_eq!(promoted.len(), 1, "expected exactly one cluster, got {promoted:?}");
        assert_eq!(m.clusters().len(), 1);
        assert_eq!(m.events().len(), 1);
    }

    #[test]
    fn second_concept_triggers_drift_event() {
        let mut m = ClusterManager::new(test_cfg());
        m.bootstrap(&shell(&[0.0; 8], 1.0, 120, 0));
        assert_eq!(m.clusters().len(), 1);
        // A far-away concept arrives: drift should be detected.
        m.bootstrap(&shell(&[10.0; 8], 1.0, 120, 1));
        assert!(m.clusters().len() >= 2, "drift not detected");
        let events = m.events();
        assert!(events[1].at > events[0].at);
    }

    #[test]
    fn known_points_are_assigned_not_accumulated() {
        let mut m = ClusterManager::new(test_cfg());
        m.bootstrap(&shell(&[0.0; 8], 1.0, 150, 0));
        let before = m.clusters()[0].size();
        let more = shell(&[0.0; 8], 1.0, 50, 2);
        let mut assigned = 0;
        for p in &more {
            if let Assignment::Cluster(_) = m.observe(p).assignment {
                assigned += 1;
            }
        }
        assert!(assigned > 25, "most same-concept points should be assigned, got {assigned}/50");
        assert!(m.clusters()[0].size() > before);
    }

    #[test]
    fn cluster_cap_evicts_smallest() {
        let mut cfg = test_cfg();
        cfg.max_clusters = Some(2);
        let mut m = ClusterManager::new(cfg);
        m.bootstrap(&shell(&[0.0; 8], 1.0, 200, 0)); // big cluster
        m.bootstrap(&shell(&[10.0; 8], 1.0, 40, 1)); // small cluster
        assert_eq!(m.clusters().len(), 2);
        m.bootstrap(&shell(&[-10.0; 8], 1.0, 120, 2)); // third concept
        assert_eq!(m.clusters().len(), 2, "cap should hold at 2");
        // The 40-point cluster (id 1) was smallest and must be gone.
        assert!(m.cluster(1).is_none(), "smallest cluster should be evicted");
        assert!(m.cluster(0).is_some());
    }

    #[test]
    fn matching_cluster_prefers_nearest() {
        let mut m = ClusterManager::new(test_cfg());
        m.bootstrap(&shell(&[0.0; 4], 1.0, 100, 0));
        m.bootstrap(&shell(&[6.0; 4], 1.0, 100, 1));
        assert_eq!(m.clusters().len(), 2);
        // A typical member of concept 0 (points sit on a shell of radius
        // ~1 around the centroid, so probe from the shell, not the center).
        let probe = shell(&[0.0; 4], 1.0, 1, 3).pop().expect("one probe point");
        if let Some(id) = m.matching_cluster(&probe) {
            assert_eq!(id, 0);
        }
        let distances = m.distances(&probe);
        assert_eq!(distances.len(), 2);
        assert!(distances[0].1 < distances[1].1);
    }

    #[test]
    fn observation_counters_track_stream() {
        let mut m = ClusterManager::new(test_cfg());
        for p in shell(&[0.0; 4], 1.0, 10, 0) {
            let _ = m.observe(&p);
        }
        assert_eq!(m.seen(), 10);
        assert_eq!(m.temp_len(), 10, "no promotion yet");
    }
}

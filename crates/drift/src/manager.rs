//! The online cluster manager — the clustering half of DETECTOR (§4.5)
//! and the drift bookkeeping of Algorithm 2.
//!
//! Points arrive one at a time (already projected to the latent
//! manifold). Each is assigned to a permanent cluster whose Δ-band
//! contains its centroid distance, or to the temporary cluster otherwise.
//! When the temporary cluster's distance distribution stabilizes (KL
//! between prior and posterior stays below a threshold), it is promoted
//! to a new permanent cluster — a **drift event**.

use odin_store::{Decoder, Encoder, Persist, StoreError};
use serde::{Deserialize, Serialize};

use crate::band::DEFAULT_DELTA;
use crate::cluster::{Cluster, TempCluster};

/// Configuration of the online cluster manager.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ManagerConfig {
    /// Band mass Δ (paper uses 0.75).
    pub delta: f32,
    /// Band containment margin for assignment: bounds are widened by
    /// `margin × width` on each side. 0 reproduces Algorithm 2 line 4
    /// exactly; with Δ = 0.75 a margin is needed so the 25% of
    /// same-concept points that fall just outside the high-density band
    /// are still assigned to their cluster instead of repeatedly seeding
    /// spurious temporary clusters.
    pub assign_margin: f32,
    /// KL threshold below which an insert counts as "no change".
    pub kl_eps: f64,
    /// Minimum temporary-cluster size before promotion is considered.
    pub min_points: usize,
    /// Consecutive stable inserts required for promotion.
    pub stable_window: usize,
    /// Histogram range for the KL tracker (latent distances).
    pub hist_hi: f32,
    /// Histogram bins for the KL tracker.
    pub bins: usize,
    /// Per-cluster point reservoir size.
    pub reservoir: usize,
    /// Optional cap on the number of permanent clusters; when exceeded,
    /// the smallest cluster is dropped (§6.5 configuration ❸).
    pub max_clusters: Option<usize>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            delta: DEFAULT_DELTA,
            assign_margin: 0.6,
            kl_eps: 5e-4,
            min_points: 24,
            stable_window: 8,
            hist_hi: 16.0,
            bins: 32,
            reservoir: 512,
            max_clusters: None,
        }
    }
}

/// Where an observed point landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Assigned to the permanent cluster with this id.
    Cluster(usize),
    /// Routed to the temporary cluster (an outlier so far).
    Temporary,
}

/// The outcome of observing one point.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Where the point went.
    pub assignment: Assignment,
    /// If the temporary cluster was promoted by this observation, the
    /// resulting drift event. Returning the event directly means callers
    /// never have to re-fish it out of [`ClusterManager::events`].
    pub promoted: Option<DriftEvent>,
    /// If the cluster cap forced an eviction, the dropped cluster's id.
    pub evicted: Option<usize>,
}

/// A recorded drift event: a new permanent cluster appeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// The promoted cluster's id.
    pub cluster_id: usize,
    /// Stream position (number of points observed so far) at promotion.
    pub at: usize,
}

/// The online cluster manager.
#[derive(Debug)]
pub struct ClusterManager {
    cfg: ManagerConfig,
    clusters: Vec<Cluster>,
    temp: TempCluster,
    next_id: usize,
    seen: usize,
    events: Vec<DriftEvent>,
    /// The cluster dropped by the most recent cap eviction, parked so
    /// the caller can archive it (see [`ClusterManager::take_evicted`]).
    /// Transient — not persisted.
    last_evicted: Option<Cluster>,
}

impl ClusterManager {
    /// Creates a manager with no permanent clusters.
    pub fn new(cfg: ManagerConfig) -> Self {
        let temp = TempCluster::new(cfg.hist_hi, cfg.bins);
        ClusterManager {
            cfg,
            clusters: Vec::new(),
            temp,
            next_id: 0,
            seen: 0,
            events: Vec::new(),
            last_evicted: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ManagerConfig {
        &self.cfg
    }

    /// The permanent clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// A permanent cluster by id.
    pub fn cluster(&self, id: usize) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.id() == id)
    }

    /// Total points observed.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// All drift events so far, in order.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// Current temporary-cluster size.
    pub fn temp_len(&self) -> usize {
        self.temp.len()
    }

    /// Finds the best matching permanent cluster for a latent: the
    /// nearest cluster whose (margin-widened) Δ-band contains the
    /// centroid distance.
    pub fn matching_cluster(&self, z: &[f32]) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for c in &self.clusters {
            let d = c.distance_to(z);
            let band = c.band();
            let m = self.cfg.assign_margin * band.width().max(1e-3);
            if d >= band.lower - m && d <= band.upper + m {
                match best {
                    Some((_, bd)) if bd <= d => {}
                    _ => best = Some((c.id(), d)),
                }
            }
        }
        best.map(|(id, _)| id)
    }

    /// Distances from a latent to every permanent centroid, as
    /// `(cluster_id, distance)` pairs.
    pub fn distances(&self, z: &[f32]) -> Vec<(usize, f32)> {
        self.clusters.iter().map(|c| (c.id(), c.distance_to(z))).collect()
    }

    /// Observes one latent point, updating cluster state; may promote the
    /// temporary cluster (drift) and/or evict the smallest cluster.
    pub fn observe(&mut self, z: &[f32]) -> Observation {
        self.seen += 1;
        if let Some(id) = self.matching_cluster(z) {
            let cluster =
                self.clusters.iter_mut().find(|c| c.id() == id).expect("matching cluster exists");
            cluster.insert(z.to_vec());
            return Observation {
                assignment: Assignment::Cluster(id),
                promoted: None,
                evicted: None,
            };
        }
        self.temp.insert(z.to_vec(), self.cfg.kl_eps);
        let stable = self.temp.len() >= self.cfg.min_points
            && self.temp.stable_run() >= self.cfg.stable_window;
        if !stable {
            return Observation {
                assignment: Assignment::Temporary,
                promoted: None,
                evicted: None,
            };
        }
        // Promotion: the temporary cluster becomes permanent (§4.5).
        let pts = self.temp.take_points();
        let id = self.next_id;
        self.next_id += 1;
        self.clusters.push(Cluster::from_points(id, pts, self.cfg.delta, self.cfg.reservoir));
        let event = DriftEvent { cluster_id: id, at: self.seen };
        self.events.push(event);
        let evicted = self.enforce_cap(id);
        Observation { assignment: Assignment::Temporary, promoted: Some(event), evicted }
    }

    /// Drops the smallest *pre-existing* cluster when the cap is
    /// exceeded. The just-promoted cluster (`keep`) is exempt — the paper
    /// drops an old cluster in favour of the newly discovered concept
    /// (§6.5 ❸).
    fn enforce_cap(&mut self, keep: usize) -> Option<usize> {
        let cap = self.cfg.max_clusters?;
        if self.clusters.len() <= cap {
            return None;
        }
        let (idx, _) = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.id() != keep)
            .min_by_key(|(_, c)| c.size())
            .expect("at least one evictable cluster when over cap");
        let dropped = self.clusters.remove(idx);
        let id = dropped.id();
        self.last_evicted = Some(dropped);
        Some(id)
    }

    /// Takes the cluster dropped by the most recent cap eviction (the
    /// one whose id [`Observation::evicted`] reported). Callers that
    /// archive evicted clusters grab the full state here; otherwise it
    /// is simply replaced on the next eviction.
    pub fn take_evicted(&mut self) -> Option<Cluster> {
        self.last_evicted.take()
    }

    /// Re-applies a promotion recorded in the drift-event WAL: installs
    /// the cluster as it existed at promotion time and replays the
    /// bookkeeping [`ClusterManager::observe`] would have done. Used
    /// during warm restart to roll state forward past the last snapshot.
    pub fn apply_promotion(&mut self, cluster: Cluster, at: usize) {
        let id = cluster.id();
        self.clusters.retain(|c| c.id() != id);
        self.clusters.push(cluster);
        self.next_id = self.next_id.max(id + 1);
        self.seen = self.seen.max(at);
        self.events.push(DriftEvent { cluster_id: id, at });
        // A promotion consumes the temporary cluster's points; after a
        // replayed promotion the temp state from the snapshot is stale.
        let _ = self.temp.take_points();
    }

    /// Re-applies a cap eviction recorded in the drift-event WAL.
    /// Returns true if the cluster was present and removed.
    pub fn apply_eviction(&mut self, id: usize) -> bool {
        let before = self.clusters.len();
        self.clusters.retain(|c| c.id() != id);
        self.clusters.len() != before
    }

    /// Feeds a batch of latents through [`ClusterManager::observe`],
    /// returning the ids of clusters promoted along the way. This is how
    /// DETECTOR bootstraps its initial clusters from training data.
    pub fn bootstrap(&mut self, latents: &[Vec<f32>]) -> Vec<usize> {
        let mut promoted = Vec::new();
        for z in latents {
            if let Some(event) = self.observe(z).promoted {
                promoted.push(event.cluster_id);
            }
        }
        promoted
    }
}

impl Persist for ManagerConfig {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_f32(self.delta);
        enc.put_f32(self.assign_margin);
        enc.put_f64(self.kl_eps);
        enc.put_usize(self.min_points);
        enc.put_usize(self.stable_window);
        enc.put_f32(self.hist_hi);
        enc.put_usize(self.bins);
        enc.put_usize(self.reservoir);
        match self.max_clusters {
            Some(n) => {
                enc.put_bool(true);
                enc.put_usize(n);
            }
            None => enc.put_bool(false),
        }
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(ManagerConfig {
            delta: dec.take_f32("ManagerConfig.delta")?,
            assign_margin: dec.take_f32("ManagerConfig.assign_margin")?,
            kl_eps: dec.take_f64("ManagerConfig.kl_eps")?,
            min_points: dec.take_usize("ManagerConfig.min_points")?,
            stable_window: dec.take_usize("ManagerConfig.stable_window")?,
            hist_hi: dec.take_f32("ManagerConfig.hist_hi")?,
            bins: dec.take_usize("ManagerConfig.bins")?,
            reservoir: dec.take_usize("ManagerConfig.reservoir")?,
            max_clusters: if dec.take_bool("ManagerConfig.max_clusters tag")? {
                Some(dec.take_usize("ManagerConfig.max_clusters")?)
            } else {
                None
            },
        })
    }
}

impl Persist for DriftEvent {
    fn persist(&self, enc: &mut Encoder) {
        enc.put_usize(self.cluster_id);
        enc.put_usize(self.at);
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(DriftEvent {
            cluster_id: dec.take_usize("DriftEvent.cluster_id")?,
            at: dec.take_usize("DriftEvent.at")?,
        })
    }
}

impl Persist for ClusterManager {
    fn persist(&self, enc: &mut Encoder) {
        self.cfg.persist(enc);
        enc.put_usize(self.clusters.len());
        for c in &self.clusters {
            c.persist(enc);
        }
        self.temp.persist(enc);
        enc.put_usize(self.next_id);
        enc.put_usize(self.seen);
        enc.put_usize(self.events.len());
        for e in &self.events {
            e.persist(enc);
        }
    }

    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let cfg = ManagerConfig::restore(dec)?;
        let n = dec.take_usize("ClusterManager.clusters len")?;
        let mut clusters = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            clusters.push(Cluster::restore(dec)?);
        }
        let temp = TempCluster::restore(dec)?;
        let next_id = dec.take_usize("ClusterManager.next_id")?;
        let seen = dec.take_usize("ClusterManager.seen")?;
        let n_events = dec.take_usize("ClusterManager.events len")?;
        let mut events = Vec::with_capacity(n_events.min(1 << 16));
        for _ in 0..n_events {
            events.push(DriftEvent::restore(dec)?);
        }
        if clusters.iter().any(|c| c.id() >= next_id) {
            return Err(StoreError::Malformed { context: "ClusterManager id invariant" });
        }
        Ok(ClusterManager { cfg, clusters, temp, next_id, seen, events, last_evicted: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell(center: &[f32], r: f32, n: usize, salt: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                center
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| c + r * ((i * 7 + j * 13 + salt) as f32).sin())
                    .collect()
            })
            .collect()
    }

    fn test_cfg() -> ManagerConfig {
        ManagerConfig { min_points: 20, stable_window: 5, kl_eps: 2e-3, ..ManagerConfig::default() }
    }

    #[test]
    fn manager_persist_roundtrip_is_bit_exact_and_evolves_identically() {
        let mut m = ClusterManager::new(test_cfg());
        m.bootstrap(&shell(&[0.0; 8], 1.0, 120, 0));
        m.bootstrap(&shell(&[10.0; 8], 1.0, 70, 1)); // mid-accumulation temp state
        let bytes = m.to_store_bytes();
        let mut back = ClusterManager::from_store_bytes(&bytes, "manager").unwrap();
        assert_eq!(back.to_store_bytes(), bytes);
        assert_eq!(back.seen(), m.seen());
        assert_eq!(back.temp_len(), m.temp_len());
        assert_eq!(back.events(), m.events());
        // Same future stream → identical observations and final state.
        for p in shell(&[10.0; 8], 1.0, 80, 2) {
            let a = m.observe(&p);
            let b = back.observe(&p);
            assert_eq!(a, b);
        }
        assert_eq!(back.to_store_bytes(), m.to_store_bytes());
    }

    #[test]
    fn wal_replay_hooks_reproduce_promotion_and_eviction() {
        let mut live = ClusterManager::new(test_cfg());
        live.bootstrap(&shell(&[0.0; 8], 1.0, 120, 0));
        let snapshot = live.to_store_bytes();
        // Live continues: a second concept promotes a new cluster.
        let mut promoted = None;
        for p in shell(&[10.0; 8], 1.0, 120, 1) {
            if let Some(e) = live.observe(&p).promoted {
                promoted = Some(e);
                break;
            }
        }
        let event = promoted.expect("second concept promotes");
        let cluster = live.cluster(event.cluster_id).unwrap().clone();

        // Replay onto the snapshot: promotion hook reproduces the event.
        let mut replayed = ClusterManager::from_store_bytes(&snapshot, "manager").unwrap();
        replayed.apply_promotion(cluster, event.at);
        assert_eq!(replayed.events().last(), Some(&event));
        assert!(replayed.cluster(event.cluster_id).is_some());
        assert_eq!(replayed.clusters().len(), 2);

        assert!(replayed.apply_eviction(event.cluster_id));
        assert!(replayed.cluster(event.cluster_id).is_none());
        assert!(!replayed.apply_eviction(event.cluster_id), "second eviction is a no-op");
    }

    #[test]
    fn restore_rejects_id_invariant_violation() {
        let mut m = ClusterManager::new(test_cfg());
        m.bootstrap(&shell(&[0.0; 8], 1.0, 120, 0));
        let mut enc = Encoder::new();
        m.persist(&mut enc);
        let mut bytes = enc.into_bytes();
        // next_id lives after cfg + clusters + temp; simplest robust
        // corruption: truncate to force a structured error.
        bytes.truncate(bytes.len() - 4);
        assert!(ClusterManager::from_store_bytes(&bytes, "manager").is_err());
    }

    #[test]
    fn first_concept_promotes_one_cluster() {
        let mut m = ClusterManager::new(test_cfg());
        let pts = shell(&[0.0; 8], 1.0, 120, 0);
        let promoted = m.bootstrap(&pts);
        assert_eq!(promoted.len(), 1, "expected exactly one cluster, got {promoted:?}");
        assert_eq!(m.clusters().len(), 1);
        assert_eq!(m.events().len(), 1);
    }

    #[test]
    fn second_concept_triggers_drift_event() {
        let mut m = ClusterManager::new(test_cfg());
        m.bootstrap(&shell(&[0.0; 8], 1.0, 120, 0));
        assert_eq!(m.clusters().len(), 1);
        // A far-away concept arrives: drift should be detected.
        m.bootstrap(&shell(&[10.0; 8], 1.0, 120, 1));
        assert!(m.clusters().len() >= 2, "drift not detected");
        let events = m.events();
        assert!(events[1].at > events[0].at);
    }

    #[test]
    fn known_points_are_assigned_not_accumulated() {
        let mut m = ClusterManager::new(test_cfg());
        m.bootstrap(&shell(&[0.0; 8], 1.0, 150, 0));
        let before = m.clusters()[0].size();
        let more = shell(&[0.0; 8], 1.0, 50, 2);
        let mut assigned = 0;
        for p in &more {
            if let Assignment::Cluster(_) = m.observe(p).assignment {
                assigned += 1;
            }
        }
        assert!(assigned > 25, "most same-concept points should be assigned, got {assigned}/50");
        assert!(m.clusters()[0].size() > before);
    }

    #[test]
    fn cluster_cap_evicts_smallest() {
        let mut cfg = test_cfg();
        cfg.max_clusters = Some(2);
        let mut m = ClusterManager::new(cfg);
        m.bootstrap(&shell(&[0.0; 8], 1.0, 200, 0)); // big cluster
        m.bootstrap(&shell(&[10.0; 8], 1.0, 40, 1)); // small cluster
        assert_eq!(m.clusters().len(), 2);
        m.bootstrap(&shell(&[-10.0; 8], 1.0, 120, 2)); // third concept
        assert_eq!(m.clusters().len(), 2, "cap should hold at 2");
        // The 40-point cluster (id 1) was smallest and must be gone.
        assert!(m.cluster(1).is_none(), "smallest cluster should be evicted");
        assert!(m.cluster(0).is_some());
    }

    #[test]
    fn matching_cluster_prefers_nearest() {
        let mut m = ClusterManager::new(test_cfg());
        m.bootstrap(&shell(&[0.0; 4], 1.0, 100, 0));
        m.bootstrap(&shell(&[6.0; 4], 1.0, 100, 1));
        assert_eq!(m.clusters().len(), 2);
        // A typical member of concept 0 (points sit on a shell of radius
        // ~1 around the centroid, so probe from the shell, not the center).
        let probe = shell(&[0.0; 4], 1.0, 1, 3).pop().expect("one probe point");
        if let Some(id) = m.matching_cluster(&probe) {
            assert_eq!(id, 0);
        }
        let distances = m.distances(&probe);
        assert_eq!(distances.len(), 2);
        assert!(distances[0].1 < distances[1].1);
    }

    #[test]
    fn observation_counters_track_stream() {
        let mut m = ClusterManager::new(test_cfg());
        for p in shell(&[0.0; 4], 1.0, 10, 0) {
            let _ = m.observe(&p);
        }
        assert_eq!(m.seen(), 10);
        assert_eq!(m.temp_len(), 10, "no promotion yet");
    }
}

//! `odin` — operator CLI for a running or persisted ODIN deployment.
//!
//! Three subcommands:
//!
//! * `odin status --addr HOST:PORT` — liveness + key metrics from a
//!   serving front end's `/healthz` and `/metrics` endpoints.
//! * `odin scan` — predicate queries over an event log file
//!   (`--log events.odlg`) or a whole store directory (`--store DIR`,
//!   which merges every shard under `streams/<id>/`). Zone maps prune
//!   segments that cannot match; `--stats` shows how many were skipped.
//! * `odin explain` — reconstructs drift-recovery arcs (drift detected
//!   → train queued → model installed) by joining log records on their
//!   causal trace id.
//!
//! The CLI is dependency-free: argument parsing is hand-rolled and the
//! HTTP client is the one-shot helper from `odin-telemetry`.

mod explain;
mod fmt;
mod scan;
mod status;

use std::process::ExitCode;

const USAGE: &str = "\
odin — ODIN ops CLI

USAGE:
    odin status --addr HOST:PORT [--raw]
    odin scan   (--log FILE | --store DIR) [FILTERS] [--json] [--stats]
                [--limit N]
    odin explain (--log FILE | --store DIR) [--trace ID] [--cluster N]
                [--stream N]

SCAN FILTERS:
    --stream N        only records from stream N
    --since TIME      records at or after TIME (e.g. 250ms, 1.5s, 1200us,
                      or a bare integer in microseconds)
    --until TIME      records at or before TIME
    --frame-min N     frame index lower bound
    --frame-max N     frame index upper bound
    --cluster N       only records about cluster N
    --kind KIND       frame | drift | queued | install | evict
    --served WHO      teacher | ensemble | fallback | none
    --trace ID        exact causal trace id (decimal or 0x hex)

Run against a store directory written with `OdinConfig.event_log`
enabled (see DESIGN.md, \"Event log & ops CLI\").";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "status" => status::run(rest),
        "scan" => scan::run(rest),
        "explain" => explain::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("odin: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value following a `--flag` out of `args`, or errors if the
/// flag is present without one.
fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
}

//! `odin` — operator CLI for a running or persisted ODIN deployment.
//!
//! Subcommands:
//!
//! * `odin status --addr HOST:PORT` — liveness + key metrics from a
//!   serving front end's `/healthz` and `/metrics` endpoints; exits
//!   nonzero when the deployment is degraded or shedding load.
//! * `odin tail` — cursor-paged tail of the event log, live against a
//!   server (`--addr`, long-poll `GET /events`) or directly against
//!   `events.odlg` files (`--log` / `--store`); `-f` follows.
//! * `odin top` — one-screen live refresh of per-stream FPS, queue
//!   depths, serving precision, and drift/attic counters.
//! * `odin flight` — fetch the live flight recorder's Chrome trace.
//! * `odin scan` — predicate queries over an event log file
//!   (`--log events.odlg`) or a whole store directory (`--store DIR`,
//!   which merges every shard under `streams/<id>/`). Zone maps prune
//!   segments that cannot match; `--stats` shows how many were skipped.
//! * `odin explain` — reconstructs drift-recovery arcs (drift detected
//!   → train queued → model installed) by joining log records on their
//!   causal trace id.
//!
//! The CLI is dependency-free: argument parsing is hand-rolled and the
//! HTTP client is the one-shot helper from `odin-telemetry`.

mod explain;
mod flight;
mod fmt;
mod scan;
mod status;
mod tail;
mod top;

use std::process::ExitCode;

const USAGE: &str = "\
odin — ODIN ops CLI

USAGE:
    odin status --addr HOST:PORT [--raw]
    odin tail   (--addr HOST:PORT | --log FILE | --store DIR)
                [-f|--follow] [--kind KIND] [--cursor C] [--json]
                [--limit N] [--for DUR]
    odin top    --addr HOST:PORT [--once] [--interval DUR]
    odin flight --addr HOST:PORT [--out FILE]
    odin scan   (--log FILE | --store DIR) [FILTERS] [--json] [--stats]
                [--limit N]
    odin explain (--log FILE | --store DIR) [--trace ID] [--cluster N]
                [--stream N]

`status` and `top` exit nonzero when /healthz reports a degraded
status or any stream's admission queue sits at its cap.

`tail` drains everything after the start cursor and prints the final
cursor on stderr (resume with --cursor); with -f it long-polls the
server (or polls the files) for new sealed records, bounded by
--for DUR (e.g. 2s) if given.

SCAN FILTERS:
    --stream N        only records from stream N
    --since TIME      records at or after TIME (e.g. 250ms, 1.5s, 1200us,
                      or a bare integer in microseconds)
    --until TIME      records at or before TIME
    --frame-min N     frame index lower bound
    --frame-max N     frame index upper bound
    --cluster N       only records about cluster N
    --kind KIND       frame | drift | queued | install | evict | attic
    --served WHO      teacher | ensemble | fallback | none
    --trace ID        exact causal trace id (decimal or 0x hex)

Run against a store directory written with `OdinConfig.event_log`
enabled (see DESIGN.md, \"Event log & ops CLI\" and
\"Live observability plane\").";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "status" => status::run(rest),
        "tail" => tail::run(rest),
        "top" => top::run(rest),
        "flight" => flight::run(rest),
        "scan" => scan::run(rest),
        "explain" => explain::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("odin: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value following a `--flag` out of `args`, or errors if the
/// flag is present without one.
fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
}

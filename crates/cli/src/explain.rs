//! `odin explain` — reconstructs drift-recovery arcs from the log.
//!
//! Drift, queue, and install records emitted for the same recovery
//! share a causal trace id (the drift frame's trace). Grouping the
//! non-frame records by `(stream, trace)` therefore recovers the full
//! detect → queue → install arc, including wall-clock gaps between the
//! stages, without any extra bookkeeping in the pipeline.

use odin_log::{LogRecord, Predicate, RecordKind};

use crate::fmt::human_us;
use crate::scan;

pub fn run(args: &[String]) -> Result<(), String> {
    let a = scan::parse(args, "explain")?;
    // Pull every non-frame record matching the user's filters; kind is
    // fixed by the arc reconstruction itself.
    if a.pred.kind.is_some() {
        return Err("explain: --kind conflicts with arc reconstruction".into());
    }
    let all = collect_events(&a.source, &a.pred)?;

    // Group by (stream, trace): trace ids are namespaced per stream,
    // but keep the pair as the key so a standalone log mixing streams
    // still groups correctly.
    let mut arcs: Vec<((u32, u64), Vec<LogRecord>)> = Vec::new();
    let mut evictions: Vec<LogRecord> = Vec::new();
    for r in all {
        if r.kind == RecordKind::ClusterEvicted {
            evictions.push(r);
            continue;
        }
        let key = (r.stream, r.trace);
        match arcs.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(r),
            None => arcs.push((key, vec![r])),
        }
    }
    arcs.sort_by_key(|(_, v)| v.first().map(|r| r.ts_us).unwrap_or(0));

    if arcs.is_empty() && evictions.is_empty() {
        println!("no drift activity in the selected range");
        return Ok(());
    }

    for ((stream, trace), records) in &arcs {
        print_arc(*stream, *trace, records);
    }
    for e in &evictions {
        println!(
            "stream {} cluster {}: evicted at frame {} ({}) — trace {:#x}",
            e.stream,
            e.cluster,
            e.frame,
            human_us(e.ts_us),
            e.trace,
        );
    }
    Ok(())
}

fn collect_events(source: &scan::Source, user_pred: &Predicate) -> Result<Vec<LogRecord>, String> {
    // One scan per non-frame kind keeps the kind zone-map mask in play
    // (a plain "not frame" scan would decode every frame segment).
    let mut out = Vec::new();
    for kind in [
        RecordKind::DriftDetected,
        RecordKind::TrainQueued,
        RecordKind::AtticHit,
        RecordKind::ModelInstalled,
        RecordKind::TrainOrphaned,
        RecordKind::ClusterEvicted,
    ] {
        let pred = Predicate { kind: Some(kind), ..*user_pred };
        out.extend(source.scan(&pred)?.records);
    }
    out.sort_by_key(|r| (r.ts_us, r.stream, r.seq));
    Ok(out)
}

fn print_arc(stream: u32, trace: u64, records: &[LogRecord]) {
    let find = |k: RecordKind| records.iter().find(|r| r.kind == k);
    let detect = find(RecordKind::DriftDetected);
    let queued = find(RecordKind::TrainQueued);
    let attic = find(RecordKind::AtticHit);
    let installed = find(RecordKind::ModelInstalled);
    let orphaned = find(RecordKind::TrainOrphaned);
    let cluster = records
        .iter()
        .find(|r| r.cluster >= 0)
        .map(|r| r.cluster.to_string())
        .unwrap_or_else(|| "?".into());
    let t0 = detect.or(queued).or(installed).map(|r| r.ts_us).unwrap_or(0);

    println!("stream {stream} cluster {cluster} — trace {trace:#x}");
    let stage = |label: &str, r: Option<&LogRecord>| match r {
        Some(r) => {
            let delta = r.ts_us.saturating_sub(t0);
            let extra = if r.kind == RecordKind::ModelInstalled && r.latency_us > 0 {
                format!(", train {}", human_us(r.latency_us))
            } else {
                String::new()
            };
            println!(
                "  {label:<16} frame {:<8} at {:<10} (+{}{extra})",
                r.frame,
                human_us(r.ts_us),
                human_us(delta),
            );
        }
        None => println!("  {label:<16} —"),
    };
    stage("drift detected", detect);
    stage("train queued", queued);
    if attic.is_some() {
        stage("attic reinstall", attic);
    }
    stage("model installed", installed);
    if let Some(o) = orphaned {
        println!(
            "  train orphaned   frame {:<8} at {:<10} (cluster evicted mid-training)",
            o.frame,
            human_us(o.ts_us),
        );
    } else if installed.is_none() {
        println!("  (recovery in flight or log truncated before install)");
    }
}
